//! Deterministic simulated block device with crash-point injection.
//!
//! [`SimDisk`] models the stable storage of one home appliance on the
//! same deterministic footing as the rest of netsim: named byte
//! streams written in [`SECTOR_BYTES`] units, where every sector
//! write, rename, delete and truncate is one **I/O step**. Power can
//! be lost between (or inside) any two steps:
//!
//! - [`SimDisk::arm_crash`] schedules power loss at an absolute step
//!   index. Steps before it complete durably; the armed step itself is
//!   interrupted — a sector write tears (a seeded prefix of the
//!   in-flight sector survives, the rest is lost), while atomic
//!   metadata steps (rename/delete/truncate) simply do not happen.
//! - After the crash every operation returns
//!   [`DiskError::PowerLoss`] until [`SimDisk::restart`], which
//!   restores power and applies seeded bit-rot
//!   ([`StorageFaults::bitrot_flips_per_restart`]).
//!
//! Two guarantees the durability layer builds on, both documented in
//! DESIGN.md §9: a torn write only ever damages the bytes of the
//! in-flight sector, never previously acknowledged sectors (the
//! equivalent of sector-aligned journal commits), and reads cost no
//! I/O steps (recovery cost is metered separately through
//! [`DiskStats::bytes_read`]).
//!
//! The crash-point *enumeration* contract: a baseline run that
//! performs `N` steps can be re-run `N` times with the crash armed at
//! `0..N`; every run is byte-deterministic, so the exhaustive harness
//! in `hpop-durability` can assert recovery invariants at every
//! possible power-loss point.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

/// Sector size: the unit of torn-write granularity and step
/// accounting.
pub const SECTOR_BYTES: usize = 512;

/// Storage-fault knobs, surfaced in
/// [`FaultConfig`](crate::faults::FaultConfig) so the chaos preset
/// covers disks too.
#[derive(Clone, Copy, Debug)]
pub struct StorageFaults {
    /// Probability that the sector in flight at the crash point leaves
    /// a torn prefix behind (versus vanishing entirely).
    pub torn_write_fraction: f64,
    /// Expected number of bit flips applied across the whole disk at
    /// each [`SimDisk::restart`] (media decay while unpowered).
    pub bitrot_flips_per_restart: f64,
}

impl Default for StorageFaults {
    fn default() -> StorageFaults {
        StorageFaults {
            torn_write_fraction: 1.0,
            bitrot_flips_per_restart: 0.0,
        }
    }
}

/// Why a disk operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// Power was lost (mid-step or earlier); the device stays dead
    /// until [`SimDisk::restart`].
    PowerLoss,
    /// The named file does not exist.
    NotFound(String),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::PowerLoss => write!(f, "power loss"),
            DiskError::NotFound(name) => write!(f, "no such file: {name}"),
        }
    }
}

/// Cumulative I/O accounting, for recovery-cost experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed sector-write steps.
    pub sector_writes: u64,
    /// Completed atomic metadata steps (rename/delete/truncate).
    pub atomic_ops: u64,
    /// Bytes durably written.
    pub bytes_written: u64,
    /// Bytes returned by reads (reads are step-free but metered).
    pub bytes_read: u64,
    /// Power-loss events taken.
    pub crashes: u64,
    /// Sectors left torn by a crash.
    pub torn_sectors: u64,
    /// Bits flipped by restart-time rot.
    pub bitrot_flips: u64,
}

/// The deterministic simulated disk. Cloning clones the platters —
/// used by snapshot-style tests, never to share a device.
#[derive(Clone, Debug)]
pub struct SimDisk {
    files: BTreeMap<String, Vec<u8>>,
    seed: u64,
    faults: StorageFaults,
    steps: u64,
    crash_at: Option<u64>,
    powered: bool,
    stats: DiskStats,
}

impl SimDisk {
    /// A powered, empty disk with default fault knobs (torn writes on,
    /// no bit-rot).
    pub fn new(seed: u64) -> SimDisk {
        SimDisk::with_faults(seed, StorageFaults::default())
    }

    /// A disk with explicit fault knobs (see
    /// [`FaultConfig::storage_faults`](crate::faults::FaultConfig::storage_faults)).
    pub fn with_faults(seed: u64, faults: StorageFaults) -> SimDisk {
        SimDisk {
            files: BTreeMap::new(),
            seed,
            faults,
            steps: 0,
            crash_at: None,
            powered: true,
            stats: DiskStats::default(),
        }
    }

    /// Completed I/O steps so far — the domain for [`arm_crash`].
    ///
    /// [`arm_crash`]: SimDisk::arm_crash
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Cumulative I/O accounting.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Whether the device currently has power.
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Schedules power loss during the step whose index is `at_step`
    /// (absolute, 0-based: `at_step == steps()` means "the very next
    /// step"). Steps with smaller indices complete durably.
    pub fn arm_crash(&mut self, at_step: u64) {
        self.crash_at = Some(at_step);
    }

    /// Cancels a pending [`arm_crash`](SimDisk::arm_crash).
    pub fn disarm(&mut self) {
        self.crash_at = None;
    }

    /// Restores power after a crash and applies restart-time bit-rot.
    pub fn restart(&mut self) {
        self.powered = true;
        self.crash_at = None;
        let expected = self.faults.bitrot_flips_per_restart;
        if expected <= 0.0 || self.files.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xb170 ^ self.stats.crashes);
        let mut flips = expected.floor() as u64;
        if rng.gen::<f64>() < expected.fract() {
            flips += 1;
        }
        for _ in 0..flips {
            let names: Vec<&String> = self.files.keys().collect();
            let name = names[rng.gen_range(0..names.len())].clone();
            let file = self.files.get_mut(&name).expect("chosen from keys");
            if file.is_empty() {
                continue;
            }
            let byte = rng.gen_range(0..file.len());
            let bit = rng.gen_range(0..8u32);
            file[byte] ^= 1 << bit;
            self.stats.bitrot_flips += 1;
        }
    }

    /// One atomic metadata step. Returns false if the step was where
    /// power failed (the operation must then not happen).
    fn atomic_step(&mut self) -> Result<(), DiskError> {
        if !self.powered {
            return Err(DiskError::PowerLoss);
        }
        if self.crash_at == Some(self.steps) {
            self.powered = false;
            self.stats.crashes += 1;
            return Err(DiskError::PowerLoss);
        }
        self.steps += 1;
        self.stats.atomic_ops += 1;
        Ok(())
    }

    /// Appends `data` to `name` (creating it if absent), one step per
    /// [`SECTOR_BYTES`] chunk. On power loss mid-append the chunks
    /// already stepped are durable and the in-flight chunk tears.
    pub fn append(&mut self, name: &str, data: &[u8]) -> Result<(), DiskError> {
        if !self.powered {
            return Err(DiskError::PowerLoss);
        }
        self.files.entry(name.to_string()).or_default();
        for chunk in data.chunks(SECTOR_BYTES.max(1)) {
            if self.crash_at == Some(self.steps) {
                self.powered = false;
                self.stats.crashes += 1;
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x70a2 ^ self.steps);
                if rng.gen::<f64>() < self.faults.torn_write_fraction && chunk.len() > 1 {
                    let keep = rng.gen_range(1..chunk.len());
                    let file = self.files.get_mut(name).expect("created above");
                    file.extend_from_slice(&chunk[..keep]);
                    self.stats.torn_sectors += 1;
                }
                return Err(DiskError::PowerLoss);
            }
            self.steps += 1;
            self.stats.sector_writes += 1;
            self.stats.bytes_written += chunk.len() as u64;
            let file = self.files.get_mut(name).expect("created above");
            file.extend_from_slice(chunk);
        }
        Ok(())
    }

    /// Replaces `name` with `data`: one truncate step, then an append.
    /// Crash-interleavings leave either the old file, an empty file,
    /// or a durable prefix of the new bytes — never a splice of both.
    pub fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), DiskError> {
        self.truncate(name, 0)?;
        self.append(name, data)
    }

    /// Truncates `name` to `len` bytes (creating it when absent), one
    /// atomic step.
    pub fn truncate(&mut self, name: &str, len: usize) -> Result<(), DiskError> {
        self.atomic_step()?;
        let file = self.files.entry(name.to_string()).or_default();
        file.truncate(len);
        Ok(())
    }

    /// Atomically renames `from` onto `to` (replacing it), one step.
    /// This is the commit primitive snapshots rely on: at the crash
    /// point the rename simply has not happened.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), DiskError> {
        if !self.powered {
            return Err(DiskError::PowerLoss);
        }
        if !self.files.contains_key(from) {
            return Err(DiskError::NotFound(from.to_string()));
        }
        self.atomic_step()?;
        let body = self.files.remove(from).expect("checked above");
        self.files.insert(to.to_string(), body);
        Ok(())
    }

    /// Deletes `name` (no-op when absent), one atomic step.
    pub fn delete(&mut self, name: &str) -> Result<(), DiskError> {
        self.atomic_step()?;
        self.files.remove(name);
        Ok(())
    }

    /// Reads the whole file. Step-free; metered in
    /// [`DiskStats::bytes_read`].
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, DiskError> {
        if !self.powered {
            return Err(DiskError::PowerLoss);
        }
        match self.files.get(name) {
            Some(body) => {
                self.stats.bytes_read += body.len() as u64;
                Ok(body.clone())
            }
            None => Err(DiskError::NotFound(name.to_string())),
        }
    }

    /// File length without reading it, or None when absent.
    pub fn len_of(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(Vec::len)
    }

    /// All file names with the given prefix, sorted (step-free).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        if !self.powered {
            return Vec::new();
        }
        self.files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Flips one bit in `name` at `byte`/`bit` — targeted corruption
    /// for detection tests.
    pub fn corrupt(&mut self, name: &str, byte: usize, bit: u8) -> bool {
        match self.files.get_mut(name) {
            Some(body) if byte < body.len() => {
                body[byte] ^= 1 << (bit % 8);
                self.stats.bitrot_flips += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_counts_one_step_per_sector() {
        let mut d = SimDisk::new(1);
        d.append("a", &[7u8; SECTOR_BYTES * 2 + 1]).unwrap();
        assert_eq!(d.steps(), 3);
        assert_eq!(d.read("a").unwrap().len(), SECTOR_BYTES * 2 + 1);
    }

    #[test]
    fn crash_tears_only_the_inflight_sector() {
        let mut d = SimDisk::new(42);
        d.append("log", &[1u8; SECTOR_BYTES]).unwrap();
        d.arm_crash(d.steps() + 1); // second sector of the next append
        let err = d.append("log", &[2u8; SECTOR_BYTES * 3]).unwrap_err();
        assert_eq!(err, DiskError::PowerLoss);
        d.restart();
        let body = d.read("log").unwrap();
        // First (pre-crash) sector intact, first appended sector
        // durable, in-flight sector at most a strict prefix.
        assert!(body.len() >= SECTOR_BYTES * 2);
        assert!(body.len() < SECTOR_BYTES * 3);
        assert!(body[..SECTOR_BYTES].iter().all(|&b| b == 1));
        assert!(body[SECTOR_BYTES..].iter().all(|&b| b == 2));
    }

    #[test]
    fn crash_on_rename_means_it_did_not_happen() {
        let mut d = SimDisk::new(7);
        d.append("x.tmp", b"hello").unwrap();
        d.arm_crash(d.steps());
        assert_eq!(d.rename("x.tmp", "x"), Err(DiskError::PowerLoss));
        d.restart();
        assert!(d.read("x").is_err());
        assert_eq!(d.read("x.tmp").unwrap(), b"hello");
        // And with power restored the rename completes atomically.
        d.rename("x.tmp", "x").unwrap();
        assert_eq!(d.read("x").unwrap(), b"hello");
    }

    #[test]
    fn everything_fails_until_restart() {
        let mut d = SimDisk::new(9);
        d.append("f", b"data").unwrap();
        d.arm_crash(d.steps());
        assert!(d.delete("f").is_err());
        assert_eq!(d.append("f", b"more"), Err(DiskError::PowerLoss));
        assert_eq!(d.read("f"), Err(DiskError::PowerLoss));
        assert!(d.list("").is_empty());
        d.restart();
        assert_eq!(d.read("f").unwrap(), b"data");
    }

    #[test]
    fn identical_seeds_and_schedules_are_byte_deterministic() {
        let run = |crash: u64| {
            let mut d = SimDisk::new(0xd15c);
            let _ = d.append("w", &[3u8; 2000]);
            d.arm_crash(crash);
            let _ = d.append("w", &[4u8; 2000]);
            d.restart();
            d.read("w").unwrap()
        };
        for crash in 0..8 {
            assert_eq!(run(crash), run(crash), "crash point {crash}");
        }
    }

    #[test]
    fn bitrot_flips_bits_on_restart() {
        let faults = StorageFaults {
            torn_write_fraction: 1.0,
            bitrot_flips_per_restart: 4.0,
        };
        let mut d = SimDisk::with_faults(5, faults);
        d.append("f", &[0u8; 4096]).unwrap();
        d.arm_crash(d.steps());
        let _ = d.delete("f");
        d.restart();
        assert!(d.stats().bitrot_flips > 0);
        let body = d.read("f").unwrap();
        assert!(body.iter().any(|&b| b != 0), "some bit must have rotted");
    }

    #[test]
    fn targeted_corruption_is_visible() {
        let mut d = SimDisk::new(2);
        d.append("s", &[0u8; 32]).unwrap();
        assert!(d.corrupt("s", 10, 3));
        assert_eq!(d.read("s").unwrap()[10], 1 << 3);
        assert!(!d.corrupt("s", 999, 0));
    }
}
