//! Max-min fair bandwidth allocation (progressive filling) with rate caps.
//!
//! Flow-level simulation's core primitive: given the set of active flows
//! (each a list of directed links it crosses, plus an optional rate cap
//! imposed by its transport's congestion window), divide every link's
//! capacity so that no flow can gain rate without a more-starved flow
//! losing some. This is the classic water-filling algorithm extended with
//! per-flow caps.

use crate::topology::{DirLinkId, Topology};
use crate::units::Bandwidth;

/// One flow's demand for the allocator.
#[derive(Clone, Debug)]
pub struct Demand {
    /// Directed links this flow crosses (empty = node-local, unbounded).
    pub links: Vec<DirLinkId>,
    /// Optional upper bound on the flow's rate (e.g. cwnd/RTT).
    pub cap: Option<Bandwidth>,
}

/// Computes the max-min fair rate (bits/sec) of each demand.
///
/// Progressive filling: repeatedly find the most-constrained link (least
/// residual capacity per unfixed flow), freeze the flows crossing it at
/// that fair share, remove their consumption, and repeat. A flow whose cap
/// is lower than the current global fair share is frozen at its cap first.
///
/// Caps are pre-sorted once (`O(F log F)`), so each filling round costs
/// `O(F + L)` rather than rescanning every demand for its minimum cap;
/// the function stays the reference oracle the incremental allocator in
/// [`crate::flow`] is property-tested against, and must remain usable at
/// 10k+ flows.
pub fn max_min_rates(topo: &Topology, demands: &[Demand]) -> Vec<f64> {
    let nl = topo.dir_link_count();
    let mut residual: Vec<f64> = (0..nl)
        .map(|i| topo.dir_capacity(DirLinkId(i as u32)).bits_per_sec())
        .collect();
    let mut active_on_link = vec![0usize; nl];
    let mut fixed = vec![false; demands.len()];
    let mut rate = vec![0.0f64; demands.len()];

    for d in demands {
        for &l in &d.links {
            active_on_link[l.index()] += 1;
        }
    }

    // Caps of link-crossing flows, pre-sorted ascending so each filling
    // round reads the minimum unfixed cap from a cursor instead of
    // rescanning all F demands.
    let mut caps_sorted: Vec<(f64, usize)> = demands
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.links.is_empty())
        .filter_map(|(i, d)| d.cap.map(|c| (c.bits_per_sec(), i)))
        .collect();
    caps_sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut cap_cursor = 0usize;

    // Unconstrained flows (no links) get their cap, or effectively
    // infinite rate (represented as f64::INFINITY; callers treat local
    // transfers as instantaneous-at-cap).
    for (i, d) in demands.iter().enumerate() {
        if d.links.is_empty() {
            rate[i] = d.cap.map_or(f64::INFINITY, |c| c.bits_per_sec());
            fixed[i] = true;
        }
    }

    loop {
        // Fair share currently offered by each link with unfixed flows.
        let mut bottleneck_share = f64::INFINITY;
        for l in 0..nl {
            if active_on_link[l] > 0 {
                let share = (residual[l] / active_on_link[l] as f64).max(0.0);
                if share < bottleneck_share {
                    bottleneck_share = share;
                }
            }
        }
        if bottleneck_share == f64::INFINITY {
            break; // no unfixed flows remain
        }

        // Lowest cap among unfixed flows, if any cap undercuts the share.
        while cap_cursor < caps_sorted.len() && fixed[caps_sorted[cap_cursor].1] {
            cap_cursor += 1;
        }
        let min_cap = caps_sorted
            .get(cap_cursor)
            .map_or(f64::INFINITY, |&(c, _)| c);

        if min_cap < bottleneck_share {
            // Freeze all cap-limited flows at or below this level.
            let mut j = cap_cursor;
            while j < caps_sorted.len() && caps_sorted[j].0 <= min_cap {
                let (c, i) = caps_sorted[j];
                j += 1;
                if fixed[i] {
                    continue;
                }
                rate[i] = c;
                fixed[i] = true;
                for &l in &demands[i].links {
                    residual[l.index()] = (residual[l.index()] - c).max(0.0);
                    active_on_link[l.index()] -= 1;
                }
            }
        } else {
            // Freeze every unfixed flow crossing a bottleneck link.
            let eps = bottleneck_share * 1e-12 + 1e-9;
            let mut bottleneck = vec![false; nl];
            for l in 0..nl {
                if active_on_link[l] > 0
                    && residual[l] / active_on_link[l] as f64 <= bottleneck_share + eps
                {
                    bottleneck[l] = true;
                }
            }
            let mut froze_any = false;
            for (i, d) in demands.iter().enumerate() {
                if fixed[i] || d.links.iter().all(|l| !bottleneck[l.index()]) {
                    continue;
                }
                rate[i] = bottleneck_share;
                fixed[i] = true;
                froze_any = true;
                for &l in &d.links {
                    residual[l.index()] = (residual[l.index()] - bottleneck_share).max(0.0);
                    active_on_link[l.index()] -= 1;
                }
            }
            debug_assert!(froze_any, "progressive filling failed to make progress");
            if !froze_any {
                break;
            }
        }
    }

    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::TopologyBuilder;

    fn dumbbell(n: usize, edge_gbps: f64, core_gbps: f64) -> (Topology, Vec<Demand>) {
        // n sources, n sinks, one shared core link; every flow crosses the core.
        let mut b = TopologyBuilder::new();
        let left = b.add_node("left-agg");
        let right = b.add_node("right-agg");
        let core = b.add_link(
            left,
            right,
            Bandwidth::gbps(core_gbps),
            SimDuration::from_millis(5),
        );
        let mut demands = Vec::new();
        for i in 0..n {
            let s = b.add_node(format!("src{i}"));
            let d = b.add_node(format!("dst{i}"));
            let ls = b.add_link(
                s,
                left,
                Bandwidth::gbps(edge_gbps),
                SimDuration::from_millis(1),
            );
            let ld = b.add_link(
                right,
                d,
                Bandwidth::gbps(edge_gbps),
                SimDuration::from_millis(1),
            );
            demands.push(Demand {
                links: vec![ls.forward(), core.forward(), ld.forward()],
                cap: None,
            });
        }
        (b.build(), demands)
    }

    #[test]
    fn equal_flows_share_bottleneck_equally() {
        let (t, d) = dumbbell(4, 1.0, 1.0);
        let r = max_min_rates(&t, &d);
        for &x in &r {
            assert!((x - 0.25e9).abs() < 1.0, "rate {x}");
        }
    }

    #[test]
    fn edge_limited_when_core_is_fat() {
        // 10 Gbps core, 1 Gbps edges, 4 flows: each edge-limited at 1 Gbps.
        let (t, d) = dumbbell(4, 1.0, 10.0);
        let r = max_min_rates(&t, &d);
        for &x in &r {
            assert!((x - 1e9).abs() < 1.0);
        }
    }

    #[test]
    fn core_limited_when_oversubscribed() {
        // The paper's CCZ arithmetic: >10 homes at 1 Gbps saturate 10 Gbps.
        let (t, d) = dumbbell(20, 1.0, 10.0);
        let r = max_min_rates(&t, &d);
        for &x in &r {
            assert!((x - 0.5e9).abs() < 1.0);
        }
    }

    #[test]
    fn caps_are_respected_and_redistributed() {
        let (t, mut d) = dumbbell(2, 1.0, 1.0);
        d[0].cap = Some(Bandwidth::mbps(100.0));
        let r = max_min_rates(&t, &d);
        assert!((r[0] - 100e6).abs() < 1.0);
        // The freed capacity goes to the other flow.
        assert!((r[1] - 900e6).abs() < 1.0);
    }

    #[test]
    fn linkless_flows_get_cap_or_infinity() {
        let (t, _) = dumbbell(1, 1.0, 1.0);
        let d = vec![
            Demand {
                links: vec![],
                cap: None,
            },
            Demand {
                links: vec![],
                cap: Some(Bandwidth::mbps(3.0)),
            },
        ];
        let r = max_min_rates(&t, &d);
        assert!(r[0].is_infinite());
        assert!((r[1] - 3e6).abs() < 1.0);
    }

    #[test]
    fn unequal_path_lengths_still_max_min() {
        // Two flows share link L1; one also crosses a private link. Shares
        // on the common bottleneck must be equal.
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let m = b.add_node("m");
        let z = b.add_node("z");
        let l1 = b.add_link(a, m, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        let l2 = b.add_link(m, z, Bandwidth::gbps(10.0), SimDuration::from_millis(1));
        let t = b.build();
        let d = vec![
            Demand {
                links: vec![l1.forward()],
                cap: None,
            },
            Demand {
                links: vec![l1.forward(), l2.forward()],
                cap: None,
            },
        ];
        let r = max_min_rates(&t, &d);
        assert!((r[0] - 0.5e9).abs() < 1.0);
        assert!((r[1] - 0.5e9).abs() < 1.0);
    }

    #[test]
    fn directions_are_independent() {
        // Opposite-direction flows on a full-duplex link don't contend.
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let l = b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        let t = b.build();
        let d = vec![
            Demand {
                links: vec![l.forward()],
                cap: None,
            },
            Demand {
                links: vec![l.reverse()],
                cap: None,
            },
        ];
        let r = max_min_rates(&t, &d);
        assert!((r[0] - 1e9).abs() < 1.0);
        assert!((r[1] - 1e9).abs() < 1.0);
    }

    #[test]
    fn empty_demand_set_is_fine() {
        let (t, _) = dumbbell(1, 1.0, 1.0);
        assert!(max_min_rates(&t, &[]).is_empty());
    }
}
