//! Measurement helpers for the experiment harness: counters, time series
//! and empirical CDFs (the paper's CCZ study reports per-second rate
//! percentiles; [`Cdf`] reproduces that style of result).

use crate::time::SimTime;
use std::fmt;

/// A monotonically increasing event/byte counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A timestamped sequence of samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Timestamps should be non-decreasing; out-of-order
    /// pushes are accepted but make [`TimeSeries::rate_between`] meaningless.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// The values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|&(_, v)| v)
    }

    /// Arithmetic mean of the values; zero for an empty series.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.values().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest value; zero for an empty series.
    pub fn max(&self) -> f64 {
        self.values().fold(0.0, f64::max)
    }

    /// Peak-to-mean ratio — the demand-smoothing experiment's headline
    /// metric (§IV-D). Zero if the mean is zero.
    pub fn peak_to_mean(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.max() / m
        }
    }

    /// Average growth rate between first and last sample, per second of
    /// simulated time (e.g. bytes/sec when samples are cumulative bytes).
    pub fn rate_between(&self) -> Option<f64> {
        let (t0, v0) = *self.samples.first()?;
        let (t1, v1) = *self.samples.last()?;
        let dt = t1.saturating_since(t0).as_secs_f64();
        if dt <= 0.0 {
            None
        } else {
            Some((v1 - v0) / dt)
        }
    }
}

/// An empirical distribution supporting quantiles and exceedance
/// fractions — `fraction_above(x)` answers the paper's "CCZ users exceed
/// 10 Mbps only 0.1% of the time" style of question directly.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Cdf {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a distribution from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut c = Cdf::new();
        for s in samples {
            c.push(s);
        }
        c
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn push(&mut self, v: f64) {
        if v.is_finite() {
            self.sorted.push(v);
            self.dirty = true;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.dirty = false;
        }
    }

    /// The `q`-quantile (q in `[0,1]`), by nearest-rank; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly greater than `x`; zero when empty.
    pub fn fraction_above(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return 0.0;
        }
        let first_above = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - first_above) as f64 / self.sorted.len() as f64
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new();
        for i in 0..5u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.peak_to_mean(), 2.0);
        assert_eq!(s.rate_between(), Some(1.0));
    }

    #[test]
    fn series_edge_cases() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.peak_to_mean(), 0.0);
        assert_eq!(s.rate_between(), None);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.median(), Some(50.0));
        assert_eq!(c.quantile(0.99), Some(99.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
    }

    #[test]
    fn cdf_fraction_above_matches_paper_style_query() {
        // 999 samples at 1 Mbps, 1 sample at 50 Mbps: exceeds 10 Mbps 0.1%
        // of the time — the shape of the CCZ utilization claim.
        let mut c = Cdf::new();
        for _ in 0..999 {
            c.push(1.0);
        }
        c.push(50.0);
        assert!((c.fraction_above(10.0) - 0.001).abs() < 1e-12);
        assert_eq!(c.fraction_above(50.0), 0.0);
        assert_eq!(c.fraction_above(0.5), 1.0);
    }

    #[test]
    fn cdf_ignores_non_finite() {
        let mut c = Cdf::new();
        c.push(f64::NAN);
        c.push(f64::INFINITY);
        c.push(3.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn cdf_empty() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_above(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        let mut c = Cdf::from_samples([1.0]);
        let _ = c.quantile(1.5);
    }
}
