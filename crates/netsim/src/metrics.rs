//! Measurement helpers for the experiment harness: counters, time series
//! and empirical CDFs (the paper's CCZ study reports per-second rate
//! percentiles; [`Cdf`] reproduces that style of result).
//!
//! [`Counter`] and [`Cdf`] moved to `hpop-obs` so every crate shares
//! one measurement vocabulary; they are re-exported here unchanged.
//! [`TimeSeries`] stays local because it is keyed by [`SimTime`].

pub use hpop_obs::{Cdf, Counter};

use crate::time::SimTime;

/// A timestamped sequence of samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Timestamps should be non-decreasing; out-of-order
    /// pushes are accepted but make [`TimeSeries::rate_between`] meaningless.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// The values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|&(_, v)| v)
    }

    /// Arithmetic mean of the values; zero for an empty series.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.values().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest value; zero for an empty series.
    pub fn max(&self) -> f64 {
        self.values().fold(0.0, f64::max)
    }

    /// Peak-to-mean ratio — the demand-smoothing experiment's headline
    /// metric (§IV-D). Zero if the mean is zero.
    pub fn peak_to_mean(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.max() / m
        }
    }

    /// Average growth rate between first and last sample, per second of
    /// simulated time (e.g. bytes/sec when samples are cumulative bytes).
    pub fn rate_between(&self) -> Option<f64> {
        let (t0, v0) = *self.samples.first()?;
        let (t1, v1) = *self.samples.last()?;
        let dt = t1.saturating_since(t0).as_secs_f64();
        if dt <= 0.0 {
            None
        } else {
            Some((v1 - v0) / dt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new();
        for i in 0..5u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.peak_to_mean(), 2.0);
        assert_eq!(s.rate_between(), Some(1.0));
    }

    #[test]
    fn series_edge_cases() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.peak_to_mean(), 0.0);
        assert_eq!(s.rate_between(), None);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.median(), Some(50.0));
        assert_eq!(c.quantile(0.99), Some(99.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
    }

    #[test]
    fn cdf_fraction_above_matches_paper_style_query() {
        // 999 samples at 1 Mbps, 1 sample at 50 Mbps: exceeds 10 Mbps 0.1%
        // of the time — the shape of the CCZ utilization claim.
        let mut c = Cdf::new();
        for _ in 0..999 {
            c.push(1.0);
        }
        c.push(50.0);
        assert!((c.fraction_above(10.0) - 0.001).abs() < 1e-12);
        assert_eq!(c.fraction_above(50.0), 0.0);
        assert_eq!(c.fraction_above(0.5), 1.0);
    }

    #[test]
    fn cdf_ignores_non_finite() {
        let mut c = Cdf::new();
        c.push(f64::NAN);
        c.push(f64::INFINITY);
        c.push(3.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn cdf_empty() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_above(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        let mut c = Cdf::from_samples([1.0]);
        let _ = c.quantile(1.5);
    }
}
