//! Canonical topologies from the paper.
//!
//! - [`ccz`]: the Case Connection Zone — N homes on bi-directional 1 Gbps
//!   fiber, aggregated onto a shared uplink to the Internet core (§II).
//! - [`dumbbell`]: the classic shared-bottleneck shape used for the
//!   bottleneck-shift experiment.
//! - [`detour_triangle`]: a client/waypoint/server triangle whose direct
//!   path violates the triangle inequality — the §IV-C detour setting.

use crate::time::SimDuration;
use crate::topology::{NodeId, Topology, TopologyBuilder};
use crate::units::Bandwidth;

/// A built CCZ-style neighborhood: node handles for experiments.
#[derive(Clone, Debug)]
pub struct CczNetwork {
    /// The topology itself.
    pub topology: Topology,
    /// One node per home (each hosts an HPoP).
    pub homes: Vec<NodeId>,
    /// The neighborhood aggregation switch.
    pub aggregation: NodeId,
    /// The wide-area Internet core.
    pub core: NodeId,
    /// A representative remote content server beyond the core.
    pub server: NodeId,
}

/// Parameters for [`ccz`]. Defaults follow the paper: 100 homes × 1 Gbps
/// onto a shared 10 Gbps aggregation link, 25 ms to a remote server.
#[derive(Clone, Debug)]
pub struct CczParams {
    /// Number of homes in the neighborhood.
    pub homes: usize,
    /// Per-home access capacity (symmetric FTTH).
    pub home_capacity: Bandwidth,
    /// Shared neighborhood uplink capacity.
    pub aggregation_capacity: Bandwidth,
    /// Core→server link capacity (the server farm's limit).
    pub server_capacity: Bandwidth,
    /// One-way home↔aggregation latency.
    pub access_latency: SimDuration,
    /// One-way aggregation↔core latency.
    pub metro_latency: SimDuration,
    /// One-way core↔server latency (the WAN distance).
    pub wan_latency: SimDuration,
}

impl Default for CczParams {
    fn default() -> Self {
        CczParams {
            homes: 100,
            home_capacity: Bandwidth::gbps(1.0),
            aggregation_capacity: Bandwidth::gbps(10.0),
            server_capacity: Bandwidth::gbps(40.0),
            access_latency: SimDuration::from_micros(500),
            metro_latency: SimDuration::from_millis(2),
            wan_latency: SimDuration::from_millis(22),
        }
    }
}

/// Builds a CCZ-style FTTH neighborhood.
///
/// ```
/// use hpop_netsim::presets::{ccz, CczParams};
/// let net = ccz(&CczParams::default());
/// assert_eq!(net.homes.len(), 100);
/// ```
pub fn ccz(params: &CczParams) -> CczNetwork {
    let mut b = TopologyBuilder::new();
    let aggregation = b.add_node("aggregation");
    let core = b.add_node("core");
    let server = b.add_node("server");
    b.add_link(
        aggregation,
        core,
        params.aggregation_capacity,
        params.metro_latency,
    );
    b.add_link(core, server, params.server_capacity, params.wan_latency);
    let homes = (0..params.homes)
        .map(|i| {
            let h = b.add_node(format!("home{i:03}"));
            b.add_link(h, aggregation, params.home_capacity, params.access_latency);
            h
        })
        .collect();
    CczNetwork {
        topology: b.build(),
        homes,
        aggregation,
        core,
        server,
    }
}

/// A built dumbbell: `pairs` source/sink pairs across one shared link.
#[derive(Clone, Debug)]
pub struct Dumbbell {
    /// The topology itself.
    pub topology: Topology,
    /// Source nodes (left side).
    pub sources: Vec<NodeId>,
    /// Sink nodes (right side).
    pub sinks: Vec<NodeId>,
}

/// Builds a dumbbell with `pairs` flows' worth of endpoints, `edge`
/// capacity per access link and `core` capacity on the shared link.
pub fn dumbbell(
    pairs: usize,
    edge: Bandwidth,
    core: Bandwidth,
    core_latency: SimDuration,
) -> Dumbbell {
    let mut b = TopologyBuilder::new();
    let left = b.add_node("left");
    let right = b.add_node("right");
    b.add_link(left, right, core, core_latency);
    let mut sources = Vec::with_capacity(pairs);
    let mut sinks = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let s = b.add_node(format!("src{i}"));
        let d = b.add_node(format!("dst{i}"));
        b.add_link(s, left, edge, SimDuration::from_micros(100));
        b.add_link(right, d, edge, SimDuration::from_micros(100));
        sources.push(s);
        sinks.push(d);
    }
    Dumbbell {
        topology: b.build(),
        sources,
        sinks,
    }
}

/// A detour triangle for §IV-C experiments.
#[derive(Clone, Debug)]
pub struct DetourTriangle {
    /// The topology itself.
    pub topology: Topology,
    /// The client (an MPTCP-capable host in an ultrabroadband home).
    pub client: NodeId,
    /// The cooperative waypoint (another member's HPoP).
    pub waypoint: NodeId,
    /// The remote content server.
    pub server: NodeId,
}

/// Parameters for [`detour_triangle`].
#[derive(Clone, Debug)]
pub struct DetourParams {
    /// Direct client↔server latency (the inflated native route).
    pub direct_latency: SimDuration,
    /// Direct path capacity.
    pub direct_capacity: Bandwidth,
    /// Direct path loss probability.
    pub direct_loss: f64,
    /// Client↔waypoint latency.
    pub leg1_latency: SimDuration,
    /// Waypoint↔server latency.
    pub leg2_latency: SimDuration,
    /// Detour leg capacity (both legs).
    pub leg_capacity: Bandwidth,
    /// Detour leg loss probability (both legs).
    pub leg_loss: f64,
}

impl Default for DetourParams {
    fn default() -> Self {
        // A triangle-inequality violation of the magnitude detour studies
        // report: the native route takes 80 ms with 2% loss; via the
        // waypoint it is 25+25 ms and clean.
        DetourParams {
            direct_latency: SimDuration::from_millis(80),
            direct_capacity: Bandwidth::mbps(200.0),
            direct_loss: 0.02,
            leg1_latency: SimDuration::from_millis(25),
            leg2_latency: SimDuration::from_millis(25),
            leg_capacity: Bandwidth::gbps(1.0),
            leg_loss: 0.0,
        }
    }
}

/// Builds a client/waypoint/server triangle.
pub fn detour_triangle(p: &DetourParams) -> DetourTriangle {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let waypoint = b.add_node("waypoint");
    let server = b.add_node("server");
    // The direct link is what native (policy) routing picks — weight 1 —
    // even though its latency/loss are worse than the detour. This is
    // the triangle-inequality violation detour routing exploits.
    b.add_link_weighted(
        client,
        server,
        p.direct_capacity,
        p.direct_capacity,
        p.direct_latency,
        p.direct_loss,
        1,
    );
    b.add_link_full(
        client,
        waypoint,
        p.leg_capacity,
        p.leg_capacity,
        p.leg1_latency,
        p.leg_loss,
    );
    b.add_link_full(
        waypoint,
        server,
        p.leg_capacity,
        p.leg_capacity,
        p.leg2_latency,
        p.leg_loss,
    );
    DetourTriangle {
        topology: b.build(),
        client,
        waypoint,
        server,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    #[test]
    fn ccz_shape() {
        let net = ccz(&CczParams::default());
        assert_eq!(net.homes.len(), 100);
        // homes + aggregation + core + server
        assert_eq!(net.topology.node_count(), 103);
        assert_eq!(net.topology.link_count(), 102);
    }

    #[test]
    fn ccz_home_to_server_route() {
        let net = ccz(&CczParams::default());
        let mut rt = RoutingTable::new(&net.topology);
        let p = rt.route(net.homes[0], net.server).unwrap();
        assert_eq!(p.hop_count(), 3);
        // 0.5ms + 2ms + 22ms one-way = 49ms RTT.
        assert_eq!(p.rtt(&net.topology), SimDuration::from_millis(49));
        assert_eq!(p.bottleneck(&net.topology).unwrap(), Bandwidth::gbps(1.0));
    }

    #[test]
    fn ccz_lateral_bandwidth() {
        // §II: neighbors have dedicated gigabit to each other via the
        // aggregation switch, bypassing the shared uplink.
        let net = ccz(&CczParams::default());
        let mut rt = RoutingTable::new(&net.topology);
        let p = rt.route(net.homes[0], net.homes[1]).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.bottleneck(&net.topology).unwrap(), Bandwidth::gbps(1.0));
        // The route does not touch the aggregation→core uplink.
        assert!(p.hops().iter().all(|h| net.topology.dir_to(*h) != net.core));
    }

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(
            5,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(10.0),
            SimDuration::from_millis(5),
        );
        assert_eq!(d.sources.len(), 5);
        assert_eq!(d.topology.link_count(), 11);
    }

    #[test]
    fn detour_triangle_violates_triangle_inequality() {
        let t = detour_triangle(&DetourParams::default());
        let mut rt = RoutingTable::new(&t.topology);
        // Native (policy) routing picks the direct link despite its
        // worse latency and loss…
        let native = rt.route(t.client, t.server).unwrap();
        assert_eq!(native.hop_count(), 1);
        assert_eq!(native.latency(&t.topology), SimDuration::from_millis(80));
        assert!(native.loss(&t.topology) > 0.0);
        // …while the waypoint detour is strictly better: the violation.
        let via = rt.route_via(t.client, t.waypoint, t.server).unwrap();
        assert!(via.latency(&t.topology) < native.latency(&t.topology));
        assert_eq!(via.loss(&t.topology), 0.0);
    }
}
