//! Canonical topologies from the paper.
//!
//! - [`ccz`]: the Case Connection Zone — N homes on bi-directional 1 Gbps
//!   fiber, aggregated onto a shared uplink to the Internet core (§II).
//! - [`dumbbell`]: the classic shared-bottleneck shape used for the
//!   bottleneck-shift experiment.
//! - [`detour_triangle`]: a client/waypoint/server triangle whose direct
//!   path violates the triangle inequality — the §IV-C detour setting.
//! - [`metro`]: the hierarchical city (homes → aggregation → metro →
//!   backbone) for metro-scale experiments; tree paths are computed in
//!   O(1) without Dijkstra, which the incremental allocator exploits.

use crate::time::SimDuration;
use crate::topology::{DirLinkId, NodeId, Topology, TopologyBuilder};
use crate::units::Bandwidth;

/// A built CCZ-style neighborhood: node handles for experiments.
#[derive(Clone, Debug)]
pub struct CczNetwork {
    /// The topology itself.
    pub topology: Topology,
    /// One node per home (each hosts an HPoP).
    pub homes: Vec<NodeId>,
    /// The neighborhood aggregation switch.
    pub aggregation: NodeId,
    /// The wide-area Internet core.
    pub core: NodeId,
    /// A representative remote content server beyond the core.
    pub server: NodeId,
}

/// Parameters for [`ccz`]. Defaults follow the paper: 100 homes × 1 Gbps
/// onto a shared 10 Gbps aggregation link, 25 ms to a remote server.
#[derive(Clone, Debug)]
pub struct CczParams {
    /// Number of homes in the neighborhood.
    pub homes: usize,
    /// Per-home access capacity (symmetric FTTH).
    pub home_capacity: Bandwidth,
    /// Shared neighborhood uplink capacity.
    pub aggregation_capacity: Bandwidth,
    /// Core→server link capacity (the server farm's limit).
    pub server_capacity: Bandwidth,
    /// One-way home↔aggregation latency.
    pub access_latency: SimDuration,
    /// One-way aggregation↔core latency.
    pub metro_latency: SimDuration,
    /// One-way core↔server latency (the WAN distance).
    pub wan_latency: SimDuration,
}

impl Default for CczParams {
    fn default() -> Self {
        CczParams {
            homes: 100,
            home_capacity: Bandwidth::gbps(1.0),
            aggregation_capacity: Bandwidth::gbps(10.0),
            server_capacity: Bandwidth::gbps(40.0),
            access_latency: SimDuration::from_micros(500),
            metro_latency: SimDuration::from_millis(2),
            wan_latency: SimDuration::from_millis(22),
        }
    }
}

/// Builds a CCZ-style FTTH neighborhood.
///
/// ```
/// use hpop_netsim::presets::{ccz, CczParams};
/// let net = ccz(&CczParams::default());
/// assert_eq!(net.homes.len(), 100);
/// ```
pub fn ccz(params: &CczParams) -> CczNetwork {
    let mut b = TopologyBuilder::new();
    let aggregation = b.add_node("aggregation");
    let core = b.add_node("core");
    let server = b.add_node("server");
    b.add_link(
        aggregation,
        core,
        params.aggregation_capacity,
        params.metro_latency,
    );
    b.add_link(core, server, params.server_capacity, params.wan_latency);
    let homes = (0..params.homes)
        .map(|i| {
            let h = b.add_node(format!("home{i:03}"));
            b.add_link(h, aggregation, params.home_capacity, params.access_latency);
            h
        })
        .collect();
    CczNetwork {
        topology: b.build(),
        homes,
        aggregation,
        core,
        server,
    }
}

/// A built dumbbell: `pairs` source/sink pairs across one shared link.
#[derive(Clone, Debug)]
pub struct Dumbbell {
    /// The topology itself.
    pub topology: Topology,
    /// Source nodes (left side).
    pub sources: Vec<NodeId>,
    /// Sink nodes (right side).
    pub sinks: Vec<NodeId>,
}

/// Builds a dumbbell with `pairs` flows' worth of endpoints, `edge`
/// capacity per access link and `core` capacity on the shared link.
pub fn dumbbell(
    pairs: usize,
    edge: Bandwidth,
    core: Bandwidth,
    core_latency: SimDuration,
) -> Dumbbell {
    let mut b = TopologyBuilder::new();
    let left = b.add_node("left");
    let right = b.add_node("right");
    b.add_link(left, right, core, core_latency);
    let mut sources = Vec::with_capacity(pairs);
    let mut sinks = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let s = b.add_node(format!("src{i}"));
        let d = b.add_node(format!("dst{i}"));
        b.add_link(s, left, edge, SimDuration::from_micros(100));
        b.add_link(right, d, edge, SimDuration::from_micros(100));
        sources.push(s);
        sinks.push(d);
    }
    Dumbbell {
        topology: b.build(),
        sources,
        sinks,
    }
}

/// A detour triangle for §IV-C experiments.
#[derive(Clone, Debug)]
pub struct DetourTriangle {
    /// The topology itself.
    pub topology: Topology,
    /// The client (an MPTCP-capable host in an ultrabroadband home).
    pub client: NodeId,
    /// The cooperative waypoint (another member's HPoP).
    pub waypoint: NodeId,
    /// The remote content server.
    pub server: NodeId,
}

/// Parameters for [`detour_triangle`].
#[derive(Clone, Debug)]
pub struct DetourParams {
    /// Direct client↔server latency (the inflated native route).
    pub direct_latency: SimDuration,
    /// Direct path capacity.
    pub direct_capacity: Bandwidth,
    /// Direct path loss probability.
    pub direct_loss: f64,
    /// Client↔waypoint latency.
    pub leg1_latency: SimDuration,
    /// Waypoint↔server latency.
    pub leg2_latency: SimDuration,
    /// Detour leg capacity (both legs).
    pub leg_capacity: Bandwidth,
    /// Detour leg loss probability (both legs).
    pub leg_loss: f64,
}

impl Default for DetourParams {
    fn default() -> Self {
        // A triangle-inequality violation of the magnitude detour studies
        // report: the native route takes 80 ms with 2% loss; via the
        // waypoint it is 25+25 ms and clean.
        DetourParams {
            direct_latency: SimDuration::from_millis(80),
            direct_capacity: Bandwidth::mbps(200.0),
            direct_loss: 0.02,
            leg1_latency: SimDuration::from_millis(25),
            leg2_latency: SimDuration::from_millis(25),
            leg_capacity: Bandwidth::gbps(1.0),
            leg_loss: 0.0,
        }
    }
}

/// Builds a client/waypoint/server triangle.
pub fn detour_triangle(p: &DetourParams) -> DetourTriangle {
    let mut b = TopologyBuilder::new();
    let client = b.add_node("client");
    let waypoint = b.add_node("waypoint");
    let server = b.add_node("server");
    // The direct link is what native (policy) routing picks — weight 1 —
    // even though its latency/loss are worse than the detour. This is
    // the triangle-inequality violation detour routing exploits.
    b.add_link_weighted(
        client,
        server,
        p.direct_capacity,
        p.direct_capacity,
        p.direct_latency,
        p.direct_loss,
        1,
    );
    b.add_link_full(
        client,
        waypoint,
        p.leg_capacity,
        p.leg_capacity,
        p.leg1_latency,
        p.leg_loss,
    );
    b.add_link_full(
        waypoint,
        server,
        p.leg_capacity,
        p.leg_capacity,
        p.leg2_latency,
        p.leg_loss,
    );
    DetourTriangle {
        topology: b.build(),
        client,
        waypoint,
        server,
    }
}

/// Parameters for [`metro`]. Defaults model a CCZ-style city: 1 Gbps
/// homes, 32 per aggregation switch on oversubscribed 10 Gbps uplinks,
/// 16 aggregations per metro PoP on 100 Gbps, all metro PoPs on a
/// 1 Tbps backbone node.
#[derive(Clone, Debug)]
pub struct MetroParams {
    /// Total number of homes in the city.
    pub homes: usize,
    /// Homes per aggregation switch.
    pub homes_per_agg: usize,
    /// Aggregation switches per metro PoP.
    pub aggs_per_metro: usize,
    /// Per-home access capacity (symmetric FTTH).
    pub home_capacity: Bandwidth,
    /// Aggregation→metro uplink capacity (shared by its homes).
    pub agg_uplink: Bandwidth,
    /// Metro→backbone uplink capacity (shared by its aggregations).
    pub metro_uplink: Bandwidth,
    /// One-way home↔aggregation latency.
    pub access_latency: SimDuration,
    /// One-way aggregation↔metro latency.
    pub agg_latency: SimDuration,
    /// One-way metro↔backbone latency.
    pub metro_latency: SimDuration,
}

impl Default for MetroParams {
    fn default() -> Self {
        MetroParams {
            homes: 1024,
            homes_per_agg: 32,
            aggs_per_metro: 16,
            home_capacity: Bandwidth::gbps(1.0),
            agg_uplink: Bandwidth::gbps(10.0),
            metro_uplink: Bandwidth::gbps(100.0),
            access_latency: SimDuration::from_micros(500),
            agg_latency: SimDuration::from_millis(1),
            metro_latency: SimDuration::from_millis(2),
        }
    }
}

/// A built hierarchical city. Paths between any two homes (or a home and
/// the backbone) follow the unique tree route and are produced in O(1)
/// from precomputed uplink hops — no Dijkstra, which matters at a
/// million nodes where a single `RoutingTable::route` call is O(n).
#[derive(Clone, Debug)]
pub struct MetroNetwork {
    /// The topology itself.
    pub topology: Topology,
    /// One node per home.
    pub homes: Vec<NodeId>,
    /// The city backbone node (the root of the tree).
    pub backbone: NodeId,
    homes_per_agg: usize,
    aggs_per_metro: usize,
    /// Per home: `[home→agg, agg→metro, metro→backbone]` directed hops.
    up: Vec<[DirLinkId; 3]>,
}

impl MetroNetwork {
    /// Number of homes in the city.
    pub fn home_count(&self) -> usize {
        self.homes.len()
    }

    /// The three uplink hops from a home to the backbone, in order.
    pub fn up_hops(&self, home: usize) -> [DirLinkId; 3] {
        self.up[home]
    }

    /// Fills `buf` with the unique tree path between two distinct homes:
    /// up from `a` to the lowest common ancestor, then down to `b`.
    pub fn path_between(&self, a: usize, b: usize, buf: &mut Vec<DirLinkId>) {
        buf.clear();
        if a == b {
            return;
        }
        let (ua, ub) = (self.up[a], self.up[b]);
        let (agg_a, agg_b) = (a / self.homes_per_agg, b / self.homes_per_agg);
        let depth = if agg_a == agg_b {
            1
        } else if agg_a / self.aggs_per_metro == agg_b / self.aggs_per_metro {
            2
        } else {
            3
        };
        for hop in ua.iter().take(depth) {
            buf.push(*hop);
        }
        for hop in ub.iter().take(depth).rev() {
            buf.push(hop.reversed());
        }
    }
}

/// Builds a hierarchical city: homes → aggregation → metro → backbone.
///
/// ```
/// use hpop_netsim::presets::{metro, MetroParams};
/// let city = metro(&MetroParams { homes: 256, ..MetroParams::default() });
/// assert_eq!(city.home_count(), 256);
/// assert_eq!(city.up_hops(0).len(), 3);
/// ```
pub fn metro(params: &MetroParams) -> MetroNetwork {
    assert!(params.homes > 0, "a city needs homes");
    assert!(params.homes_per_agg > 0 && params.aggs_per_metro > 0);
    let n_aggs = params.homes.div_ceil(params.homes_per_agg);
    let n_metros = n_aggs.div_ceil(params.aggs_per_metro);

    let mut b = TopologyBuilder::new();
    let backbone = b.add_node("backbone");
    let mut metro_up = Vec::with_capacity(n_metros);
    for m in 0..n_metros {
        let pop = b.add_node(format!("metro{m}"));
        let l = b.add_link(pop, backbone, params.metro_uplink, params.metro_latency);
        metro_up.push((pop, l.forward()));
    }
    let mut agg_up = Vec::with_capacity(n_aggs);
    for a in 0..n_aggs {
        let (pop, pop_up) = metro_up[a / params.aggs_per_metro];
        let sw = b.add_node(format!("agg{a}"));
        let l = b.add_link(sw, pop, params.agg_uplink, params.agg_latency);
        agg_up.push((sw, l.forward(), pop_up));
    }
    let mut homes = Vec::with_capacity(params.homes);
    let mut up = Vec::with_capacity(params.homes);
    for h in 0..params.homes {
        let (sw, sw_up, pop_up) = agg_up[h / params.homes_per_agg];
        let home = b.add_node(format!("h{h}"));
        let l = b.add_link(home, sw, params.home_capacity, params.access_latency);
        homes.push(home);
        up.push([l.forward(), sw_up, pop_up]);
    }
    MetroNetwork {
        topology: b.build(),
        homes,
        backbone,
        homes_per_agg: params.homes_per_agg,
        aggs_per_metro: params.aggs_per_metro,
        up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    #[test]
    fn ccz_shape() {
        let net = ccz(&CczParams::default());
        assert_eq!(net.homes.len(), 100);
        // homes + aggregation + core + server
        assert_eq!(net.topology.node_count(), 103);
        assert_eq!(net.topology.link_count(), 102);
    }

    #[test]
    fn ccz_home_to_server_route() {
        let net = ccz(&CczParams::default());
        let mut rt = RoutingTable::new(&net.topology);
        let p = rt.route(net.homes[0], net.server).unwrap();
        assert_eq!(p.hop_count(), 3);
        // 0.5ms + 2ms + 22ms one-way = 49ms RTT.
        assert_eq!(p.rtt(&net.topology), SimDuration::from_millis(49));
        assert_eq!(p.bottleneck(&net.topology).unwrap(), Bandwidth::gbps(1.0));
    }

    #[test]
    fn ccz_lateral_bandwidth() {
        // §II: neighbors have dedicated gigabit to each other via the
        // aggregation switch, bypassing the shared uplink.
        let net = ccz(&CczParams::default());
        let mut rt = RoutingTable::new(&net.topology);
        let p = rt.route(net.homes[0], net.homes[1]).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.bottleneck(&net.topology).unwrap(), Bandwidth::gbps(1.0));
        // The route does not touch the aggregation→core uplink.
        assert!(p.hops().iter().all(|h| net.topology.dir_to(*h) != net.core));
    }

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(
            5,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(10.0),
            SimDuration::from_millis(5),
        );
        assert_eq!(d.sources.len(), 5);
        assert_eq!(d.topology.link_count(), 11);
    }

    #[test]
    fn detour_triangle_violates_triangle_inequality() {
        let t = detour_triangle(&DetourParams::default());
        let mut rt = RoutingTable::new(&t.topology);
        // Native (policy) routing picks the direct link despite its
        // worse latency and loss…
        let native = rt.route(t.client, t.server).unwrap();
        assert_eq!(native.hop_count(), 1);
        assert_eq!(native.latency(&t.topology), SimDuration::from_millis(80));
        assert!(native.loss(&t.topology) > 0.0);
        // …while the waypoint detour is strictly better: the violation.
        let via = rt.route_via(t.client, t.waypoint, t.server).unwrap();
        assert!(via.latency(&t.topology) < native.latency(&t.topology));
        assert_eq!(via.loss(&t.topology), 0.0);
    }

    #[test]
    fn metro_shape() {
        let city = metro(&MetroParams {
            homes: 100,
            homes_per_agg: 10,
            aggs_per_metro: 4,
            ..MetroParams::default()
        });
        // 100 homes, 10 aggs, 3 metros, 1 backbone; one link per child.
        assert_eq!(city.home_count(), 100);
        assert_eq!(city.topology.node_count(), 114);
        assert_eq!(city.topology.link_count(), 113);
    }

    #[test]
    fn metro_tree_paths_match_dijkstra() {
        let city = metro(&MetroParams {
            homes: 48,
            homes_per_agg: 8,
            aggs_per_metro: 2,
            ..MetroParams::default()
        });
        let mut rt = RoutingTable::new(&city.topology);
        let mut buf = Vec::new();
        // Same agg (1+1 hops), same metro (2+2), cross-metro (3+3).
        for (a, b, hops) in [(0usize, 1usize, 2), (0, 9, 4), (0, 40, 6)] {
            city.path_between(a, b, &mut buf);
            assert_eq!(buf.len(), hops, "{a}->{b}");
            let want = rt.route(city.homes[a], city.homes[b]).unwrap();
            assert_eq!(buf.as_slice(), want.hops(), "{a}->{b}");
        }
        // Up-hops reach the backbone contiguously.
        let up = city.up_hops(17);
        assert_eq!(city.topology.dir_from(up[0]), city.homes[17]);
        assert_eq!(city.topology.dir_to(up[2]), city.backbone);
        assert_eq!(city.topology.dir_to(up[0]), city.topology.dir_from(up[1]));
        assert_eq!(city.topology.dir_to(up[1]), city.topology.dir_from(up[2]));
    }

    #[test]
    fn metro_flows_contend_on_agg_uplink() {
        // 64 homes under one agg, all pushing to the backbone: the
        // 10 Gbps agg uplink is the bottleneck, so each gets ~156 Mbps.
        use crate::flow::FlowNet;
        use crate::time::SimTime;
        use hpop_obs::TraceCtx;
        let city = metro(&MetroParams {
            homes: 64,
            homes_per_agg: 64,
            ..MetroParams::default()
        });
        let mut net = FlowNet::new(city.topology.clone());
        let mut ids = Vec::new();
        for h in 0..64 {
            let id = net.start_on_hops(
                city.homes[h],
                city.backbone,
                &city.up_hops(h),
                1 << 30,
                None,
                SimTime::ZERO,
                TraceCtx::NONE,
            );
            ids.push(id);
        }
        let want = 10e9 / 64.0;
        for id in ids {
            let got = net.rate(id).unwrap().bits_per_sec();
            assert!((got - want).abs() < want * 1e-6, "rate {got}");
        }
    }
}
