//! Typed units: bandwidth and byte sizes.

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// One kilobyte (10^3 bytes).
pub const KB: u64 = 1_000;
/// One megabyte (10^6 bytes).
pub const MB: u64 = 1_000_000;
/// One gigabyte (10^9 bytes).
pub const GB: u64 = 1_000_000_000;

/// A data rate in bits per second.
///
/// The paper reasons in link-capacity units (1 Gbps homes, 10 Gbps
/// aggregation); this newtype keeps bits and bytes from being confused.
///
/// ```
/// use hpop_netsim::units::Bandwidth;
/// let fiber = Bandwidth::gbps(1.0);
/// assert_eq!(fiber.bits_per_sec(), 1e9);
/// assert_eq!(fiber.bytes_per_sec(), 1.25e8);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Constructs a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or non-finite.
    pub fn from_bps(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth: {bps}");
        Bandwidth(bps)
    }

    /// Kilobits per second.
    pub fn kbps(k: f64) -> Self {
        Self::from_bps(k * 1e3)
    }

    /// Megabits per second.
    pub fn mbps(m: f64) -> Self {
        Self::from_bps(m * 1e6)
    }

    /// Gigabits per second.
    pub fn gbps(g: f64) -> Self {
        Self::from_bps(g * 1e9)
    }

    /// The rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// The rate in megabits per second (reporting convenience).
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Time needed to serialize `bytes` at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for zero bandwidth (the transfer never
    /// finishes), and [`SimDuration::ZERO`] for zero bytes.
    pub fn time_to_send(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.0)
    }

    /// Bytes delivered during `dt` at this rate.
    pub fn bytes_in(self, dt: SimDuration) -> f64 {
        self.bytes_per_sec() * dt.as_secs_f64()
    }

    /// The bandwidth-delay product, in bytes — how much data must be in
    /// flight to keep a path of this capacity and the given RTT full.
    /// Central to the paper's §IV-D ramp-up argument.
    pub fn bdp_bytes(self, rtt: SimDuration) -> f64 {
        self.bytes_per_sec() * rtt.as_secs_f64()
    }

    /// The smaller of two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth::from_bps(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth::from_bps(self.0 / rhs)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2}Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

/// Formats a byte count with a human-readable unit (reporting helper).
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GB {
        format!("{:.2}GB", bytes as f64 / GB as f64)
    } else if bytes >= MB {
        format!("{:.2}MB", bytes as f64 / MB as f64)
    } else if bytes >= KB {
        format!("{:.2}KB", bytes as f64 / KB as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_serialization_time() {
        // 125 MB at 1 Gbps takes exactly 1 second.
        let t = Bandwidth::gbps(1.0).time_to_send(125 * MB);
        assert_eq!(t, SimDuration::from_secs(1));
    }

    #[test]
    fn zero_bandwidth_never_finishes() {
        assert_eq!(Bandwidth::ZERO.time_to_send(1), SimDuration::MAX);
        assert_eq!(Bandwidth::ZERO.time_to_send(0), SimDuration::ZERO);
    }

    #[test]
    fn bdp_matches_paper_example() {
        // §IV-D: 1 Gbps at 50 ms RTT needs ~6.25 MB in flight per RTT.
        let bdp = Bandwidth::gbps(1.0).bdp_bytes(SimDuration::from_millis(50));
        assert!((bdp - 6.25e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::from_bps(-5.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::gbps(10.0).to_string(), "10.00Gbps");
        assert_eq!(Bandwidth::mbps(0.5).to_string(), "500.00Kbps");
        assert_eq!(format_bytes(14 * MB), "14.00MB");
    }

    #[test]
    fn arithmetic_saturates_at_zero() {
        let d = Bandwidth::mbps(1.0) - Bandwidth::mbps(2.0);
        assert_eq!(d, Bandwidth::ZERO);
    }
}
