//! Seeded adversarial-accounting campaigns.
//!
//! [`crate::faults`] models *accidents* — crashes, loss, partitions.
//! This module models *adversaries*: coordinated Sybil/collusion
//! campaigns against the NoCDN accounting plane, materialized the same
//! way a [`FaultPlan`](crate::faults::FaultPlan) is — fully determined
//! at construction from `(config, n)`, node-indexed seed streams so
//! growing the population never reshuffles earlier nodes' roles, and a
//! passive-oracle query surface the campaign executor drives against.
//! An [`AttackPlan`] composes freely with a `FaultPlan` on the same
//! population: the chaos preset can rage while a Sybil swarm farms
//! usage records (experiment E25 runs exactly that overlay).
//!
//! The campaign taxonomy follows the accounting threat model
//! (PAPER.md §IV-B, CAPnet in PAPERS.md):
//!
//! - **Sybil swarm** — one attacker mints many fake *client* identities
//!   whose page views are real protocol traffic but whose demand is
//!   synthetic; every record lands on colluding peers.
//! - **Collusion at scale** — attacker-controlled peers and clients
//!   countersign records for transfers that never happened, several
//!   fabrications per real serve.
//! - **Record laundering** — fabrications are *mixed* into genuine
//!   traffic at a fraction tuned to keep per-peer payment rates near
//!   the honest baseline, dodging anomaly scoring.
//! - **Adaptive** — the attacker knows the detector's threshold and
//!   throttles fabrication to stay a configured headroom below it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which campaign the colluding clique runs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CampaignKind {
    /// Each colluding peer is fed by this many minted Sybil client
    /// identities, each generating synthetic (but real-protocol) load.
    SybilSwarm {
        /// Fake client identities per colluding peer.
        sybils_per_peer: u32,
    },
    /// For every real serve, a colluding peer uploads this many
    /// additional fabricated records countersigned by colluding
    /// clients.
    CollusionAtScale {
        /// Fabricated records per genuine one.
        fabricated_per_real: u32,
    },
    /// Fabrications are laundered into genuine traffic: of every
    /// 10 000 records a colluder uploads, this many are fake — chosen
    /// to keep its payment rate under the anomaly detector's nose.
    RecordLaundering {
        /// Fabricated fraction in basis points (of 10 000).
        fabricated_fraction_bp: u32,
    },
    /// The attacker knows the anomaly threshold and fabricates just
    /// enough to sit this far below it.
    Adaptive {
        /// Headroom below the detection threshold, in basis points:
        /// 2 000 means "stay 20% under the flagging ratio".
        headroom_bp: u32,
    },
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct AttackConfig {
    /// The campaign the clique runs.
    pub campaign: CampaignKind,
    /// Fraction of the peer population the attacker controls.
    pub attacker_fraction: f64,
    /// Seed for role assignment.
    pub seed: u64,
}

impl AttackConfig {
    /// The E25 default: a tenth of the peers collude, Sybil-swarm
    /// campaign with 8 minted clients per colluding peer.
    pub fn sybil_preset(seed: u64) -> AttackConfig {
        AttackConfig {
            campaign: CampaignKind::SybilSwarm { sybils_per_peer: 8 },
            attacker_fraction: 0.10,
            seed,
        }
    }
}

/// A fully materialized campaign over `n` peers: who colludes, which
/// Sybil client identities exist, and how much each colluder fabricates.
#[derive(Clone, Debug)]
pub struct AttackPlan {
    campaign: CampaignKind,
    colluders: Vec<usize>,
    is_colluder: Vec<bool>,
}

/// Sybil client identities live far above any real client id so the
/// two populations can never alias.
pub const SYBIL_CLIENT_BASE: u64 = 1 << 40;

impl AttackPlan {
    /// Materializes the campaign roles. Each node draws from its own
    /// seed stream (exactly like
    /// [`FaultPlan::generate`](crate::faults::FaultPlan::generate)), so
    /// growing `n` appends roles without reshuffling existing ones.
    pub fn generate(n: usize, cfg: AttackConfig) -> AttackPlan {
        let mut colluders = Vec::new();
        let mut is_colluder = vec![false; n];
        for (node, colludes) in is_colluder.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ 0xa77c ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            if rng.gen::<f64>() < cfg.attacker_fraction {
                colluders.push(node);
                *colludes = true;
            }
        }
        AttackPlan {
            campaign: cfg.campaign,
            colluders,
            is_colluder,
        }
    }

    /// The campaign being run.
    pub fn campaign(&self) -> CampaignKind {
        self.campaign
    }

    /// Whether `node` is attacker-controlled.
    pub fn is_colluder(&self, node: usize) -> bool {
        self.is_colluder.get(node).copied().unwrap_or(false)
    }

    /// The colluding nodes, ascending.
    pub fn colluders(&self) -> &[usize] {
        &self.colluders
    }

    /// Number of attacker-controlled peers.
    pub fn clique_size(&self) -> usize {
        self.colluders.len()
    }

    /// The minted Sybil client identities attached to colluding `node`
    /// (empty for honest nodes and non-Sybil campaigns). Deterministic:
    /// identity `k` of node `i` is always the same u64.
    pub fn sybil_clients(&self, node: usize) -> Vec<u64> {
        if !self.is_colluder(node) {
            return Vec::new();
        }
        match self.campaign {
            CampaignKind::SybilSwarm { sybils_per_peer } => (0..sybils_per_peer as u64)
                .map(|k| SYBIL_CLIENT_BASE + (node as u64) * 10_000 + k)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// How many records a colluding peer fabricates given that it
    /// legitimately earned `real_records` this epoch. The Sybil
    /// campaign fabricates nothing (its fraud is synthetic *demand*,
    /// not forged records); the others forge outright.
    pub fn fabricated_records(&self, node: usize, real_records: u64) -> u64 {
        if !self.is_colluder(node) {
            return 0;
        }
        match self.campaign {
            CampaignKind::SybilSwarm { .. } => 0,
            CampaignKind::CollusionAtScale {
                fabricated_per_real,
            } => real_records * fabricated_per_real as u64,
            CampaignKind::RecordLaundering {
                fabricated_fraction_bp,
            } => {
                // fake / (real + fake) = bp/10000  ⇒  fake = real·bp/(10000−bp)
                // (rounded up: a colluder with any real traffic always
                // launders at least one record).
                let bp = fabricated_fraction_bp.min(9_999) as u64;
                (real_records * bp).div_ceil(10_000 - bp)
            }
            CampaignKind::Adaptive { headroom_bp } => {
                // The detector flags rate ratios above ~threshold 1.8–3.
                // Staying `headroom` below a ratio of 2 means each fake
                // record must be matched by enough real ones:
                // fake ≤ real · (1 − headroom) under a 2× flagging bar.
                let keep = 10_000u64.saturating_sub(headroom_bp as u64);
                (real_records * keep).div_ceil(10_000)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_growth_stable() {
        let cfg = AttackConfig::sybil_preset(42);
        let a = AttackPlan::generate(50, cfg);
        let b = AttackPlan::generate(50, cfg);
        assert_eq!(a.colluders(), b.colluders());
        // Growing the population appends, never reshuffles.
        let large = AttackPlan::generate(100, cfg);
        assert_eq!(
            a.colluders(),
            &large.colluders()[..a.clique_size()],
            "existing roles reshuffled by growth"
        );
        // A different seed picks a different clique.
        let c = AttackPlan::generate(50, AttackConfig::sybil_preset(43));
        assert_ne!(a.colluders(), c.colluders());
    }

    #[test]
    fn attacker_fraction_is_respected() {
        let plan = AttackPlan::generate(
            2_000,
            AttackConfig {
                campaign: CampaignKind::SybilSwarm { sybils_per_peer: 4 },
                attacker_fraction: 0.25,
                seed: 7,
            },
        );
        let frac = plan.clique_size() as f64 / 2_000.0;
        assert!((frac - 0.25).abs() < 0.05, "clique fraction {frac}");
    }

    #[test]
    fn sybil_identities_are_disjoint_from_real_clients() {
        let plan = AttackPlan::generate(30, AttackConfig::sybil_preset(9));
        let node = plan.colluders()[0];
        let ids = plan.sybil_clients(node);
        assert_eq!(ids.len(), 8);
        assert!(ids.iter().all(|&id| id >= SYBIL_CLIENT_BASE));
        // Different colluders never share an identity.
        if plan.clique_size() > 1 {
            let other = plan.sybil_clients(plan.colluders()[1]);
            assert!(ids.iter().all(|id| !other.contains(id)));
        }
        // Honest nodes have none.
        let honest = (0..30).find(|&i| !plan.is_colluder(i)).unwrap();
        assert!(plan.sybil_clients(honest).is_empty());
    }

    #[test]
    fn fabrication_volumes_follow_the_campaign() {
        let mk = |campaign| {
            AttackPlan::generate(
                10,
                AttackConfig {
                    campaign,
                    attacker_fraction: 1.0,
                    seed: 1,
                },
            )
        };
        let sybil = mk(CampaignKind::SybilSwarm { sybils_per_peer: 4 });
        assert_eq!(sybil.fabricated_records(0, 100), 0);

        let collusion = mk(CampaignKind::CollusionAtScale {
            fabricated_per_real: 5,
        });
        assert_eq!(collusion.fabricated_records(0, 100), 500);

        // 2000 bp = 20% of uploads fake: 100 real → 25 fake (25/125).
        let laundering = mk(CampaignKind::RecordLaundering {
            fabricated_fraction_bp: 2_000,
        });
        assert_eq!(laundering.fabricated_records(0, 100), 25);

        let adaptive = mk(CampaignKind::Adaptive { headroom_bp: 2_000 });
        assert_eq!(adaptive.fabricated_records(0, 100), 80);

        // Honest nodes fabricate nothing under any campaign.
        let mixed = AttackPlan::generate(
            200,
            AttackConfig {
                campaign: CampaignKind::CollusionAtScale {
                    fabricated_per_real: 3,
                },
                attacker_fraction: 0.1,
                seed: 3,
            },
        );
        let honest = (0..200).find(|&i| !mixed.is_colluder(i)).unwrap();
        assert_eq!(mixed.fabricated_records(honest, 100), 0);
    }
}
