//! The active-flow set: rate allocation and progress bookkeeping.
//!
//! [`FlowNet`] tracks every in-flight transfer, its path, remaining bytes
//! and current max-min fair rate. Rates only change when the flow set (or
//! a rate cap) changes, so the simulator advances analytically between
//! such events — the key to simulating years of HPoP uptime in
//! milliseconds of wall-clock time.

use crate::fairshare::{max_min_rates, Demand};
use crate::routing::{Path, RoutingTable};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::units::Bandwidth;
use hpop_obs::{SpanTracer, TraceCtx};
use std::collections::BTreeMap;

/// Identifies an active (or completed) flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

impl FlowId {
    /// The raw id (monotonically increasing per [`FlowNet`]).
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Flow {
    path: Path,
    total_bytes: u64,
    remaining: f64,
    cap: Option<Bandwidth>,
    rate_bps: f64,
    started_at: SimTime,
    ctx: TraceCtx,
}

/// The set of active flows over a topology, with max-min fair rates.
///
/// `FlowNet` is driven by a scheduler (see [`crate::netsim::NetSim`]):
/// the owner calls [`FlowNet::advance`] to progress transfers to the
/// current instant before any mutation, then asks for the next completion.
#[derive(Debug)]
pub struct FlowNet {
    topo: Topology,
    routing: RoutingTable,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    clock: SimTime,
    /// Cumulative bytes carried per directed link (metrics).
    link_bytes: Vec<f64>,
    /// Records a `"transfer"` span per traced flow on completion.
    spans: Option<SpanTracer>,
}

impl FlowNet {
    /// Creates an empty flow network over `topo`.
    pub fn new(topo: Topology) -> Self {
        let link_bytes = vec![0.0; topo.dir_link_count()];
        FlowNet {
            routing: RoutingTable::new(&topo),
            topo,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            link_bytes,
            spans: None,
        }
    }

    /// Attaches a span tracer: every flow started with a sampled
    /// [`TraceCtx`] records a `"transfer"` child span over its
    /// start→completion interval when it finishes.
    pub fn set_span_tracer(&mut self, spans: SpanTracer) {
        self.spans = Some(spans);
    }

    /// The topology flows run over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the routing table (native + detour routes).
    pub fn routing(&mut self) -> &mut RoutingTable {
        &mut self.routing
    }

    /// Number of currently active flows.
    pub fn active_count(&self) -> usize {
        self.flows.len()
    }

    /// Starts a flow along the native (latency-shortest) route.
    ///
    /// Returns `None` if `src` and `dst` are disconnected.
    pub fn start(
        &mut self,
        src: crate::topology::NodeId,
        dst: crate::topology::NodeId,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
    ) -> Option<FlowId> {
        self.start_traced(src, dst, bytes, cap, now, TraceCtx::NONE)
    }

    /// [`FlowNet::start`] carrying the causal context of the request
    /// the transfer serves. A sampled context yields a `"transfer"`
    /// span on completion (when a tracer is attached).
    pub fn start_traced(
        &mut self,
        src: crate::topology::NodeId,
        dst: crate::topology::NodeId,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
        ctx: TraceCtx,
    ) -> Option<FlowId> {
        let path = self.routing.route(src, dst)?;
        Some(self.start_on_path_traced(path, bytes, cap, now, ctx))
    }

    /// Starts a flow along an explicit path (e.g. a detour).
    pub fn start_on_path(
        &mut self,
        path: Path,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
    ) -> FlowId {
        self.start_on_path_traced(path, bytes, cap, now, TraceCtx::NONE)
    }

    /// [`FlowNet::start_on_path`] with a causal context.
    pub fn start_on_path_traced(
        &mut self,
        path: Path,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
        ctx: TraceCtx,
    ) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                path,
                total_bytes: bytes,
                remaining: bytes as f64,
                cap,
                rate_bps: 0.0,
                started_at: now,
                ctx,
            },
        );
        self.reallocate();
        id
    }

    /// Updates a flow's rate cap (the transport model's cwnd ceiling).
    /// No-op for unknown/completed flows.
    pub fn set_cap(&mut self, id: FlowId, cap: Option<Bandwidth>, now: SimTime) {
        self.advance(now);
        if let Some(f) = self.flows.get_mut(&id) {
            f.cap = cap;
            self.reallocate();
        }
    }

    /// Aborts a flow, returning its unfinished byte count (`None` if the
    /// flow is unknown or already complete).
    pub fn cancel(&mut self, id: FlowId, now: SimTime) -> Option<u64> {
        self.advance(now);
        let f = self.flows.remove(&id)?;
        self.reallocate();
        Some(f.remaining.ceil() as u64)
    }

    /// The current allocated rate of a flow.
    pub fn rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.flows.get(&id).map(|f| {
            if f.rate_bps.is_finite() {
                Bandwidth::from_bps(f.rate_bps)
            } else {
                Bandwidth::from_bps(f64::MAX / 1e3)
            }
        })
    }

    /// Remaining bytes of a flow.
    pub fn remaining(&self, id: FlowId) -> Option<u64> {
        self.flows.get(&id).map(|f| f.remaining.ceil() as u64)
    }

    /// The path a flow follows.
    pub fn path(&self, id: FlowId) -> Option<&Path> {
        self.flows.get(&id).map(|f| &f.path)
    }

    /// Cumulative bytes carried by a directed link since the start.
    pub fn link_bytes(&self, dir: crate::topology::DirLinkId) -> f64 {
        self.link_bytes[dir.index()]
    }

    /// Progresses every flow to `now` at its current rate.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the internal clock (a driver bug).
    pub fn advance(&mut self, now: SimTime) {
        assert!(now >= self.clock, "FlowNet clock moved backwards");
        let dt = now.since(self.clock).as_secs_f64();
        self.clock = now;
        if dt == 0.0 && self.flows.values().all(|f| f.rate_bps.is_finite()) {
            return;
        }
        for f in self.flows.values_mut() {
            if f.rate_bps.is_infinite() {
                // Node-local flow: completes the instant it starts.
                for &l in f.path.hops() {
                    self.link_bytes[l.index()] += f.remaining;
                }
                f.remaining = 0.0;
                continue;
            }
            let sent = (f.rate_bps / 8.0 * dt).min(f.remaining);
            f.remaining -= sent;
            if f.remaining < 0.5 {
                f.remaining = 0.0;
            }
            for &l in f.path.hops() {
                self.link_bytes[l.index()] += sent;
            }
        }
    }

    /// The instant and id of the next flow to finish, given current rates.
    /// Completion times are rounded *up* to the next nanosecond so that
    /// advancing to the returned instant always drains the flow.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            let t = if f.remaining <= 0.0 || f.rate_bps.is_infinite() {
                self.clock
            } else if f.rate_bps <= 0.0 {
                continue; // starved; cannot finish until rates change
            } else {
                let secs = f.remaining * 8.0 / f.rate_bps;
                self.clock + duration_ceil(secs)
            };
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, id));
            }
        }
        best
    }

    /// Removes and returns flows that have finished (zero bytes left),
    /// in id order.
    pub fn take_completed(&mut self) -> Vec<(FlowId, CompletedFlow)> {
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= 0.0)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let f = self.flows.remove(&id).expect("listed above");
            if f.ctx.is_sampled() {
                if let Some(spans) = &self.spans {
                    spans.record_child(
                        &f.ctx,
                        "netsim",
                        "transfer",
                        f.started_at.as_nanos() / 1_000,
                        self.clock.as_nanos() / 1_000,
                    );
                }
            }
            out.push((
                id,
                CompletedFlow {
                    path: f.path,
                    total_bytes: f.total_bytes,
                    started_at: f.started_at,
                    completed_at: self.clock,
                    ctx: f.ctx,
                },
            ));
        }
        if !out.is_empty() {
            self.reallocate();
        }
        out
    }

    /// Recomputes every flow's max-min fair rate. Called automatically on
    /// any flow-set or cap mutation.
    fn reallocate(&mut self) {
        let demands: Vec<Demand> = self
            .flows
            .values()
            .map(|f| Demand {
                links: f.path.hops().to_vec(),
                cap: f.cap,
            })
            .collect();
        let rates = max_min_rates(&self.topo, &demands);
        for (f, r) in self.flows.values_mut().zip(rates) {
            f.rate_bps = r;
        }
    }
}

/// Summary of a finished flow.
#[derive(Clone, Debug)]
pub struct CompletedFlow {
    /// The path the flow followed.
    pub path: Path,
    /// Total bytes transferred.
    pub total_bytes: u64,
    /// When the flow started.
    pub started_at: SimTime,
    /// When the last byte was delivered.
    pub completed_at: SimTime,
    /// Causal context carried by the flow ([`TraceCtx::NONE`] when the
    /// transfer was not part of a sampled trace).
    pub ctx: TraceCtx,
}

impl CompletedFlow {
    /// Mean throughput over the flow's lifetime.
    pub fn mean_rate(&self) -> Bandwidth {
        let dt = self.completed_at.since(self.started_at).as_secs_f64();
        if dt <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bps(self.total_bytes as f64 * 8.0 / dt)
        }
    }
}

/// Converts fractional seconds to a duration, rounding up to the next
/// nanosecond (so scheduled completions never undershoot).
fn duration_ceil(secs: f64) -> SimDuration {
    if !secs.is_finite() || secs <= 0.0 {
        return SimDuration::ZERO;
    }
    let ns = (secs * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        SimDuration::MAX
    } else {
        SimDuration::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::MB;

    fn line() -> (FlowNet, crate::topology::NodeId, crate::topology::NodeId) {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        (FlowNet::new(b.build()), x, y)
    }

    #[test]
    fn single_flow_completion_time() {
        let (mut net, x, y) = line();
        let id = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        let (t, fid) = net.next_completion().unwrap();
        assert_eq!(fid, id);
        // 125 MB at 1 Gbps = 1 s (ceil rounding adds at most 1 ns).
        assert!(t >= SimTime::from_secs(1));
        assert!(t <= SimTime::from_secs(1) + SimDuration::from_nanos(2));
        net.advance(t);
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.total_bytes, 125 * MB);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (mut net, x, y) = line();
        let a = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        let b = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        assert!((net.rate(a).unwrap().bits_per_sec() - 0.5e9).abs() < 1.0);
        // Cancel one; the survivor reclaims the full link.
        net.cancel(a, SimTime::from_nanos(100_000_000));
        assert!((net.rate(b).unwrap().bits_per_sec() - 1e9).abs() < 1.0);
        // b moved 100ms * 62.5MB/s = 6.25 MB so far.
        let rem = net.remaining(b).unwrap();
        assert!((rem as f64 - (125.0 - 6.25) * 1e6).abs() < 1e3);
    }

    #[test]
    fn caps_slow_flows_down() {
        let (mut net, x, y) = line();
        let id = net
            .start(x, y, 10 * MB, Some(Bandwidth::mbps(80.0)), SimTime::ZERO)
            .unwrap();
        assert!((net.rate(id).unwrap().bits_per_sec() - 80e6).abs() < 1.0);
        net.set_cap(id, None, SimTime::ZERO);
        assert!((net.rate(id).unwrap().bits_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, x, y) = line();
        net.start(x, y, 0, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
        net.advance(t);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn local_flow_is_instant() {
        let (mut net, x, _) = line();
        net.start(x, x, 500 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
        net.advance(SimTime::ZERO);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn link_byte_accounting() {
        let (mut net, x, y) = line();
        net.start(x, y, 10 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        net.advance(t);
        net.take_completed();
        let topo = net.topology().clone();
        let mut rt = RoutingTable::new(&topo);
        let hop = rt.route(x, y).unwrap().hops()[0];
        assert!((net.link_bytes(hop) - 10e6).abs() < 1.0);
        assert_eq!(net.link_bytes(hop.reversed()), 0.0);
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_cannot_reverse() {
        let (mut net, x, y) = line();
        net.start(x, y, MB, None, SimTime::from_secs(5)).unwrap();
        net.advance(SimTime::from_secs(1));
    }

    #[test]
    fn cancel_unknown_flow_is_none() {
        let (mut net, _, _) = line();
        assert!(net.cancel(FlowId(42), SimTime::ZERO).is_none());
    }

    #[test]
    fn traced_flow_records_transfer_span() {
        let (mut net, x, y) = line();
        let tracer = SpanTracer::new(16);
        tracer.enable();
        let root = tracer.root();
        net.set_span_tracer(tracer.clone());
        net.start_traced(x, y, 125 * MB, None, SimTime::ZERO, root)
            .unwrap();
        // Untraced flows record nothing even with a tracer attached.
        net.start(x, y, MB, None, SimTime::ZERO).unwrap();
        while let Some((t, _)) = net.next_completion() {
            net.advance(t);
            for (_, c) in net.take_completed() {
                assert_eq!(c.ctx.is_sampled(), c.total_bytes == 125 * MB);
            }
        }
        let spans = tracer.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "transfer");
        assert_eq!(spans[0].service, "netsim");
        assert_eq!(spans[0].trace_id, root.trace_id);
        assert_eq!(spans[0].parent_span_id, root.span_id);
        assert!(spans[0].duration_us() >= 1_000_000); // ~1 s at 1 Gbps
    }

    #[test]
    fn mean_rate_of_completed_flow() {
        let (mut net, x, y) = line();
        net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        net.advance(t);
        let (_, done) = net.take_completed().pop().unwrap();
        let r = done.mean_rate().bits_per_sec();
        assert!((r - 1e9).abs() < 1e3);
    }
}
