//! The active-flow set: rate allocation and progress bookkeeping.
//!
//! [`FlowNet`] tracks every in-flight transfer, its path, remaining bytes
//! and current max-min fair rate. Rates only change when the flow set (or
//! a rate cap) changes, so the simulator advances analytically between
//! such events — the key to simulating years of HPoP uptime in
//! milliseconds of wall-clock time.
//!
//! ## Metro-scale engine
//!
//! This module is built for 10⁵–10⁶ concurrent flows:
//!
//! - **Arena storage.** Flows live in a slab of [`Slot`]s addressed by a
//!   generational [`FlowId`] (index + generation, so stale ids never
//!   alias a reused slot). Freed slots keep their `Vec` capacities, so a
//!   warmed-up network runs its steady state without heap allocation.
//! - **Per-link flow lists.** Every directed link knows exactly which
//!   flows cross it (swap-remove lists with back-pointers), which is
//!   what makes *incremental* re-allocation possible.
//! - **Incremental max-min.** A flow arrival/departure/cap change
//!   re-solves only the flows whose rates can actually change: the seed
//!   flow plus, transitively, the bottleneck sets of every link whose
//!   fair-share level moved (see [`FlowNet::reallocate`]). The classic
//!   global progressive-filling solve remains available as
//!   [`AllocMode::Global`] — both as the before-engine for benchmarks
//!   and as the fallback when a ripple touches most of the network.
//! - **Lazy settling.** A flow's `remaining` is stored as-of its
//!   `touched_at` instant and only *settled* (progressed to the clock)
//!   when its rate is about to change or it completes. Queries compute
//!   progress virtually. No more O(flows) work per `advance`.
//! - **Completion heap.** Projected completion instants live in a
//!   lazy-deletion binary heap; entries are invalidated by a per-slot
//!   `rate_epoch` instead of being removed. No more O(flows) scans in
//!   `next_completion`.

use crate::routing::{Path, RoutingTable};
use crate::time::{SimDuration, SimTime};
use crate::topology::{DirLinkId, NodeId, Topology};
use crate::units::Bandwidth;
use hpop_obs::{SpanTracer, TraceCtx};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies an active (or completed) flow: a slab index plus a
/// generation, so ids from a previous occupant of the slot don't alias.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId {
    idx: u32,
    gen: u32,
}

impl FlowId {
    /// A packed form of the id (generation in the high bits), unique for
    /// the lifetime of a [`FlowNet`].
    pub fn raw(self) -> u64 {
        (self.gen as u64) << 32 | self.idx as u64
    }
}

/// How [`FlowNet`] re-solves rates when the flow set changes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AllocMode {
    /// Re-run global progressive filling over every flow on any change
    /// and settle every flow on every `advance` — the pre-metro engine's
    /// cost model, kept as the baseline for before/after benchmarks.
    Global,
    /// Incremental bottleneck-set re-solve (the default): only flows
    /// whose rates can change are touched.
    #[default]
    Incremental,
}

/// Counters describing how much work the allocator has done. All values
/// are cumulative since construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocStats {
    /// Re-allocation passes triggered by flow-set/cap changes.
    pub reallocations: u64,
    /// Total flows re-solved across all passes (the |U| sets).
    pub flows_reallocated: u64,
    /// Flows whose rate actually changed.
    pub rate_changes: u64,
    /// Link visits during re-allocation (touched-link set sizes).
    pub links_touched: u64,
    /// Restricted progressive-filling rounds run.
    pub fill_rounds: u64,
    /// Passes that fell back to (or ran as) a full global solve.
    pub full_resolves: u64,
    /// Per-link flow-list scans forced by fair-share violations.
    pub list_scans: u64,
    /// Entries pushed into the completion heap.
    pub heap_pushes: u64,
}

/// Where a flow's rate is pinned in the current allocation.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Bneck {
    /// Not yet assigned (mid-ripple, or a dead slot).
    Floating,
    /// Limited by its own rate cap (or unbounded & linkless).
    Cap,
    /// Bottlenecked at this directed link (index into the link table).
    Link(u32),
}

/// One arena slot. Vec capacities (`hops`, `link_pos`) survive free/reuse
/// so steady-state churn does not allocate.
#[derive(Debug)]
struct Slot {
    live: bool,
    gen: u32,
    /// Global start order; completion tie-break and "id order" sorting.
    seq: u64,
    src: NodeId,
    dst: NodeId,
    hops: Vec<DirLinkId>,
    /// Position of this flow inside `links[hops[i]].flows`.
    link_pos: Vec<u32>,
    total_bytes: u64,
    /// Bytes left as of `touched_at` (not necessarily "now").
    remaining: f64,
    touched_at: SimTime,
    /// `f64::INFINITY` when uncapped.
    cap_bps: f64,
    rate_bps: f64,
    /// Bumped whenever `rate_bps` changes (and on free); completion-heap
    /// entries carrying an older epoch are dead.
    rate_epoch: u32,
    bneck: Bneck,
    /// Position inside the bottleneck link's `bneck_flows` list.
    bneck_pos: u32,
    /// Rate on entry to the current ripple (for change detection).
    prev_rate: f64,
    /// == current ripple id while the flow is in the unfrozen set U.
    u_stamp: u64,
    /// == current fill id once progressive filling has fixed this flow.
    fix_stamp: u64,
    started_at: SimTime,
    ctx: TraceCtx,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            live: false,
            gen: 0,
            seq: 0,
            src: NodeId(0),
            dst: NodeId(0),
            hops: Vec::new(),
            link_pos: Vec::new(),
            total_bytes: 0,
            remaining: 0.0,
            touched_at: SimTime::ZERO,
            cap_bps: f64::INFINITY,
            rate_bps: 0.0,
            rate_epoch: 0,
            bneck: Bneck::Floating,
            bneck_pos: 0,
            prev_rate: 0.0,
            u_stamp: 0,
            fix_stamp: 0,
            started_at: SimTime::ZERO,
            ctx: TraceCtx::NONE,
        }
    }
}

/// Per-directed-link allocator state. `load` uses Kahan compensated
/// summation so incremental add/subtract cycles don't drift; links with
/// few flows are additionally recomputed exactly after every ripple.
#[derive(Debug)]
struct LinkState {
    cap: f64,
    /// Slot indices of flows crossing this link (unordered, swap-remove).
    flows: Vec<u32>,
    /// Slot indices of flows whose bottleneck is this link.
    bneck_flows: Vec<u32>,
    load: f64,
    load_c: f64,
    /// Fair-share level of the link's bottleneck set (meaningful only
    /// while `bneck_flows` is non-empty).
    level: f64,
    // ---- per-ripple-round scratch (valid while stamp matches) ----
    stamp: u64,
    /// Unfixed U-flows crossing this link during the current fill.
    active: u32,
    /// Total U-flows crossing this link this round.
    u_count: u32,
    /// Residual capacity during the current fill.
    resid: f64,
    /// Largest rate re-attached to this link this round.
    max_added: f64,
    /// Fair share assigned to U-flows bottlenecked here this round.
    new_share: f64,
    has_new_share: bool,
    /// Bottleneck-set entries pushed this round (vs frozen ones).
    new_bneck: u32,
    /// Fill-iteration marker for bottleneck-link identification.
    bneck_mark: u64,
}

impl LinkState {
    fn new(cap: f64) -> Self {
        LinkState {
            cap,
            flows: Vec::new(),
            bneck_flows: Vec::new(),
            load: 0.0,
            load_c: 0.0,
            level: 0.0,
            stamp: 0,
            active: 0,
            u_count: 0,
            resid: 0.0,
            max_added: 0.0,
            new_share: 0.0,
            has_new_share: false,
            new_bneck: 0,
            bneck_mark: 0,
        }
    }

    /// Kahan-compensated `load += x`.
    fn add_load(&mut self, x: f64) {
        let y = x - self.load_c;
        let t = self.load + y;
        self.load_c = (t - self.load) - y;
        self.load = t;
    }

    fn spare(&self) -> f64 {
        self.cap - self.load
    }

    /// Absolute slack below which the link counts as saturated.
    fn eps(&self) -> f64 {
        self.cap * 1e-9 + 1e-3
    }
}

/// A lazy-deletion completion-heap entry; compared `(at, seq, idx, _)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct ComplEntry {
    at_ns: u64,
    seq: u64,
    idx: u32,
    epoch: u32,
}

/// `a` is meaningfully greater than `b` (relative + tiny absolute slack).
fn rate_gt(a: f64, b: f64) -> bool {
    a > b + a.abs().max(b.abs()) * 1e-9 + 1e-3
}

/// Rates equal within allocator tolerance (handles ±inf).
fn rates_close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    (a - b).abs() <= a.abs().max(b.abs()) * 1e-9 + 1e-3
}

/// Borrow-free completion summary handed to
/// [`FlowNet::drain_completed_with`] callbacks.
#[derive(Clone, Copy, Debug)]
pub struct CompletedInfo {
    /// Total bytes transferred.
    pub total_bytes: u64,
    /// When the flow started.
    pub started_at: SimTime,
    /// When the last byte was delivered.
    pub completed_at: SimTime,
    /// Causal context carried by the flow.
    pub ctx: TraceCtx,
    /// Origin node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// The set of active flows over a topology, with max-min fair rates.
///
/// `FlowNet` is driven by a scheduler (see [`crate::netsim::NetSim`]):
/// the owner calls [`FlowNet::advance`] to move the clock, then asks for
/// the next completion. Flow progress is settled lazily.
#[derive(Debug)]
pub struct FlowNet {
    topo: Topology,
    routing: RoutingTable,
    clock: SimTime,
    mode: AllocMode,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    links: Vec<LinkState>,
    /// Cumulative settled bytes per directed link (metrics).
    settled_bytes: Vec<f64>,
    compl: BinaryHeap<Reverse<ComplEntry>>,
    spans: Option<SpanTracer>,
    stats: AllocStats,
    /// Monotone stamp source for ripples/fills/marks.
    stamp: u64,
    // ---- reusable scratch (no steady-state allocation) ----
    u: Vec<u32>,
    touched: Vec<u32>,
    caps_sorted: Vec<(f64, u32)>,
    due: Vec<(u64, u32)>,
}

impl FlowNet {
    /// Creates an empty flow network over `topo` (incremental mode).
    pub fn new(topo: Topology) -> Self {
        let links = (0..topo.dir_link_count())
            .map(|i| LinkState::new(topo.dir_capacity(DirLinkId(i as u32)).bits_per_sec()))
            .collect();
        let settled_bytes = vec![0.0; topo.dir_link_count()];
        FlowNet {
            routing: RoutingTable::new(&topo),
            topo,
            clock: SimTime::ZERO,
            mode: AllocMode::Incremental,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            links,
            settled_bytes,
            compl: BinaryHeap::new(),
            spans: None,
            stats: AllocStats::default(),
            stamp: 0,
            u: Vec::new(),
            touched: Vec::new(),
            caps_sorted: Vec::new(),
            due: Vec::new(),
        }
    }

    /// Switches the allocation mode, mid-run if needed (the scale
    /// benchmark warms a large flow set up incrementally, then measures
    /// the legacy global engine on the same standing workload). Rates
    /// are settled and fully re-solved at the switch; entering
    /// incremental mode re-projects every live flow's completion into
    /// the heap.
    pub fn set_alloc_mode(&mut self, mode: AllocMode) {
        if mode == self.mode {
            return;
        }
        self.settle_all();
        self.mode = mode;
        if mode == AllocMode::Incremental {
            self.u.clear();
            let ripple = self.bump_stamp();
            for i in 0..self.slots.len() {
                if self.slots[i].live {
                    self.seed(i as u32, ripple);
                }
            }
            if !self.u.is_empty() {
                self.stats.reallocations += 1;
                self.stats.full_resolves += 1;
                self.run_round();
                self.apply();
            }
            for idx in 0..self.slots.len() as u32 {
                if self.slots[idx as usize].live {
                    self.slots[idx as usize].rate_epoch =
                        self.slots[idx as usize].rate_epoch.wrapping_add(1);
                    self.push_completion(idx);
                }
            }
        }
    }

    /// The current allocation mode.
    pub fn alloc_mode(&self) -> AllocMode {
        self.mode
    }

    /// Cumulative allocator work counters.
    pub fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    /// Attaches a span tracer: every flow started with a sampled
    /// [`TraceCtx`] records a `"transfer"` child span over its
    /// start→completion interval when it finishes.
    pub fn set_span_tracer(&mut self, spans: SpanTracer) {
        self.spans = Some(spans);
    }

    /// The topology flows run over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the routing table (native + detour routes).
    pub fn routing(&mut self) -> &mut RoutingTable {
        &mut self.routing
    }

    /// Number of currently active flows.
    pub fn active_count(&self) -> usize {
        self.live
    }

    fn bump_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn get(&self, id: FlowId) -> Option<usize> {
        let i = id.idx as usize;
        let s = self.slots.get(i)?;
        (s.live && s.gen == id.gen).then_some(i)
    }

    // ------------------------------------------------------------------
    // Starting flows
    // ------------------------------------------------------------------

    /// Starts a flow along the native (latency-shortest) route.
    ///
    /// Returns `None` if `src` and `dst` are disconnected.
    pub fn start(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
    ) -> Option<FlowId> {
        self.start_traced(src, dst, bytes, cap, now, TraceCtx::NONE)
    }

    /// [`FlowNet::start`] carrying the causal context of the request
    /// the transfer serves. A sampled context yields a `"transfer"`
    /// span on completion (when a tracer is attached).
    pub fn start_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
        ctx: TraceCtx,
    ) -> Option<FlowId> {
        let path = self.routing.route(src, dst)?;
        Some(self.start_on_path_traced(path, bytes, cap, now, ctx))
    }

    /// Starts a flow along an explicit path (e.g. a detour).
    pub fn start_on_path(
        &mut self,
        path: Path,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
    ) -> FlowId {
        self.start_on_path_traced(path, bytes, cap, now, TraceCtx::NONE)
    }

    /// [`FlowNet::start_on_path`] with a causal context.
    pub fn start_on_path_traced(
        &mut self,
        path: Path,
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
        ctx: TraceCtx,
    ) -> FlowId {
        self.start_on_hops(path.src(), path.dst(), path.hops(), bytes, cap, now, ctx)
    }

    /// Starts a flow along explicit hops without constructing a [`Path`]
    /// — the allocation-free fast path for metro-scale drivers. The hops
    /// must form a contiguous `src → dst` walk (checked in debug builds).
    #[allow(clippy::too_many_arguments)]
    pub fn start_on_hops(
        &mut self,
        src: NodeId,
        dst: NodeId,
        hops: &[DirLinkId],
        bytes: u64,
        cap: Option<Bandwidth>,
        now: SimTime,
        ctx: TraceCtx,
    ) -> FlowId {
        #[cfg(debug_assertions)]
        {
            let mut at = src;
            for &h in hops {
                debug_assert_eq!(self.topo.dir_from(h), at, "discontiguous hop {h:?}");
                at = self.topo.dir_to(h);
            }
            debug_assert_eq!(at, dst, "path does not terminate at {dst:?}");
        }
        self.advance(now);
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot::empty());
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let gen = {
            let s = &mut self.slots[idx as usize];
            s.live = true;
            s.seq = seq;
            s.src = src;
            s.dst = dst;
            s.hops.clear();
            s.hops.extend_from_slice(hops);
            s.link_pos.clear();
            s.link_pos.resize(hops.len(), 0);
            s.total_bytes = bytes;
            s.remaining = bytes as f64;
            s.touched_at = now;
            s.started_at = now;
            s.cap_bps = cap.map_or(f64::INFINITY, |c| c.bits_per_sec());
            s.rate_bps = 0.0;
            s.bneck = Bneck::Floating;
            s.prev_rate = 0.0;
            s.ctx = ctx;
            s.gen
        };
        self.live += 1;
        for (h, hop) in hops.iter().enumerate() {
            let li = hop.index();
            self.slots[idx as usize].link_pos[h] = self.links[li].flows.len() as u32;
            self.links[li].flows.push(idx);
        }
        match self.mode {
            AllocMode::Global => self.reallocate_global_mode(),
            AllocMode::Incremental => {
                let ripple = self.bump_stamp();
                self.seed(idx, ripple);
                self.reallocate(ripple);
                if self.slots[idx as usize].remaining <= 0.0 {
                    // Zero-byte flows complete "now" even if starved.
                    self.push_completion(idx);
                }
            }
        }
        FlowId { idx, gen }
    }

    // ------------------------------------------------------------------
    // Mutation & queries
    // ------------------------------------------------------------------

    /// Updates a flow's rate cap (the transport model's cwnd ceiling).
    /// No-op for unknown/completed flows.
    pub fn set_cap(&mut self, id: FlowId, cap: Option<Bandwidth>, now: SimTime) {
        self.advance(now);
        let Some(i) = self.get(id) else { return };
        self.slots[i].cap_bps = cap.map_or(f64::INFINITY, |c| c.bits_per_sec());
        match self.mode {
            AllocMode::Global => self.reallocate_global_mode(),
            AllocMode::Incremental => {
                let ripple = self.bump_stamp();
                self.seed(i as u32, ripple);
                self.reallocate(ripple);
            }
        }
    }

    /// Aborts a flow, returning its unfinished byte count (`None` if the
    /// flow is unknown or already complete).
    pub fn cancel(&mut self, id: FlowId, now: SimTime) -> Option<u64> {
        self.advance(now);
        let i = self.get(id)?;
        self.settle(i as u32);
        let left = self.slots[i].remaining.ceil() as u64;
        let ripple = self.bump_stamp();
        self.remove_flow(i as u32, ripple);
        match self.mode {
            AllocMode::Global => self.reallocate_global_mode(),
            AllocMode::Incremental => self.reallocate(ripple),
        }
        Some(left)
    }

    /// The current allocated rate of a flow.
    pub fn rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.get(id).map(|i| {
            let r = self.slots[i].rate_bps;
            if r.is_finite() {
                Bandwidth::from_bps(r)
            } else {
                Bandwidth::from_bps(f64::MAX / 1e3)
            }
        })
    }

    /// Remaining bytes of a flow (virtually progressed to the clock).
    pub fn remaining(&self, id: FlowId) -> Option<u64> {
        self.get(id).map(|i| {
            let s = &self.slots[i];
            if s.rate_bps.is_infinite() {
                return 0;
            }
            let dt = self.clock.since(s.touched_at).as_secs_f64();
            let rem = (s.remaining - s.rate_bps / 8.0 * dt).max(0.0);
            rem.ceil() as u64
        })
    }

    /// Cumulative bytes carried by a directed link since the start
    /// (settled bytes plus the virtual progress of flows in flight).
    pub fn link_bytes(&self, dir: DirLinkId) -> f64 {
        let li = dir.index();
        let mut total = self.settled_bytes[li];
        for &f in &self.links[li].flows {
            let s = &self.slots[f as usize];
            if s.rate_bps.is_finite() {
                let dt = self.clock.since(s.touched_at).as_secs_f64();
                total += (s.rate_bps / 8.0 * dt).min(s.remaining);
            }
        }
        total
    }

    /// Moves the clock to `now`. In [`AllocMode::Global`] every flow is
    /// settled eagerly (the legacy cost model); in incremental mode
    /// settlement is lazy and this is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the internal clock (a driver bug).
    pub fn advance(&mut self, now: SimTime) {
        assert!(now >= self.clock, "FlowNet clock moved backwards");
        self.clock = now;
        if self.mode == AllocMode::Global {
            self.settle_all();
        }
    }

    /// The instant and id of the next flow to finish, given current
    /// rates. Completion times are rounded *up* to the next nanosecond so
    /// that advancing to the returned instant always drains the flow.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        match self.mode {
            AllocMode::Global => self.next_completion_scan(),
            AllocMode::Incremental => loop {
                let Reverse(e) = *self.compl.peek()?;
                if !self.entry_valid(e) {
                    self.compl.pop();
                    continue;
                }
                let id = FlowId {
                    idx: e.idx,
                    gen: self.slots[e.idx as usize].gen,
                };
                return Some((SimTime::from_nanos(e.at_ns), id));
            },
        }
    }

    /// Removes and returns flows that have finished (zero bytes left),
    /// in start order.
    pub fn take_completed(&mut self) -> Vec<(FlowId, CompletedFlow)> {
        self.collect_due();
        let mut out = Vec::with_capacity(self.due.len());
        let ripple = self.bump_stamp();
        for k in 0..self.due.len() {
            let idx = self.due[k].1;
            let i = idx as usize;
            self.record_span(i);
            let id = FlowId {
                idx,
                gen: self.slots[i].gen,
            };
            let cf = CompletedFlow {
                path: Path::from_raw(
                    self.slots[i].src,
                    self.slots[i].dst,
                    self.slots[i].hops.clone(),
                ),
                total_bytes: self.slots[i].total_bytes,
                started_at: self.slots[i].started_at,
                completed_at: self.clock,
                ctx: self.slots[i].ctx,
            };
            self.remove_flow(idx, ripple);
            out.push((id, cf));
        }
        if !out.is_empty() {
            match self.mode {
                AllocMode::Global => self.reallocate_global_mode(),
                AllocMode::Incremental => self.reallocate(ripple),
            }
        }
        out
    }

    /// Drains finished flows through a callback without allocating:
    /// `f(id, info, hops)` runs once per completion in start order.
    pub fn drain_completed_with(
        &mut self,
        mut f: impl FnMut(FlowId, &CompletedInfo, &[DirLinkId]),
    ) {
        self.collect_due();
        if self.due.is_empty() {
            return;
        }
        let ripple = self.bump_stamp();
        for k in 0..self.due.len() {
            let idx = self.due[k].1;
            let i = idx as usize;
            self.record_span(i);
            let s = &self.slots[i];
            let info = CompletedInfo {
                total_bytes: s.total_bytes,
                started_at: s.started_at,
                completed_at: self.clock,
                ctx: s.ctx,
                src: s.src,
                dst: s.dst,
            };
            let id = FlowId { idx, gen: s.gen };
            f(id, &info, &s.hops);
            self.remove_flow(idx, ripple);
        }
        match self.mode {
            AllocMode::Global => self.reallocate_global_mode(),
            AllocMode::Incremental => self.reallocate(ripple),
        }
    }

    // ------------------------------------------------------------------
    // Internals: settling & completion tracking
    // ------------------------------------------------------------------

    /// Progresses one flow's byte count to the clock at its current rate.
    fn settle(&mut self, idx: u32) {
        let i = idx as usize;
        if self.slots[i].rate_bps.is_infinite() {
            // Node-local flow: completes the instant it starts.
            self.slots[i].remaining = 0.0;
            self.slots[i].touched_at = self.clock;
            return;
        }
        let dt = self.clock.since(self.slots[i].touched_at).as_secs_f64();
        if dt > 0.0 {
            let sent = {
                let s = &mut self.slots[i];
                let sent = (s.rate_bps / 8.0 * dt).min(s.remaining);
                s.remaining -= sent;
                if s.remaining < 0.5 {
                    s.remaining = 0.0;
                }
                sent
            };
            if sent > 0.0 {
                for h in 0..self.slots[i].hops.len() {
                    let li = self.slots[i].hops[h].index();
                    self.settled_bytes[li] += sent;
                }
            }
        }
        self.slots[i].touched_at = self.clock;
    }

    fn settle_all(&mut self) {
        for idx in 0..self.slots.len() as u32 {
            if self.slots[idx as usize].live {
                self.settle(idx);
            }
        }
    }

    fn entry_valid(&self, e: ComplEntry) -> bool {
        let s = &self.slots[e.idx as usize];
        s.live && s.seq == e.seq && s.rate_epoch == e.epoch
    }

    /// Projects a flow's completion and pushes a heap entry (no-op for
    /// starved flows, which cannot finish until rates change).
    fn push_completion(&mut self, idx: u32) {
        let s = &self.slots[idx as usize];
        let at = if s.remaining <= 0.0 || s.rate_bps.is_infinite() {
            self.clock
        } else if s.rate_bps <= 0.0 {
            return;
        } else {
            self.clock + duration_ceil(s.remaining * 8.0 / s.rate_bps)
        };
        self.compl.push(Reverse(ComplEntry {
            at_ns: at.as_nanos(),
            seq: s.seq,
            idx,
            epoch: s.rate_epoch,
        }));
        self.stats.heap_pushes += 1;
        if self.compl.len() > 4 * self.live + 64 {
            // Purge dead entries in place (no allocation).
            let heap = std::mem::take(&mut self.compl);
            let mut v = heap.into_vec();
            let slots = &self.slots;
            v.retain(|&Reverse(e)| {
                let s = &slots[e.idx as usize];
                s.live && s.seq == e.seq && s.rate_epoch == e.epoch
            });
            self.compl = BinaryHeap::from(v);
        }
    }

    /// Fills `self.due` with `(seq, idx)` of every flow complete at the
    /// clock, settled and sorted in start order.
    fn collect_due(&mut self) {
        self.due.clear();
        match self.mode {
            AllocMode::Global => {
                self.settle_all();
                for i in 0..self.slots.len() {
                    if self.slots[i].live && self.slots[i].remaining <= 0.0 {
                        self.due.push((self.slots[i].seq, i as u32));
                    }
                }
            }
            AllocMode::Incremental => {
                let now_ns = self.clock.as_nanos();
                while let Some(&Reverse(e)) = self.compl.peek() {
                    if !self.entry_valid(e) {
                        self.compl.pop();
                        continue;
                    }
                    if e.at_ns > now_ns {
                        break;
                    }
                    self.compl.pop();
                    self.settle(e.idx);
                    if self.slots[e.idx as usize].remaining > 0.0 {
                        // Numeric undershoot: reproject and retry later.
                        self.push_completion(e.idx);
                        continue;
                    }
                    self.due.push((e.seq, e.idx));
                }
            }
        }
        self.due.sort_unstable();
        // A flow can carry two live heap entries (e.g. a zero-byte start
        // pushes one defensively); drain each flow exactly once.
        self.due.dedup();
    }

    fn record_span(&self, i: usize) {
        let s = &self.slots[i];
        if s.ctx.is_sampled() {
            if let Some(spans) = &self.spans {
                spans.record_child(
                    &s.ctx,
                    "netsim",
                    "transfer",
                    s.started_at.as_nanos() / 1_000,
                    self.clock.as_nanos() / 1_000,
                );
            }
        }
    }

    /// Detaches a (settled) flow from all allocator structures, frees its
    /// slot and — in incremental mode — seeds the bottleneck sets that
    /// can now grow into the freed capacity.
    fn remove_flow(&mut self, idx: u32, ripple: u64) {
        self.detach_rate(idx);
        let i = idx as usize;
        for h in 0..self.slots[i].hops.len() {
            let li = self.slots[i].hops[h].index();
            let mut pos = self.slots[i].link_pos[h] as usize;
            let list = &mut self.links[li].flows;
            // Duplicate-link paths (detours) can invalidate a stored
            // position when the earlier duplicate was removed first.
            if pos >= list.len() || list[pos] != idx {
                pos = list.iter().position(|&f| f == idx).expect("flow on link");
            }
            let last = list.pop().expect("non-empty");
            if pos < list.len() {
                list[pos] = last;
                let end = list.len();
                let s = &mut self.slots[last as usize];
                if let Some(h2) = (0..s.hops.len())
                    .find(|&h2| s.hops[h2].index() == li && s.link_pos[h2] as usize == end)
                {
                    s.link_pos[h2] = pos as u32;
                }
            }
        }
        if self.mode == AllocMode::Incremental {
            for h in 0..self.slots[i].hops.len() {
                let li = self.slots[i].hops[h].index();
                let l = &self.links[li];
                if l.spare() > l.eps() && !l.bneck_flows.is_empty() {
                    for k in 0..self.links[li].bneck_flows.len() {
                        let f = self.links[li].bneck_flows[k];
                        self.seed(f, ripple);
                    }
                }
            }
        }
        let s = &mut self.slots[i];
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        s.rate_epoch = s.rate_epoch.wrapping_add(1);
        s.bneck = Bneck::Floating;
        self.free.push(idx);
        self.live -= 1;
    }

    // ------------------------------------------------------------------
    // Internals: the incremental allocator
    // ------------------------------------------------------------------

    /// Adds a live flow to the unfrozen set U of the current ripple.
    fn seed(&mut self, idx: u32, ripple: u64) {
        let s = &mut self.slots[idx as usize];
        if s.live && s.u_stamp != ripple {
            s.u_stamp = ripple;
            s.prev_rate = s.rate_bps;
            self.u.push(idx);
        }
    }

    /// Removes a flow's rate from its links' loads and leaves its
    /// bottleneck assignment floating.
    fn detach_rate(&mut self, idx: u32) {
        let i = idx as usize;
        let rate = self.slots[i].rate_bps;
        if rate.is_finite() && rate != 0.0 {
            for h in 0..self.slots[i].hops.len() {
                let li = self.slots[i].hops[h].index();
                self.links[li].add_load(-rate);
            }
        }
        if let Bneck::Link(li) = self.slots[i].bneck {
            let pos = self.slots[i].bneck_pos as usize;
            let list = &mut self.links[li as usize].bneck_flows;
            debug_assert_eq!(list.get(pos), Some(&idx));
            let last = list.pop().expect("non-empty bneck list");
            if pos < list.len() {
                list[pos] = last;
                self.slots[last as usize].bneck_pos = pos as u32;
            }
        }
        self.slots[i].bneck = Bneck::Floating;
    }

    /// Re-adds a flow's (re-solved) rate to loads and bottleneck lists.
    fn attach_rate(&mut self, idx: u32) {
        let i = idx as usize;
        let rate = self.slots[i].rate_bps;
        for h in 0..self.slots[i].hops.len() {
            let li = self.slots[i].hops[h].index();
            let l = &mut self.links[li];
            if rate.is_finite() {
                l.add_load(rate);
                if rate > l.max_added {
                    l.max_added = rate;
                }
            }
        }
        if let Bneck::Link(li) = self.slots[i].bneck {
            let l = &mut self.links[li as usize];
            self.slots[i].bneck_pos = l.bneck_flows.len() as u32;
            l.bneck_flows.push(idx);
            l.new_bneck += 1;
        }
    }

    /// The bottleneck-set ripple: re-solves the seeded flows, then
    /// repeatedly unfreezes any flow whose max-min certificate the new
    /// solution invalidates, until a fixpoint (or a global fallback).
    fn reallocate(&mut self, ripple: u64) {
        {
            let slots = &self.slots;
            self.u.retain(|&f| slots[f as usize].live);
        }
        if self.u.is_empty() {
            return;
        }
        self.stats.reallocations += 1;
        let mut rounds = 0;
        loop {
            rounds += 1;
            if 2 * self.u.len() > self.live || rounds > 32 {
                self.stats.full_resolves += 1;
                for i in 0..self.slots.len() {
                    if self.slots[i].live {
                        self.seed(i as u32, ripple);
                    }
                }
                self.run_round();
                break;
            }
            self.run_round();
            if !self.scan_violations(ripple) {
                break;
            }
        }
        self.apply();
    }

    /// One ripple round: detach U, restricted progressive filling over U
    /// against the frozen flows' fixed loads, re-attach.
    fn run_round(&mut self) {
        self.stats.fill_rounds += 1;
        for k in 0..self.u.len() {
            let idx = self.u[k];
            self.settle(idx);
            self.detach_rate(idx);
        }
        // Collect the touched-link set with per-round scratch.
        let round = self.bump_stamp();
        self.touched.clear();
        for k in 0..self.u.len() {
            let i = self.u[k] as usize;
            for h in 0..self.slots[i].hops.len() {
                let li = self.slots[i].hops[h].index();
                let l = &mut self.links[li];
                if l.stamp != round {
                    l.stamp = round;
                    l.active = 0;
                    l.u_count = 0;
                    l.resid = l.spare().max(0.0);
                    l.max_added = 0.0;
                    l.new_share = 0.0;
                    l.has_new_share = false;
                    l.new_bneck = 0;
                    self.touched.push(li as u32);
                }
                l.active += 1;
                l.u_count += 1;
            }
        }
        self.stats.links_touched += self.touched.len() as u64;
        self.fill();
        for k in 0..self.u.len() {
            let idx = self.u[k];
            self.attach_rate(idx);
        }
    }

    /// Restricted progressive filling over U (same water-filling as the
    /// [`crate::fairshare::max_min_rates`] oracle, but over U-flows and
    /// residual capacities only). Caps are pre-sorted so each round's
    /// minimum-cap lookup is a cursor advance, not an O(|U|) rescan.
    fn fill(&mut self) {
        let fix = self.bump_stamp();
        let mut unfixed = 0usize;
        self.caps_sorted.clear();
        for k in 0..self.u.len() {
            let i = self.u[k] as usize;
            let s = &mut self.slots[i];
            if s.hops.is_empty() {
                s.rate_bps = s.cap_bps; // cap, or +inf when uncapped
                s.bneck = Bneck::Cap;
                s.fix_stamp = fix;
            } else {
                unfixed += 1;
                if s.cap_bps.is_finite() {
                    self.caps_sorted.push((s.cap_bps, self.u[k]));
                }
            }
        }
        self.caps_sorted
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut cursor = 0usize;
        while unfixed > 0 {
            let mut share = f64::INFINITY;
            for &li in &self.touched {
                let l = &self.links[li as usize];
                if l.active > 0 {
                    let s = (l.resid / l.active as f64).max(0.0);
                    if s < share {
                        share = s;
                    }
                }
            }
            if share == f64::INFINITY {
                break; // defensive: no active links left
            }
            while cursor < self.caps_sorted.len()
                && self.slots[self.caps_sorted[cursor].1 as usize].fix_stamp == fix
            {
                cursor += 1;
            }
            let min_cap = self.caps_sorted.get(cursor).map_or(f64::INFINITY, |c| c.0);
            if min_cap < share {
                // Freeze every unfixed capped flow at or below this level.
                let mut j = cursor;
                while j < self.caps_sorted.len() && self.caps_sorted[j].0 <= min_cap {
                    let idx = self.caps_sorted[j].1;
                    j += 1;
                    let i = idx as usize;
                    if self.slots[i].fix_stamp == fix {
                        continue;
                    }
                    let c = self.slots[i].cap_bps;
                    self.slots[i].rate_bps = c;
                    self.slots[i].bneck = Bneck::Cap;
                    self.slots[i].fix_stamp = fix;
                    unfixed -= 1;
                    for h in 0..self.slots[i].hops.len() {
                        let li = self.slots[i].hops[h].index();
                        let l = &mut self.links[li];
                        l.resid = (l.resid - c).max(0.0);
                        l.active -= 1;
                    }
                }
            } else {
                // Freeze every unfixed flow crossing a bottleneck link.
                let eps = share * 1e-12 + 1e-9;
                let mark = self.bump_stamp();
                for &li in &self.touched {
                    let l = &mut self.links[li as usize];
                    if l.active > 0 && l.resid / l.active as f64 <= share + eps {
                        l.bneck_mark = mark;
                        if !l.has_new_share {
                            l.has_new_share = true;
                            l.new_share = share;
                        }
                    }
                }
                let mut froze = false;
                for k in 0..self.u.len() {
                    let i = self.u[k] as usize;
                    if self.slots[i].fix_stamp == fix || self.slots[i].hops.is_empty() {
                        continue;
                    }
                    let mut bl = None;
                    for h in 0..self.slots[i].hops.len() {
                        let li = self.slots[i].hops[h].index();
                        if self.links[li].bneck_mark == mark {
                            bl = Some(li);
                            break;
                        }
                    }
                    let Some(bl) = bl else { continue };
                    self.slots[i].rate_bps = share;
                    self.slots[i].bneck = Bneck::Link(bl as u32);
                    self.slots[i].fix_stamp = fix;
                    unfixed -= 1;
                    froze = true;
                    for h in 0..self.slots[i].hops.len() {
                        let li = self.slots[i].hops[h].index();
                        let l = &mut self.links[li];
                        l.resid = (l.resid - share).max(0.0);
                        l.active -= 1;
                    }
                }
                debug_assert!(froze, "progressive filling failed to make progress");
                if !froze {
                    break;
                }
            }
        }
    }

    /// Checks every touched link's max-min certificates and unfreezes
    /// violating frozen flows into U. Returns whether U grew.
    fn scan_violations(&mut self, ripple: u64) -> bool {
        let mut grew = false;
        for t in 0..self.touched.len() {
            let li = self.touched[t] as usize;
            let (spare, eps_l, level, max_added, has_new_share, new_share, frozen_bneck, u_count) = {
                let l = &self.links[li];
                (
                    l.spare(),
                    l.eps(),
                    l.level,
                    l.max_added,
                    l.has_new_share,
                    l.new_share,
                    l.bneck_flows.len() as u32 - l.new_bneck,
                    l.u_count,
                )
            };
            // Certificate A: flows frozen *at* this link can grow — either
            // spare capacity appeared, or a re-solved flow now outranks
            // the link's old fair-share level.
            if frozen_bneck > 0 && (spare > eps_l || rate_gt(max_added, level)) {
                for k in 0..self.links[li].bneck_flows.len() {
                    let f = self.links[li].bneck_flows[k];
                    if self.slots[f as usize].u_stamp != ripple {
                        self.seed(f, ripple);
                        grew = true;
                    }
                }
            }
            // Certificate B: a U-flow froze here at `new_share`, but some
            // frozen flow crossing this link is richer — it must shrink
            // for the allocation to stay max-min.
            if has_new_share && self.links[li].flows.len() as u32 > u_count {
                let skip = frozen_bneck > 0 && !rate_gt(level, new_share);
                if !skip {
                    self.stats.list_scans += 1;
                    for k in 0..self.links[li].flows.len() {
                        let f = self.links[li].flows[k];
                        let s = &self.slots[f as usize];
                        if s.u_stamp != ripple && rate_gt(s.rate_bps, new_share) {
                            self.seed(f, ripple);
                            grew = true;
                        }
                    }
                }
            }
        }
        grew
    }

    /// Commits the ripple: bumps epochs and reprojects completions for
    /// flows whose rate really changed; reverts allocator-noise changes
    /// exactly so loads cannot drift.
    fn apply(&mut self) {
        self.stats.flows_reallocated += self.u.len() as u64;
        for k in 0..self.u.len() {
            let idx = self.u[k];
            let i = idx as usize;
            let new = self.slots[i].rate_bps;
            let old = self.slots[i].prev_rate;
            if rates_close(new, old) {
                if new != old {
                    let d = old - new;
                    for h in 0..self.slots[i].hops.len() {
                        let li = self.slots[i].hops[h].index();
                        self.links[li].add_load(d);
                    }
                    self.slots[i].rate_bps = old;
                }
            } else {
                self.slots[i].rate_epoch = self.slots[i].rate_epoch.wrapping_add(1);
                self.stats.rate_changes += 1;
                self.push_completion(idx);
            }
        }
        self.u.clear();
        for t in 0..self.touched.len() {
            let li = self.touched[t] as usize;
            if self.links[li].has_new_share {
                self.links[li].level = self.links[li].new_share;
            }
            // Small links: recompute the load exactly, killing any
            // residual float drift where it matters most (access links).
            if self.links[li].flows.len() <= 64 {
                let mut sum = 0.0;
                for k in 0..self.links[li].flows.len() {
                    let f = self.links[li].flows[k] as usize;
                    let r = self.slots[f].rate_bps;
                    if r.is_finite() {
                        sum += r;
                    }
                }
                let l = &mut self.links[li];
                l.load = sum;
                l.load_c = 0.0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals: the legacy global mode
    // ------------------------------------------------------------------

    /// Full settle + global re-solve: the pre-metro engine's cost model.
    fn reallocate_global_mode(&mut self) {
        self.settle_all();
        self.u.clear();
        let ripple = self.bump_stamp();
        for i in 0..self.slots.len() {
            if self.slots[i].live {
                self.seed(i as u32, ripple);
            }
        }
        if self.u.is_empty() {
            return;
        }
        self.stats.reallocations += 1;
        self.stats.full_resolves += 1;
        self.stats.flows_reallocated += self.u.len() as u64;
        self.run_round();
        self.u.clear();
    }

    /// O(flows) completion scan (legacy engine behaviour).
    fn next_completion_scan(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, u64, FlowId)> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if !s.live {
                continue;
            }
            let t = if s.remaining <= 0.0 || s.rate_bps.is_infinite() {
                self.clock
            } else if s.rate_bps <= 0.0 {
                continue; // starved; cannot finish until rates change
            } else {
                s.touched_at + duration_ceil(s.remaining * 8.0 / s.rate_bps)
            };
            let id = FlowId {
                idx: i as u32,
                gen: s.gen,
            };
            if best.is_none_or(|(bt, bs, _)| (t, s.seq) < (bt, bs)) {
                best = Some((t, s.seq, id));
            }
        }
        best.map(|(t, _, id)| (t.max(self.clock), id))
    }
}

/// Summary of a finished flow.
#[derive(Clone, Debug)]
pub struct CompletedFlow {
    /// The path the flow followed.
    pub path: Path,
    /// Total bytes transferred.
    pub total_bytes: u64,
    /// When the flow started.
    pub started_at: SimTime,
    /// When the last byte was delivered.
    pub completed_at: SimTime,
    /// Causal context carried by the flow ([`TraceCtx::NONE`] when the
    /// transfer was not part of a sampled trace).
    pub ctx: TraceCtx,
}

impl CompletedFlow {
    /// Mean throughput over the flow's lifetime.
    pub fn mean_rate(&self) -> Bandwidth {
        let dt = self.completed_at.since(self.started_at).as_secs_f64();
        if dt <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bps(self.total_bytes as f64 * 8.0 / dt)
        }
    }
}

/// Converts fractional seconds to a duration, rounding up to the next
/// nanosecond (so scheduled completions never undershoot).
fn duration_ceil(secs: f64) -> SimDuration {
    if !secs.is_finite() || secs <= 0.0 {
        return SimDuration::ZERO;
    }
    let ns = (secs * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        SimDuration::MAX
    } else {
        SimDuration::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::MB;

    fn line() -> (FlowNet, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        (FlowNet::new(b.build()), x, y)
    }

    #[test]
    fn single_flow_completion_time() {
        let (mut net, x, y) = line();
        let id = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        let (t, fid) = net.next_completion().unwrap();
        assert_eq!(fid, id);
        // 125 MB at 1 Gbps = 1 s (ceil rounding adds at most 1 ns).
        assert!(t >= SimTime::from_secs(1));
        assert!(t <= SimTime::from_secs(1) + SimDuration::from_nanos(2));
        net.advance(t);
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.total_bytes, 125 * MB);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (mut net, x, y) = line();
        let a = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        let b = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        assert!((net.rate(a).unwrap().bits_per_sec() - 0.5e9).abs() < 1.0);
        // Cancel one; the survivor reclaims the full link.
        net.cancel(a, SimTime::from_nanos(100_000_000));
        assert!((net.rate(b).unwrap().bits_per_sec() - 1e9).abs() < 1.0);
        // b moved 100ms * 62.5MB/s = 6.25 MB so far.
        let rem = net.remaining(b).unwrap();
        assert!((rem as f64 - (125.0 - 6.25) * 1e6).abs() < 1e3);
    }

    #[test]
    fn caps_slow_flows_down() {
        let (mut net, x, y) = line();
        let id = net
            .start(x, y, 10 * MB, Some(Bandwidth::mbps(80.0)), SimTime::ZERO)
            .unwrap();
        assert!((net.rate(id).unwrap().bits_per_sec() - 80e6).abs() < 1.0);
        net.set_cap(id, None, SimTime::ZERO);
        assert!((net.rate(id).unwrap().bits_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, x, y) = line();
        net.start(x, y, 0, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
        net.advance(t);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn local_flow_is_instant() {
        let (mut net, x, _) = line();
        net.start(x, x, 500 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
        net.advance(SimTime::ZERO);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn link_byte_accounting() {
        let (mut net, x, y) = line();
        net.start(x, y, 10 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        net.advance(t);
        net.take_completed();
        let topo = net.topology().clone();
        let mut rt = RoutingTable::new(&topo);
        let hop = rt.route(x, y).unwrap().hops()[0];
        assert!((net.link_bytes(hop) - 10e6).abs() < 1.0);
        assert_eq!(net.link_bytes(hop.reversed()), 0.0);
    }

    #[test]
    fn mid_flight_link_bytes_are_virtual() {
        let (mut net, x, y) = line();
        net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        net.advance(SimTime::from_nanos(400_000_000));
        let topo = net.topology().clone();
        let mut rt = RoutingTable::new(&topo);
        let hop = rt.route(x, y).unwrap().hops()[0];
        // 0.4 s at 1 Gbps = 50 MB, without any settlement having run.
        assert!((net.link_bytes(hop) - 50e6).abs() < 1e3);
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_cannot_reverse() {
        let (mut net, x, y) = line();
        net.start(x, y, MB, None, SimTime::from_secs(5)).unwrap();
        net.advance(SimTime::from_secs(1));
    }

    #[test]
    fn cancel_unknown_flow_is_none() {
        let (mut net, _, _) = line();
        let bogus = FlowId { idx: 42, gen: 0 };
        assert!(net.cancel(bogus, SimTime::ZERO).is_none());
    }

    #[test]
    fn stale_generation_ids_do_not_alias() {
        let (mut net, x, y) = line();
        let a = net.start(x, y, 10 * MB, None, SimTime::ZERO).unwrap();
        net.cancel(a, SimTime::ZERO).unwrap();
        // The slot is reused by the next start; the old id must be dead.
        let b = net.start(x, y, 10 * MB, None, SimTime::ZERO).unwrap();
        assert_ne!(a.raw(), b.raw());
        assert!(net.rate(a).is_none());
        assert!(net.cancel(a, SimTime::ZERO).is_none());
        assert!(net.rate(b).is_some());
    }

    #[test]
    fn traced_flow_records_transfer_span() {
        let (mut net, x, y) = line();
        let tracer = SpanTracer::new(16);
        tracer.enable();
        let root = tracer.root();
        net.set_span_tracer(tracer.clone());
        net.start_traced(x, y, 125 * MB, None, SimTime::ZERO, root)
            .unwrap();
        // Untraced flows record nothing even with a tracer attached.
        net.start(x, y, MB, None, SimTime::ZERO).unwrap();
        while let Some((t, _)) = net.next_completion() {
            net.advance(t);
            for (_, c) in net.take_completed() {
                assert_eq!(c.ctx.is_sampled(), c.total_bytes == 125 * MB);
            }
        }
        let spans = tracer.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "transfer");
        assert_eq!(spans[0].service, "netsim");
        assert_eq!(spans[0].trace_id, root.trace_id);
        assert_eq!(spans[0].parent_span_id, root.span_id);
        assert!(spans[0].duration_us() >= 1_000_000); // ~1 s at 1 Gbps
    }

    #[test]
    fn mean_rate_of_completed_flow() {
        let (mut net, x, y) = line();
        net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        net.advance(t);
        let (_, done) = net.take_completed().pop().unwrap();
        let r = done.mean_rate().bits_per_sec();
        assert!((r - 1e9).abs() < 1e3);
    }

    #[test]
    fn drain_completed_with_matches_take() {
        let (mut net, x, y) = line();
        net.start(x, y, 10 * MB, None, SimTime::ZERO).unwrap();
        net.start(x, y, 10 * MB, None, SimTime::ZERO).unwrap();
        let (t, _) = net.next_completion().unwrap();
        net.advance(t);
        let mut seen = Vec::new();
        net.drain_completed_with(|id, info, hops| {
            assert_eq!(info.total_bytes, 10 * MB);
            assert_eq!(info.src, x);
            assert_eq!(info.dst, y);
            assert_eq!(hops.len(), 1);
            seen.push(id);
        });
        assert_eq!(seen.len(), 2);
        assert!(seen[0] < seen[1]);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    fn global_mode_matches_incremental_on_shared_link() {
        let run = |mode: AllocMode| {
            let (mut net, x, y) = line();
            net.set_alloc_mode(mode);
            net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
            net.start(x, y, 125 * MB, Some(Bandwidth::mbps(200.0)), SimTime::ZERO)
                .unwrap();
            let mut done = Vec::new();
            while let Some((t, _)) = net.next_completion() {
                net.advance(t);
                for (id, c) in net.take_completed() {
                    done.push((id.raw(), c.completed_at.as_nanos()));
                }
            }
            done
        };
        let g = run(AllocMode::Global);
        let i = run(AllocMode::Incremental);
        assert_eq!(g.len(), i.len());
        for ((gr, gt), (ir, it)) in g.iter().zip(&i) {
            assert_eq!(gr, ir);
            let (gt, it) = (*gt as f64, *it as f64);
            assert!((gt - it).abs() <= gt.max(it) * 1e-6 + 2.0, "{gt} vs {it}");
        }
    }

    #[test]
    fn alloc_stats_count_work() {
        let (mut net, x, y) = line();
        let a = net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        net.start(x, y, 125 * MB, None, SimTime::ZERO).unwrap();
        net.cancel(a, SimTime::from_nanos(10_000_000));
        let s = net.alloc_stats();
        assert!(s.reallocations >= 3);
        assert!(s.flows_reallocated >= 3);
        assert!(s.rate_changes >= 3);
        assert!(s.heap_pushes >= 3);
        assert!(s.links_touched >= 3);
    }
}
