//! Bucketed calendar queue: the event scheduler's priority structure.
//!
//! A classic binary heap costs `O(log n)` per operation with poor cache
//! behaviour once millions of events are in flight. A calendar queue
//! ([Brown 1988]) hashes each event into a time bucket (`key / width mod
//! buckets`) and dequeues by scanning the current bucket's window, giving
//! amortised `O(1)` enqueue/dequeue when the bucket width tracks the
//! event inter-arrival spacing. The queue resizes itself (doubling or
//! halving the bucket array) as the population grows and shrinks, and
//! re-derives the width from a sample of queued keys on every resize —
//! the "adaptive" part that keeps occupancy near one event per bucket
//! per lap.
//!
//! Determinism: entries are totally ordered by `(key, seq)` where `seq`
//! is the caller's insertion counter, so ties in simulated time pop in
//! insertion order exactly like the `BinaryHeap` this replaces.
//!
//! [Brown 1988]: "Calendar Queues: A Fast O(1) Priority Queue
//! Implementation for the Simulation Event Set Problem", CACM 31(10).

use std::cell::Cell;

struct Entry<T> {
    key: u64,
    seq: u64,
    item: T,
}

/// A monotone priority queue over `(key, seq)` pairs with `O(1)`
/// amortised push/pop for event-scheduling workloads.
///
/// "Monotone" here is a usage contract, not an enforced invariant:
/// pushes may carry any key, but the structure is tuned for the
/// discrete-event pattern where pushed keys are at or after the last
/// popped key. Arbitrary keys stay correct (a full-lap scan falls back
/// to a direct minimum search) — just slower.
pub struct CalendarQueue<T> {
    /// Power-of-two bucket array; entry `e` lives in
    /// `(e.key >> width_shift) & mask`.
    buckets: Vec<Vec<Entry<T>>>,
    mask: usize,
    /// Bucket width is `1 << width_shift` nanoseconds.
    width_shift: u32,
    len: usize,
    /// Cursor: the bucket the next pop scans first…
    cur: usize,
    /// …and the exclusive upper key bound of that bucket's current lap.
    top: u64,
    /// Memoised `(key, seq)` of the current minimum (peek cache).
    cached_min: Cell<Option<(u64, u64)>>,
}

const INITIAL_BUCKETS: usize = 16;
/// Initial bucket width: 2^20 ns ≈ 1 ms, a reasonable prior for
/// simulation event spacing before the first adaptive resize.
const INITIAL_SHIFT: u32 = 20;
const MIN_SHIFT: u32 = 4; // 16 ns
const MAX_SHIFT: u32 = 44; // ~4.9 hours

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            mask: INITIAL_BUCKETS - 1,
            width_shift: INITIAL_SHIFT,
            len: 0,
            cur: 0,
            top: 1u64 << INITIAL_SHIFT,
            cached_min: Cell::new(None),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, key: u64) -> usize {
        ((key >> self.width_shift) as usize) & self.mask
    }

    /// Exclusive upper bound of the lap window containing `key`.
    fn window_top(&self, key: u64) -> u64 {
        ((key >> self.width_shift) + 1) << self.width_shift
    }

    /// Enqueues an entry. `seq` must be unique per queue (the caller's
    /// monotone insertion counter); ties on `key` pop in `seq` order.
    pub fn push(&mut self, key: u64, seq: u64, item: T) {
        // Re-anchor the cursor whenever the new entry's window precedes
        // it: on the first entry (so a pop doesn't walk a lap of empty
        // buckets from wherever it last stood) and on out-of-order
        // pushes earlier than the scan position (which the forward lap
        // scan would otherwise skip).
        let wtop = self.window_top(key);
        if self.len == 0 || wtop < self.top {
            self.cur = self.bucket_of(key);
            self.top = wtop;
        }
        let b = self.bucket_of(key);
        self.buckets[b].push(Entry { key, seq, item });
        self.len += 1;
        if let Some((ck, cs)) = self.cached_min.get() {
            if (key, seq) < (ck, cs) {
                self.cached_min.set(Some((key, seq)));
            }
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locates the minimum entry: `(bucket, index, key, seq)`, plus the
    /// cursor state `(cur, top)` a pop should commit. Scans at most one
    /// full lap before falling back to a direct search.
    fn locate_min(&self) -> Option<(usize, usize, u64, u64, usize, u64)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let mut cur = self.cur;
        let mut top = self.top;
        for _ in 0..nb {
            let mut best: Option<(usize, u64, u64)> = None;
            for (i, e) in self.buckets[cur].iter().enumerate() {
                if e.key < top {
                    match best {
                        Some((_, bk, bs)) if (bk, bs) <= (e.key, e.seq) => {}
                        _ => best = Some((i, e.key, e.seq)),
                    }
                }
            }
            if let Some((i, k, s)) = best {
                return Some((cur, i, k, s, cur, top));
            }
            cur = (cur + 1) & self.mask;
            top += 1u64 << self.width_shift;
        }
        // A whole lap was empty-in-window: the next event is more than
        // one lap ahead. Direct search, then jump the cursor to it.
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                match best {
                    Some((_, _, bk, bs)) if (bk, bs) <= (e.key, e.seq) => {}
                    _ => best = Some((b, i, e.key, e.seq)),
                }
            }
        }
        let (b, i, k, s) = best.expect("len > 0");
        Some((b, i, k, s, b, self.window_top(k)))
    }

    /// The `(key, seq)` of the minimum entry without removing it.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(m) = self.cached_min.get() {
            return Some(m);
        }
        let (_, _, k, s, _, _) = self.locate_min()?;
        self.cached_min.set(Some((k, s)));
        Some((k, s))
    }

    /// Removes and returns the minimum entry as `(key, seq, item)`.
    pub fn pop_min(&mut self) -> Option<(u64, u64, T)> {
        let (b, i, k, s, cur, top) = self.locate_min()?;
        self.cur = cur;
        self.top = top;
        let e = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.cached_min.set(None);
        debug_assert_eq!((e.key, e.seq), (k, s));
        if self.len < self.buckets.len() / 4 && self.buckets.len() > INITIAL_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some((e.key, e.seq, e.item))
    }

    /// Rebuilds the bucket array at `new_size` buckets, re-deriving the
    /// bucket width from the spacing of a sample of queued keys.
    fn resize(&mut self, new_size: usize) {
        let new_size = new_size.next_power_of_two().max(INITIAL_BUCKETS);
        // Sample up to 64 keys to estimate the inter-event spacing.
        let mut sample: Vec<u64> = Vec::with_capacity(64);
        'outer: for bucket in &self.buckets {
            for e in bucket {
                sample.push(e.key);
                if sample.len() == 64 {
                    break 'outer;
                }
            }
        }
        sample.sort_unstable();
        sample.dedup();
        if sample.len() >= 2 {
            let span = sample[sample.len() - 1] - sample[0];
            let avg_gap = (span / (sample.len() as u64 - 1)).max(1);
            // Width ≈ 2× the average gap keeps ~1–2 events per bucket
            // per lap; round to the nearest power of two for shift math.
            let target = avg_gap.saturating_mul(2);
            self.width_shift = (63 - target.leading_zeros().min(62)).clamp(MIN_SHIFT, MAX_SHIFT);
        }
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_size).map(|_| Vec::new()).collect(),
        );
        self.mask = new_size - 1;
        let mut min_key = u64::MAX;
        for bucket in old {
            for e in bucket {
                min_key = min_key.min(e.key);
                let b = ((e.key >> self.width_shift) as usize) & self.mask;
                self.buckets[b].push(e);
            }
        }
        if min_key != u64::MAX {
            self.cur = self.bucket_of(min_key);
            self.top = self.window_top(min_key);
        } else {
            self.cur = 0;
            self.top = 1u64 << self.width_shift;
        }
        self.cached_min.set(None);
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_ns", &(1u64 << self.width_shift))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_then_seq_order() {
        let mut q = CalendarQueue::new();
        let keys = [5u64, 1, 9, 1, 7, 0, 1_000_000_000, 3];
        for (i, &k) in keys.iter().enumerate() {
            q.push(k, i as u64, k);
        }
        let mut out = Vec::new();
        while let Some((k, s, _)) = q.pop_min() {
            out.push((k, s));
        }
        let mut want: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(out, want);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Deterministic pseudo-random workload exercising resizes.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clock = 0u64;
        let mut popped = Vec::new();
        for round in 0..2_000 {
            // Push a burst at or after the current clock.
            for _ in 0..(rnd() % 5) {
                let key = clock + rnd() % 10_000_000;
                q.push(key, seq, key);
                seq += 1;
            }
            if round % 3 != 0 {
                if let Some((k, _, _)) = q.pop_min() {
                    assert!(k >= clock, "pop went backwards: {k} < {clock}");
                    clock = k;
                    popped.push(k);
                }
            }
        }
        while let Some((k, _, _)) = q.pop_min() {
            assert!(k >= clock);
            clock = k;
            popped.push(k);
        }
        assert!(q.is_empty());
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn peek_matches_pop_and_survives_pushes() {
        let mut q = CalendarQueue::new();
        q.push(50, 0, ());
        q.push(10, 1, ());
        assert_eq!(q.peek_key(), Some((10, 1)));
        // A smaller key invalidates the cached minimum.
        q.push(5, 2, ());
        assert_eq!(q.peek_key(), Some((5, 2)));
        assert_eq!(q.pop_min().map(|(k, s, _)| (k, s)), Some((5, 2)));
        assert_eq!(q.peek_key(), Some((10, 1)));
    }

    #[test]
    fn sparse_far_future_events_found_by_lap_fallback() {
        let mut q = CalendarQueue::new();
        // Events much farther apart than buckets × width.
        for i in 0..4u64 {
            q.push(i * 3_600_000_000_000, i, i); // one per simulated hour
        }
        for i in 0..4u64 {
            let (k, _, v) = q.pop_min().unwrap();
            assert_eq!(k, i * 3_600_000_000_000);
            assert_eq!(v, i);
        }
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.push(i * 1_000, i, ());
        }
        assert!(q.buckets.len() > INITIAL_BUCKETS);
        for i in 0..10_000u64 {
            let (k, _, _) = q.pop_min().unwrap();
            assert_eq!(k, i * 1_000);
        }
        assert!(q.is_empty());
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn identical_keys_resize_safely() {
        // dedup() leaves one sample: width must survive (no panic, keep
        // previous shift) and ordering must hold via seq.
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(42, i, ());
        }
        for i in 0..100u64 {
            let (k, s, _) = q.pop_min().unwrap();
            assert_eq!((k, s), (42, i));
        }
    }
}
