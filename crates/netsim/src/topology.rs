//! Network topology: nodes joined by full-duplex links.
//!
//! Every link is full duplex with independently configurable capacity per
//! direction — the paper's FTTH links are symmetric 1 Gbps, but classic
//! broadband is asymmetric and several experiments contrast the two.

use crate::time::SimDuration;
use crate::units::Bandwidth;
use std::fmt;

/// Identifies a node in a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

/// Identifies a (full-duplex) link in a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub(crate) u32);

/// Identifies one direction of a link: the unit of capacity allocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirLinkId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The raw index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The directed half of this link going from its `a` endpoint to `b`.
    pub fn forward(self) -> DirLinkId {
        DirLinkId(self.0 * 2)
    }

    /// The directed half of this link going from its `b` endpoint to `a`.
    pub fn reverse(self) -> DirLinkId {
        DirLinkId(self.0 * 2 + 1)
    }
}

impl DirLinkId {
    /// The raw index of this directed link (dense in `0..2*links`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The full-duplex link this direction belongs to.
    pub fn link(self) -> LinkId {
        LinkId(self.0 / 2)
    }

    /// The opposite direction of the same link.
    pub fn reversed(self) -> DirLinkId {
        DirLinkId(self.0 ^ 1)
    }
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
}

#[derive(Clone, Debug)]
struct Link {
    a: NodeId,
    b: NodeId,
    capacity_ab: Bandwidth,
    capacity_ba: Bandwidth,
    latency: SimDuration,
    loss: f64,
    /// Routing metric used by "native IP routing" (Dijkstra). Defaults
    /// to the latency, but can be set independently to model policy
    /// routing — the source of the triangle-inequality violations detour
    /// routing exploits (§IV-C).
    weight: u64,
}

/// An immutable network graph; build one with [`TopologyBuilder`].
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency: per node, the (neighbor, outgoing directed link) pairs.
    adj: Vec<Vec<(NodeId, DirLinkId)>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of full-duplex links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of directed link halves (`2 * link_count`).
    pub fn dir_link_count(&self) -> usize {
        self.links.len() * 2
    }

    /// All node ids, in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The human-readable name a node was created with.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Looks a node up by name (linear scan; intended for tests/reports).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// The node a directed link departs from.
    pub fn dir_from(&self, d: DirLinkId) -> NodeId {
        let l = &self.links[d.link().index()];
        if d.index().is_multiple_of(2) {
            l.a
        } else {
            l.b
        }
    }

    /// The node a directed link arrives at.
    pub fn dir_to(&self, d: DirLinkId) -> NodeId {
        let l = &self.links[d.link().index()];
        if d.index().is_multiple_of(2) {
            l.b
        } else {
            l.a
        }
    }

    /// Capacity of a directed link.
    pub fn dir_capacity(&self, d: DirLinkId) -> Bandwidth {
        let l = &self.links[d.link().index()];
        if d.index().is_multiple_of(2) {
            l.capacity_ab
        } else {
            l.capacity_ba
        }
    }

    /// One-way propagation delay of a link (same both directions).
    pub fn link_latency(&self, link: LinkId) -> SimDuration {
        self.links[link.index()].latency
    }

    /// Independent per-traversal loss probability of a link.
    pub fn link_loss(&self, link: LinkId) -> f64 {
        self.links[link.index()].loss
    }

    /// The routing metric of a link (defaults to its latency in
    /// nanoseconds unless overridden to model policy routing).
    pub fn link_weight(&self, link: LinkId) -> u64 {
        self.links[link.index()].weight
    }

    /// Outgoing (neighbor, directed link) pairs of a node.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, DirLinkId)] {
        &self.adj[node.index()]
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology({} nodes, {} links)",
            self.nodes.len(),
            self.links.len()
        )
    }
}

/// Incrementally constructs a [`Topology`].
///
/// ```
/// use hpop_netsim::prelude::*;
///
/// let mut b = TopologyBuilder::new();
/// let home = b.add_node("home");
/// let agg = b.add_node("aggregation");
/// b.add_link(home, agg, Bandwidth::gbps(1.0), SimDuration::from_micros(500));
/// let topo = b.build();
/// assert_eq!(topo.node_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with a human-readable name, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.into() });
        id
    }

    /// Adds a symmetric, lossless full-duplex link.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bandwidth,
        latency: SimDuration,
    ) -> LinkId {
        self.add_link_full(a, b, capacity, capacity, latency, 0.0)
    }

    /// Adds a link with full control over per-direction capacity and loss.
    ///
    /// `capacity_ab` applies to traffic from `a` to `b`; `loss` is the
    /// independent per-traversal drop probability in either direction.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are unknown or equal, or if `loss` is
    /// outside `[0, 1)`.
    pub fn add_link_full(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_ab: Bandwidth,
        capacity_ba: Bandwidth,
        latency: SimDuration,
        loss: f64,
    ) -> LinkId {
        let weight = latency.as_nanos().max(1);
        self.add_link_weighted(a, b, capacity_ab, capacity_ba, latency, loss, weight)
    }

    /// Adds a link with an explicit routing metric decoupled from its
    /// latency — the tool for modeling policy routing that inflates
    /// native paths (triangle-inequality violations).
    ///
    /// # Panics
    ///
    /// As [`TopologyBuilder::add_link_full`], plus `weight` must be
    /// positive.
    #[allow(clippy::too_many_arguments)]
    pub fn add_link_weighted(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_ab: Bandwidth,
        capacity_ba: Bandwidth,
        latency: SimDuration,
        loss: f64,
        weight: u64,
    ) -> LinkId {
        assert!(a.index() < self.nodes.len(), "unknown endpoint {a:?}");
        assert!(b.index() < self.nodes.len(), "unknown endpoint {b:?}");
        assert_ne!(a, b, "self-loop links are not allowed");
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1): {loss}");
        assert!(weight > 0, "routing weight must be positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            capacity_ab,
            capacity_ba,
            latency,
            loss,
            weight,
        });
        id
    }

    /// Finalizes the graph.
    pub fn build(self) -> Topology {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            let id = LinkId(i as u32);
            adj[l.a.index()].push((l.b, id.forward()));
            adj[l.b.index()].push((l.a, id.reverse()));
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Topology, NodeId, NodeId, LinkId) {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let l = b.add_link_full(
            x,
            y,
            Bandwidth::gbps(1.0),
            Bandwidth::mbps(100.0),
            SimDuration::from_millis(2),
            0.01,
        );
        (b.build(), x, y, l)
    }

    #[test]
    fn directed_halves_have_right_endpoints_and_capacities() {
        let (t, x, y, l) = pair();
        assert_eq!(t.dir_from(l.forward()), x);
        assert_eq!(t.dir_to(l.forward()), y);
        assert_eq!(t.dir_from(l.reverse()), y);
        assert_eq!(t.dir_to(l.reverse()), x);
        assert_eq!(t.dir_capacity(l.forward()), Bandwidth::gbps(1.0));
        assert_eq!(t.dir_capacity(l.reverse()), Bandwidth::mbps(100.0));
        assert_eq!(l.forward().reversed(), l.reverse());
        assert_eq!(l.forward().link(), l);
    }

    #[test]
    fn adjacency_lists_are_symmetric() {
        let (t, x, y, l) = pair();
        assert_eq!(t.neighbors(x), &[(y, l.forward())]);
        assert_eq!(t.neighbors(y), &[(x, l.reverse())]);
    }

    #[test]
    fn names_resolve() {
        let (t, x, _, _) = pair();
        assert_eq!(t.node_name(x), "x");
        assert_eq!(t.node_by_name("y").unwrap().index(), 1);
        assert!(t.node_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        b.add_link(x, x, Bandwidth::gbps(1.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn bad_loss_rejected() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link_full(
            x,
            y,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(1.0),
            SimDuration::ZERO,
            1.0,
        );
    }

    #[test]
    fn counts() {
        let (t, _, _, _) = pair();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.dir_link_count(), 2);
        assert_eq!(t.nodes().count(), 2);
    }
}
