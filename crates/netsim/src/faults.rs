//! Deterministic fault injection.
//!
//! Churn ([`crate::churn`]) models the *clean* failure mode: a peer is
//! either up or down. Real residential peers fail uglier — they drop
//! packets, answer at dial-up speeds, serve corrupted bytes, crash and
//! come back with their caches gone, or sit on the wrong side of a
//! partitioned aggregation switch. A [`FaultPlan`] composes all of
//! those as *windows on the same simulated clock the churn schedule
//! uses*, fully materialized at construction from a seed, so a chaos
//! run is a pure function of `(config, n, horizon)` and replays
//! byte-identically.
//!
//! The plan is a passive oracle, like [`ChurnSchedule`]: drivers query
//! it each tick (`peer_mode`, `link_ok`, `loss`, `extra_delay`) and
//! apply the answers to whatever layer they drive — the gossip fabric,
//! a NoCDN fetch loop, an attic repair pass.
//!
//! [`ChurnSchedule`]: crate::churn::ChurnSchedule

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A half-open window `[from, to)` on the simulation clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Window {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
}

impl Window {
    /// Builds a window; `from` must precede `to`.
    ///
    /// # Panics
    ///
    /// Panics when `from >= to`.
    pub fn new(from: SimTime, to: SimTime) -> Window {
        assert!(from < to, "empty fault window {from:?}..{to:?}");
        Window { from, to }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }
}

/// What a faulted link does to traffic during its window.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LinkFaultKind {
    /// Independent per-packet loss probability in `[0, 1]`.
    Loss(f64),
    /// Added one-way delay (a congested or flapping segment).
    DelaySpike(SimDuration),
    /// The link passes nothing at all.
    Blackhole,
}

/// One link-level fault episode between an unordered node pair.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkFault {
    /// One endpoint (node index).
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// What the link does while faulted.
    pub kind: LinkFaultKind,
    /// When the fault holds.
    pub window: Window,
}

impl LinkFault {
    fn touches(&self, x: usize, y: usize) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// What a faulted peer does during its window.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PeerFaultKind {
    /// Crashed: serves nothing. At the window's end the peer restarts;
    /// with `amnesia` it comes back with all soft state (caches,
    /// piggyback queues, detector history) forgotten.
    Crash {
        /// Whether the restart loses all soft state.
        amnesia: bool,
    },
    /// Serves at `rate` of its normal speed (0.01 = the 1%-rate slow
    /// peer of the chaos preset). Responses arrive, eventually.
    Slow {
        /// Fraction of normal service rate, in `(0, 1]`.
        rate: f64,
    },
    /// Serves syntactically valid but corrupted bytes — only hash
    /// verification can catch it.
    Corrupt,
}

/// One peer-level fault episode.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PeerFault {
    /// The faulted node.
    pub node: usize,
    /// What the peer does while faulted.
    pub kind: PeerFaultKind,
    /// When the fault holds.
    pub window: Window,
}

/// A named partition episode: during the window, nodes in different
/// cells cannot reach each other. Nodes absent from every cell form an
/// implicit last cell (the "mainland").
#[derive(Clone, PartialEq, Debug)]
pub struct Partition {
    /// Human-readable episode name (shows up in traces and tables).
    pub name: String,
    /// When the partition holds.
    pub window: Window,
    /// Explicit cells of mutually reachable nodes.
    pub cells: Vec<Vec<usize>>,
}

/// The composite behavior of one peer at one instant, as a fetcher
/// experiences it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PeerMode {
    /// Healthy.
    Ok,
    /// Crashed — no response at all.
    Crashed,
    /// Responding at this fraction of normal rate.
    Slow(f64),
    /// Responding with corrupted bytes.
    Corrupt,
}

/// A peer restart event (end of a crash window).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RestartEvent {
    /// When the peer came back.
    pub at: SimTime,
    /// Which peer restarted.
    pub node: usize,
    /// Whether it lost all soft state.
    pub amnesia: bool,
}

/// Tuning for the seeded chaos generator.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Expected crash episodes per node over the horizon.
    pub crashes_per_node: f64,
    /// Fraction of crash restarts that lose soft state.
    pub amnesia_fraction: f64,
    /// Fraction of nodes that serve one slow episode.
    pub slow_fraction: f64,
    /// Service rate during a slow episode (0.01 = 1%).
    pub slow_rate: f64,
    /// Fraction of nodes that corrupt responses for one episode.
    pub corrupt_fraction: f64,
    /// Expected loss episodes per node (on the node's access link).
    pub loss_episodes_per_node: f64,
    /// Loss probability during a loss episode.
    pub loss_rate: f64,
    /// Expected delay-spike episodes per node.
    pub delay_episodes_per_node: f64,
    /// Added delay during a spike.
    pub delay_spike: SimDuration,
    /// Expected blackhole episodes per node.
    pub blackhole_episodes_per_node: f64,
    /// Number of named partition episodes over the horizon.
    pub partitions: usize,
    /// Mean fault-episode length.
    pub mean_episode: SimDuration,
    /// Probability that the sector in flight at a storage crash point
    /// leaves a torn prefix behind (see [`crate::storage::SimDisk`]).
    pub torn_write_fraction: f64,
    /// Expected bit flips across a disk at each powered-off restart.
    pub bitrot_flips_per_restart: f64,
    /// Seed for the whole plan.
    pub seed: u64,
}

impl FaultConfig {
    /// The combined chaos preset E20 quotes its acceptance numbers
    /// under: every fault class active at once.
    pub fn chaos_preset(seed: u64) -> FaultConfig {
        FaultConfig {
            crashes_per_node: 0.5,
            amnesia_fraction: 0.5,
            slow_fraction: 0.15,
            slow_rate: 0.01,
            corrupt_fraction: 0.10,
            loss_episodes_per_node: 0.5,
            loss_rate: 0.15,
            delay_episodes_per_node: 0.5,
            delay_spike: SimDuration::from_millis(250),
            blackhole_episodes_per_node: 0.25,
            partitions: 2,
            mean_episode: SimDuration::from_secs(120),
            torn_write_fraction: 0.75,
            bitrot_flips_per_restart: 1.0,
            seed,
        }
    }

    /// The storage-fault knobs of this config, in the shape
    /// [`SimDisk::with_faults`](crate::storage::SimDisk::with_faults)
    /// takes.
    pub fn storage_faults(&self) -> crate::storage::StorageFaults {
        crate::storage::StorageFaults {
            torn_write_fraction: self.torn_write_fraction,
            bitrot_flips_per_restart: self.bitrot_flips_per_restart,
        }
    }

    /// A quieter preset for CI smoke runs: same fault classes, fewer
    /// episodes, shorter windows.
    pub fn smoke_preset(seed: u64) -> FaultConfig {
        FaultConfig {
            crashes_per_node: 0.25,
            slow_fraction: 0.10,
            corrupt_fraction: 0.08,
            loss_episodes_per_node: 0.25,
            delay_episodes_per_node: 0.25,
            blackhole_episodes_per_node: 0.10,
            partitions: 1,
            mean_episode: SimDuration::from_secs(60),
            ..FaultConfig::chaos_preset(seed)
        }
    }
}

/// A fully materialized fault schedule over `n` nodes up to a horizon.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    peer_faults: Vec<PeerFault>,
    partitions: Vec<Partition>,
    horizon: SimTime,
}

/// Draws an exponential duration with the given mean (inverse-CDF).
fn exponential(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen();
    SimDuration::from_secs_f64(-mean.as_secs_f64() * (1.0 - u).ln())
}

/// Draws a window of mean length `mean` starting uniformly in the
/// horizon, clamped to it.
fn random_window(rng: &mut StdRng, mean: SimDuration, horizon: SimTime) -> Window {
    let start_ns = rng.gen_range(0..horizon.as_nanos().max(1));
    let len = exponential(rng, mean).as_nanos().max(1);
    let from = SimTime::from_nanos(start_ns);
    let to = SimTime::from_nanos(start_ns.saturating_add(len).min(horizon.as_nanos()));
    if from < to {
        Window { from, to }
    } else {
        // Degenerate draw at the horizon edge: take the last nanosecond.
        Window {
            from: SimTime::from_nanos(horizon.as_nanos().saturating_sub(1)),
            to: horizon,
        }
    }
}

impl FaultPlan {
    /// An empty plan (useful as a baseline and for manual composition).
    pub fn empty(horizon: SimTime) -> FaultPlan {
        FaultPlan {
            horizon,
            ..FaultPlan::default()
        }
    }

    /// Generates a chaos plan for `n` nodes up to `horizon`. Episode
    /// draws use node-indexed seed streams (like
    /// [`ChurnSchedule::generate`]), so adding nodes never reshuffles
    /// the faults of earlier ones.
    ///
    /// [`ChurnSchedule::generate`]: crate::churn::ChurnSchedule::generate
    pub fn generate(n: usize, cfg: FaultConfig, horizon: SimTime) -> FaultPlan {
        assert!(horizon > SimTime::ZERO, "fault plan needs a horizon");
        let mut plan = FaultPlan::empty(horizon);
        for node in 0..n {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ 0xfa17 ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            // Peer faults.
            let crashes = poissonish(&mut rng, cfg.crashes_per_node);
            for _ in 0..crashes {
                let window = random_window(&mut rng, cfg.mean_episode, horizon);
                let amnesia = rng.gen::<f64>() < cfg.amnesia_fraction;
                plan.peer_faults.push(PeerFault {
                    node,
                    kind: PeerFaultKind::Crash { amnesia },
                    window,
                });
            }
            if rng.gen::<f64>() < cfg.slow_fraction {
                let window = random_window(&mut rng, cfg.mean_episode, horizon);
                plan.peer_faults.push(PeerFault {
                    node,
                    kind: PeerFaultKind::Slow {
                        rate: cfg.slow_rate,
                    },
                    window,
                });
            }
            if rng.gen::<f64>() < cfg.corrupt_fraction {
                let window = random_window(&mut rng, cfg.mean_episode, horizon);
                plan.peer_faults.push(PeerFault {
                    node,
                    kind: PeerFaultKind::Corrupt,
                    window,
                });
            }
            // Link faults on the node's access link (peer ↔ rest of the
            // world, modeled as the pair (node, node) wildcard is not
            // used; we fault the pair (node, usize::MAX) meaning "any
            // traffic of this node").
            for (count, kind) in [
                (
                    poissonish(&mut rng, cfg.loss_episodes_per_node),
                    LinkFaultKind::Loss(cfg.loss_rate),
                ),
                (
                    poissonish(&mut rng, cfg.delay_episodes_per_node),
                    LinkFaultKind::DelaySpike(cfg.delay_spike),
                ),
                (
                    poissonish(&mut rng, cfg.blackhole_episodes_per_node),
                    LinkFaultKind::Blackhole,
                ),
            ] {
                for _ in 0..count {
                    let window = random_window(&mut rng, cfg.mean_episode, horizon);
                    plan.link_faults.push(LinkFault {
                        a: node,
                        b: ANY_NODE,
                        kind,
                        window,
                    });
                }
            }
        }
        // Named partition episodes: split the id space in two at a
        // seeded cut point.
        let mut prng = StdRng::seed_from_u64(cfg.seed ^ 0x009a_2717);
        for p in 0..cfg.partitions {
            if n < 2 {
                break;
            }
            let cut = prng.gen_range(1..n);
            let window = random_window(&mut prng, cfg.mean_episode * 2, horizon);
            plan.partitions.push(Partition {
                name: format!("partition-{p}@cut{cut}"),
                window,
                cells: vec![(0..cut).collect(), (cut..n).collect()],
            });
        }
        plan
    }

    /// Adds an explicit link fault (builder-style composition).
    pub fn with_link_fault(mut self, fault: LinkFault) -> FaultPlan {
        self.link_faults.push(fault);
        self
    }

    /// Adds an explicit peer fault.
    pub fn with_peer_fault(mut self, fault: PeerFault) -> FaultPlan {
        self.peer_faults.push(fault);
        self
    }

    /// Adds an explicit named partition episode.
    pub fn with_partition(mut self, partition: Partition) -> FaultPlan {
        self.partitions.push(partition);
        self
    }

    /// The horizon the plan was generated to.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Total fault episodes of every kind (table metric).
    pub fn episode_count(&self) -> usize {
        self.link_faults.len() + self.peer_faults.len() + self.partitions.len()
    }

    /// The composite behavior of `node` at `t`. Crash dominates
    /// corrupt, corrupt dominates slow (a crashed peer can't serve
    /// garbage; a corrupt peer's garbage arrives at whatever rate).
    pub fn peer_mode(&self, node: usize, t: SimTime) -> PeerMode {
        let mut mode = PeerMode::Ok;
        for f in self.peer_faults.iter().filter(|f| f.node == node) {
            if !f.window.contains(t) {
                continue;
            }
            match f.kind {
                PeerFaultKind::Crash { .. } => return PeerMode::Crashed,
                PeerFaultKind::Corrupt => mode = PeerMode::Corrupt,
                PeerFaultKind::Slow { rate } => {
                    if mode == PeerMode::Ok {
                        mode = PeerMode::Slow(rate);
                    }
                }
            }
        }
        mode
    }

    /// Restart events (crash-window ends) in `(from, to]`, time-ordered.
    pub fn restarts_in(&self, from: SimTime, to: SimTime) -> Vec<RestartEvent> {
        let mut out: Vec<RestartEvent> = self
            .peer_faults
            .iter()
            .filter_map(|f| match f.kind {
                PeerFaultKind::Crash { amnesia }
                    if f.window.to > from && f.window.to <= to && f.window.to < self.horizon =>
                {
                    Some(RestartEvent {
                        at: f.window.to,
                        node: f.node,
                        amnesia,
                    })
                }
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.at.cmp(&b.at).then(a.node.cmp(&b.node)));
        out
    }

    /// Whether `a` and `b` are on the same side of every active
    /// partition at `t`.
    pub fn same_partition_side(&self, a: usize, b: usize, t: SimTime) -> bool {
        for p in &self.partitions {
            if !p.window.contains(t) {
                continue;
            }
            let cell_of = |x: usize| p.cells.iter().position(|c| c.contains(&x));
            if cell_of(a) != cell_of(b) {
                return false;
            }
        }
        true
    }

    /// The active partition names at `t` (trace labeling).
    pub fn active_partitions(&self, t: SimTime) -> Vec<&str> {
        self.partitions
            .iter()
            .filter(|p| p.window.contains(t))
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Whether traffic can flow between `a` and `b` at `t`: no
    /// blackhole on either access link, and no partition between them.
    pub fn link_ok(&self, a: usize, b: usize, t: SimTime) -> bool {
        if !self.same_partition_side(a, b, t) {
            return false;
        }
        !self
            .link_faults
            .iter()
            .any(|f| f.kind == LinkFaultKind::Blackhole && f.window.contains(t) && applies(f, a, b))
    }

    /// Packet-loss probability between `a` and `b` at `t`: loss
    /// windows compose as independent drops, `1 - Π(1 - pᵢ)`.
    pub fn loss(&self, a: usize, b: usize, t: SimTime) -> f64 {
        let mut pass = 1.0;
        for f in &self.link_faults {
            if let LinkFaultKind::Loss(p) = f.kind {
                if f.window.contains(t) && applies(f, a, b) {
                    pass *= 1.0 - p.clamp(0.0, 1.0);
                }
            }
        }
        1.0 - pass
    }

    /// Added one-way delay between `a` and `b` at `t` (spikes sum).
    pub fn extra_delay(&self, a: usize, b: usize, t: SimTime) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for f in &self.link_faults {
            if let LinkFaultKind::DelaySpike(d) = f.kind {
                if f.window.contains(t) && applies(f, a, b) {
                    extra += d;
                }
            }
        }
        extra
    }

    /// The full composite reachability verdict a fetcher cares about:
    /// link up, no partition, target not crashed.
    pub fn reachable(&self, from: usize, target: usize, t: SimTime) -> bool {
        self.link_ok(from, target, t) && self.peer_mode(target, t) != PeerMode::Crashed
    }
}

/// Wildcard endpoint: a fault on `(node, ANY_NODE)` applies to all of
/// the node's traffic (its access link).
pub const ANY_NODE: usize = usize::MAX;

fn applies(f: &LinkFault, a: usize, b: usize) -> bool {
    if f.b == ANY_NODE {
        f.a == a || f.a == b
    } else {
        f.touches(a, b)
    }
}

/// A cheap Poisson-ish draw: `floor(mean)` events plus one more with
/// probability `frac(mean)`. Keeps expected counts right without a
/// full Poisson sampler; episode *placement* carries the randomness.
fn poissonish(rng: &mut StdRng, mean: f64) -> u32 {
    let base = mean.max(0.0).floor();
    let extra = if rng.gen::<f64>() < (mean - base) {
        1
    } else {
        0
    };
    base as u32 + extra
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn w(a: u64, b: u64) -> Window {
        Window::new(t(a), t(b))
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = FaultConfig::chaos_preset(42);
        let a = FaultPlan::generate(30, cfg, t(3600));
        let b = FaultPlan::generate(30, cfg, t(3600));
        assert_eq!(a.peer_faults, b.peer_faults);
        assert_eq!(a.link_faults, b.link_faults);
        assert_eq!(a.partitions, b.partitions);
        let c = FaultPlan::generate(30, FaultConfig::chaos_preset(43), t(3600));
        assert!(a.peer_faults != c.peer_faults || a.link_faults != c.link_faults);
    }

    #[test]
    fn node_indexed_streams_are_stable_under_growth() {
        let cfg = FaultConfig::chaos_preset(7);
        let small = FaultPlan::generate(10, cfg, t(1800));
        let large = FaultPlan::generate(20, cfg, t(1800));
        for node in 0..10 {
            let sf: Vec<_> = small
                .peer_faults
                .iter()
                .filter(|f| f.node == node)
                .collect();
            let lf: Vec<_> = large
                .peer_faults
                .iter()
                .filter(|f| f.node == node)
                .collect();
            assert_eq!(sf, lf, "node {node} faults reshuffled by growth");
        }
    }

    #[test]
    fn chaos_preset_produces_every_fault_class() {
        let plan = FaultPlan::generate(60, FaultConfig::chaos_preset(3), t(3600));
        let has = |pred: &dyn Fn(&PeerFault) -> bool| plan.peer_faults.iter().any(pred);
        assert!(has(&|f| matches!(f.kind, PeerFaultKind::Crash { .. })));
        assert!(has(&|f| matches!(f.kind, PeerFaultKind::Slow { .. })));
        assert!(has(&|f| matches!(f.kind, PeerFaultKind::Corrupt)));
        assert!(plan
            .link_faults
            .iter()
            .any(|f| matches!(f.kind, LinkFaultKind::Loss(_))));
        assert!(plan
            .link_faults
            .iter()
            .any(|f| matches!(f.kind, LinkFaultKind::DelaySpike(_))));
        assert!(plan
            .link_faults
            .iter()
            .any(|f| matches!(f.kind, LinkFaultKind::Blackhole)));
        assert_eq!(plan.partitions.len(), 2);
        assert!(plan.episode_count() > 60);
    }

    #[test]
    fn peer_mode_precedence_crash_over_corrupt_over_slow() {
        let plan = FaultPlan::empty(t(100))
            .with_peer_fault(PeerFault {
                node: 1,
                kind: PeerFaultKind::Slow { rate: 0.01 },
                window: w(0, 100),
            })
            .with_peer_fault(PeerFault {
                node: 1,
                kind: PeerFaultKind::Corrupt,
                window: w(10, 50),
            })
            .with_peer_fault(PeerFault {
                node: 1,
                kind: PeerFaultKind::Crash { amnesia: true },
                window: w(20, 30),
            });
        assert_eq!(plan.peer_mode(1, t(5)), PeerMode::Slow(0.01));
        assert_eq!(plan.peer_mode(1, t(15)), PeerMode::Corrupt);
        assert_eq!(plan.peer_mode(1, t(25)), PeerMode::Crashed);
        assert_eq!(plan.peer_mode(1, t(60)), PeerMode::Slow(0.01));
        assert_eq!(plan.peer_mode(0, t(25)), PeerMode::Ok);
    }

    #[test]
    fn restarts_report_amnesia() {
        let plan = FaultPlan::empty(t(100))
            .with_peer_fault(PeerFault {
                node: 2,
                kind: PeerFaultKind::Crash { amnesia: true },
                window: w(10, 20),
            })
            .with_peer_fault(PeerFault {
                node: 3,
                kind: PeerFaultKind::Crash { amnesia: false },
                window: w(15, 25),
            });
        let all = plan.restarts_in(SimTime::ZERO, t(100));
        assert_eq!(
            all,
            vec![
                RestartEvent {
                    at: t(20),
                    node: 2,
                    amnesia: true
                },
                RestartEvent {
                    at: t(25),
                    node: 3,
                    amnesia: false
                },
            ]
        );
        // Windowed query picks up only what ended inside the window.
        assert_eq!(plan.restarts_in(t(20), t(30)).len(), 1);
        // A crash running to the horizon never restarts.
        let open_ended = FaultPlan::empty(t(100)).with_peer_fault(PeerFault {
            node: 4,
            kind: PeerFaultKind::Crash { amnesia: true },
            window: w(90, 100),
        });
        assert!(open_ended.restarts_in(SimTime::ZERO, t(100)).is_empty());
    }

    #[test]
    fn partitions_sever_cross_cell_traffic_only() {
        let plan = FaultPlan::empty(t(100)).with_partition(Partition {
            name: "switch-outage".into(),
            window: w(10, 40),
            cells: vec![vec![0, 1], vec![2, 3]],
        });
        assert!(plan.link_ok(0, 2, t(5)), "before the window");
        assert!(!plan.link_ok(0, 2, t(10)));
        assert!(!plan.link_ok(3, 1, t(39)));
        assert!(plan.link_ok(0, 1, t(20)), "same cell stays connected");
        assert!(plan.link_ok(2, 3, t(20)));
        assert!(plan.link_ok(0, 2, t(40)), "window end is exclusive");
        assert_eq!(plan.active_partitions(t(20)), vec!["switch-outage"]);
        assert!(plan.active_partitions(t(50)).is_empty());
    }

    #[test]
    fn blackhole_and_wildcard_links() {
        let plan = FaultPlan::empty(t(100))
            .with_link_fault(LinkFault {
                a: 0,
                b: 1,
                kind: LinkFaultKind::Blackhole,
                window: w(0, 50),
            })
            .with_link_fault(LinkFault {
                a: 2,
                b: ANY_NODE,
                kind: LinkFaultKind::Blackhole,
                window: w(0, 50),
            });
        assert!(!plan.link_ok(0, 1, t(10)));
        assert!(!plan.link_ok(1, 0, t(10)), "undirected");
        assert!(plan.link_ok(0, 3, t(10)));
        // Wildcard: node 2 can reach nobody.
        assert!(!plan.link_ok(2, 0, t(10)));
        assert!(!plan.link_ok(4, 2, t(10)));
        assert!(plan.link_ok(2, 0, t(60)), "after the window");
    }

    #[test]
    fn loss_composes_and_delay_sums() {
        let plan = FaultPlan::empty(t(100))
            .with_link_fault(LinkFault {
                a: 0,
                b: 1,
                kind: LinkFaultKind::Loss(0.5),
                window: w(0, 50),
            })
            .with_link_fault(LinkFault {
                a: 0,
                b: ANY_NODE,
                kind: LinkFaultKind::Loss(0.5),
                window: w(0, 50),
            })
            .with_link_fault(LinkFault {
                a: 0,
                b: 1,
                kind: LinkFaultKind::DelaySpike(SimDuration::from_millis(100)),
                window: w(0, 50),
            })
            .with_link_fault(LinkFault {
                a: 1,
                b: ANY_NODE,
                kind: LinkFaultKind::DelaySpike(SimDuration::from_millis(50)),
                window: w(0, 50),
            });
        assert!((plan.loss(0, 1, t(10)) - 0.75).abs() < 1e-12);
        assert!((plan.loss(0, 2, t(10)) - 0.5).abs() < 1e-12);
        assert_eq!(plan.loss(2, 3, t(10)), 0.0);
        assert_eq!(plan.extra_delay(0, 1, t(10)), SimDuration::from_millis(150));
        assert_eq!(plan.extra_delay(0, 1, t(60)), SimDuration::ZERO);
    }

    #[test]
    fn reachable_folds_crash_partition_and_blackhole() {
        let plan = FaultPlan::empty(t(100))
            .with_peer_fault(PeerFault {
                node: 1,
                kind: PeerFaultKind::Crash { amnesia: false },
                window: w(10, 20),
            })
            .with_partition(Partition {
                name: "p".into(),
                window: w(30, 40),
                cells: vec![vec![0], vec![1]],
            });
        assert!(plan.reachable(0, 1, t(5)));
        assert!(!plan.reachable(0, 1, t(15)), "crashed");
        assert!(plan.reachable(0, 1, t(25)));
        assert!(!plan.reachable(0, 1, t(35)), "partitioned");
        // A crashed *requester* can still be modeled by callers; the
        // oracle only rules on the target and the path.
        assert!(plan.reachable(1, 0, t(15)));
    }

    #[test]
    #[should_panic(expected = "empty fault window")]
    fn empty_window_rejected() {
        let _ = Window::new(t(5), t(5));
    }
}
