//! [`NetSim`]: the event engine and flow network glued together.
//!
//! `NetSim` is a [`Sim`] whose state is a [`FlowNet`] plus per-flow
//! completion handlers. Starting a transfer schedules (and keeps
//! rescheduling, via an epoch counter) a single "next completion" event;
//! when it fires, finished flows are drained and their handlers run with
//! full access to the simulation — so a handler can immediately start the
//! next request of a session, which is how the workload drivers operate.

use crate::engine::Sim;
use crate::flow::{AllocMode, AllocStats, FlowId, FlowNet};
use crate::routing::Path;
use crate::time::SimTime;
use crate::topology::{DirLinkId, NodeId, Topology};
use crate::units::Bandwidth;
use hpop_obs::{event, CounterHandle, HistogramHandle, MetricsRegistry, SpanTracer, TraceCtx};
use std::collections::HashMap;

/// Per-link byte counters are only materialised for topologies up to this
/// many directed links; metro-scale topologies would otherwise drown the
/// registry in hundreds of thousands of counters.
const PER_LINK_METRIC_MAX: usize = 4096;

/// Handler invoked when a transfer completes.
pub type TransferHandler = Box<dyn FnOnce(&mut NetSim, TransferInfo)>;

/// Completion details passed to a transfer's handler.
#[derive(Clone, Debug)]
pub struct TransferInfo {
    /// The finished flow's id.
    pub flow: FlowId,
    /// Total bytes transferred.
    pub bytes: u64,
    /// When the transfer started.
    pub started_at: SimTime,
    /// When the last byte arrived.
    pub completed_at: SimTime,
    /// Mean throughput over the transfer.
    pub mean_rate: Bandwidth,
    /// Causal context carried by the flow ([`TraceCtx::NONE`] when
    /// untraced).
    pub ctx: TraceCtx,
}

/// Metric handles resolved once per registry, so the completion path
/// records into atomics instead of doing name lookups (and allocations).
struct MetricHandles {
    flows_started: CounterHandle,
    flows_completed: CounterHandle,
    flows_cancelled: CounterHandle,
    bytes_completed: CounterHandle,
    duration_us: HistogramHandle,
    flow_bytes: HistogramHandle,
    rate_kbps: HistogramHandle,
    /// One byte counter per directed link; empty above
    /// [`PER_LINK_METRIC_MAX`] links.
    link_bytes: Vec<CounterHandle>,
}

impl MetricHandles {
    fn resolve(m: &MetricsRegistry, dir_links: usize) -> Self {
        MetricHandles {
            flows_started: m.counter("netsim.flows.started"),
            flows_completed: m.counter("netsim.flows.completed"),
            flows_cancelled: m.counter("netsim.flows.cancelled"),
            bytes_completed: m.counter("netsim.bytes.completed"),
            duration_us: m.histogram("netsim.flow.duration_us"),
            flow_bytes: m.histogram("netsim.flow.bytes"),
            rate_kbps: m.histogram("netsim.flow.rate_kbps"),
            link_bytes: if dir_links <= PER_LINK_METRIC_MAX {
                (0..dir_links)
                    .map(|i| m.counter(&format!("netsim.link.{i}.bytes")))
                    .collect()
            } else {
                Vec::new()
            },
        }
    }
}

/// The network-simulation state carried inside the event engine.
pub struct NetState {
    /// The active-flow network.
    pub net: FlowNet,
    handlers: HashMap<u64, TransferHandler>,
    epoch: u64,
    /// Instant of the currently scheduled completion event (so a
    /// reallocation that doesn't move the next completion doesn't
    /// schedule a redundant event).
    pending_at: Option<SimTime>,
    metrics: MetricsRegistry,
    handles: MetricHandles,
    /// Reused buffer of completions drained per event (no allocation in
    /// the steady state).
    done: Vec<(FlowId, TransferInfo)>,
}

impl std::fmt::Debug for NetState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetState")
            .field("active_flows", &self.net.active_count())
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// A network simulation: the event engine specialised to a [`FlowNet`].
pub type NetSim = Sim<NetState>;

impl Sim<NetState> {
    /// Creates a network simulation over `topo`, clock at zero.
    pub fn with_topology(topo: Topology) -> NetSim {
        let metrics = MetricsRegistry::new();
        let handles = MetricHandles::resolve(&metrics, topo.dir_link_count());
        Sim::new(NetState {
            net: FlowNet::new(topo),
            handlers: HashMap::new(),
            epoch: 0,
            pending_at: None,
            metrics,
            handles,
            done: Vec::new(),
        })
    }

    /// The registry receiving the engine's per-flow/per-link metrics
    /// (`netsim.flows.*`, `netsim.flow.*`, `netsim.link.*`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.state.metrics
    }

    /// Swaps in a shared registry (e.g. the experiment's), so engine
    /// metrics land in the same snapshot as service metrics. Call before
    /// starting transfers; earlier metrics stay in the old registry.
    pub fn use_metrics(&mut self, metrics: MetricsRegistry) {
        self.state.handles =
            MetricHandles::resolve(&metrics, self.state.net.topology().dir_link_count());
        self.state.metrics = metrics;
    }

    /// Selects the rate-allocation strategy (incremental vs the legacy
    /// global re-solve); safe mid-run — rates are re-solved at the
    /// switch and the pending completion event refreshed.
    pub fn set_alloc_mode(&mut self, mode: AllocMode) {
        let now = self.now();
        self.state.net.advance(now);
        self.state.net.set_alloc_mode(mode);
        self.reschedule_completion();
    }

    /// Cumulative allocator work counters (see [`AllocStats`]).
    pub fn alloc_stats(&self) -> AllocStats {
        self.state.net.alloc_stats()
    }

    /// Starts a transfer on the native route and registers a completion
    /// handler.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are disconnected (a topology bug in the
    /// experiment, not a runtime condition).
    pub fn start_transfer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        on_done: impl FnOnce(&mut NetSim, TransferInfo) + 'static,
    ) -> FlowId {
        self.start_transfer_capped(src, dst, bytes, None, on_done)
    }

    /// Forwards a span tracer to the flow network (see
    /// [`FlowNet::set_span_tracer`]).
    pub fn set_span_tracer(&mut self, spans: SpanTracer) {
        self.state.net.set_span_tracer(spans);
    }

    /// Starts a rate-capped transfer on the native route.
    pub fn start_transfer_capped(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap: Option<Bandwidth>,
        on_done: impl FnOnce(&mut NetSim, TransferInfo) + 'static,
    ) -> FlowId {
        self.start_transfer_traced(src, dst, bytes, cap, TraceCtx::NONE, on_done)
    }

    /// Starts a transfer carrying the causal context of the request it
    /// serves; the flow records a `"transfer"` span on completion when
    /// the context is sampled and a tracer is attached.
    pub fn start_transfer_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cap: Option<Bandwidth>,
        ctx: TraceCtx,
        on_done: impl FnOnce(&mut NetSim, TransferInfo) + 'static,
    ) -> FlowId {
        let now = self.now();
        let id = self
            .state
            .net
            .start_traced(src, dst, bytes, cap, now, ctx)
            .unwrap_or_else(|| panic!("no route between {src:?} and {dst:?}"));
        self.state.handlers.insert(id.raw(), Box::new(on_done));
        self.state.handles.flows_started.incr();
        self.reschedule_completion();
        id
    }

    /// Starts a transfer along an explicit [`Path`] (e.g. a detour leg).
    pub fn start_transfer_on_path(
        &mut self,
        path: Path,
        bytes: u64,
        cap: Option<Bandwidth>,
        on_done: impl FnOnce(&mut NetSim, TransferInfo) + 'static,
    ) -> FlowId {
        let now = self.now();
        let id = self.state.net.start_on_path(path, bytes, cap, now);
        self.state.handlers.insert(id.raw(), Box::new(on_done));
        self.state.handles.flows_started.incr();
        self.reschedule_completion();
        id
    }

    /// Starts a fire-and-forget transfer along explicit hops without
    /// constructing a [`Path`] or boxing a handler — the allocation-free
    /// bulk path metro-scale workload drivers use. Completion is still
    /// metered; there is just no per-flow callback.
    pub fn start_transfer_on_hops(
        &mut self,
        src: NodeId,
        dst: NodeId,
        hops: &[DirLinkId],
        bytes: u64,
        cap: Option<Bandwidth>,
    ) -> FlowId {
        let now = self.now();
        let id = self
            .state
            .net
            .start_on_hops(src, dst, hops, bytes, cap, now, TraceCtx::NONE);
        self.state.handles.flows_started.incr();
        self.reschedule_completion();
        id
    }

    /// Adjusts a flow's rate cap mid-transfer (cwnd evolution).
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Option<Bandwidth>) {
        let now = self.now();
        self.state.net.set_cap(id, cap, now);
        self.reschedule_completion();
    }

    /// Cancels a flow; its handler is dropped without running. Returns the
    /// unfinished byte count, or `None` if unknown/complete.
    pub fn cancel_transfer(&mut self, id: FlowId) -> Option<u64> {
        let now = self.now();
        let left = self.state.net.cancel(id, now)?;
        self.state.handlers.remove(&id.raw());
        self.state.handles.flows_cancelled.incr();
        self.reschedule_completion();
        Some(left)
    }

    /// Ensures a completion event is pending at the earliest completion
    /// instant. When a flow-set change leaves the next completion where
    /// it was, the already-scheduled event is kept; otherwise it is
    /// invalidated (by bumping the epoch) and a fresh one scheduled.
    fn reschedule_completion(&mut self) {
        let now = self.now();
        let next = self.state.net.next_completion().map(|(t, _)| t.max(now));
        if next == self.state.pending_at {
            return; // the pending event already fires at the right instant
        }
        self.state.epoch += 1;
        let epoch = self.state.epoch;
        self.state.pending_at = next;
        if let Some(at) = next {
            self.schedule_at(at, move |sim| {
                if sim.state.epoch != epoch {
                    return; // superseded by a later flow-set change
                }
                sim.state.pending_at = None;
                sim.drain_completions();
            });
        }
    }

    fn drain_completions(&mut self) {
        let now = self.now();
        let st = &mut self.state;
        st.net.advance(now);
        st.done.clear();
        let (net, done, handles) = (&mut st.net, &mut st.done, &st.handles);
        net.drain_completed_with(|id, info, hops| {
            handles.flows_completed.incr();
            handles.bytes_completed.add(info.total_bytes);
            let duration = info.completed_at.saturating_since(info.started_at);
            let dt = duration.as_secs_f64();
            let mean_rate = if dt <= 0.0 {
                Bandwidth::ZERO
            } else {
                Bandwidth::from_bps(info.total_bytes as f64 * 8.0 / dt)
            };
            handles.duration_us.record(duration.as_nanos() / 1_000);
            handles.flow_bytes.record(info.total_bytes);
            handles
                .rate_kbps
                .record((mean_rate.bits_per_sec() / 1e3) as u64);
            if !handles.link_bytes.is_empty() {
                for hop in hops {
                    handles.link_bytes[hop.index()].add(info.total_bytes);
                }
            }
            event!(
                hpop_obs::tracer(),
                now.as_nanos() / 1_000,
                "netsim",
                "flow.complete",
                flow = id.raw(),
                bytes = info.total_bytes,
                duration_us = duration.as_nanos() / 1_000,
                hops = hops.len() as u64
            );
            done.push((
                id,
                TransferInfo {
                    flow: id,
                    bytes: info.total_bytes,
                    started_at: info.started_at,
                    completed_at: info.completed_at,
                    mean_rate,
                    ctx: info.ctx,
                },
            ));
        });
        // Reschedule *before* running handlers: handlers may start flows,
        // which reschedules again with a fresher epoch.
        self.reschedule_completion();
        for k in 0..self.state.done.len() {
            let (id, info) = self.state.done[k].clone();
            if let Some(h) = self.state.handlers.remove(&id.raw()) {
                h(self, info);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::TopologyBuilder;
    use crate::units::MB;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn pair_sim() -> (NetSim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        (NetSim::with_topology(b.build()), x, y)
    }

    #[test]
    fn transfer_completes_and_reports() {
        let (mut sim, x, y) = pair_sim();
        let seen = Rc::new(RefCell::new(None));
        let s2 = seen.clone();
        sim.start_transfer(x, y, 125 * MB, move |_, info| {
            *s2.borrow_mut() = Some(info);
        });
        sim.run();
        let info = seen.borrow().clone().unwrap();
        assert_eq!(info.bytes, 125 * MB);
        assert!(info.completed_at >= SimTime::from_secs(1));
        assert!((info.mean_rate.bits_per_sec() - 1e9).abs() < 1e4);
    }

    #[test]
    fn handler_can_chain_transfers() {
        let (mut sim, x, y) = pair_sim();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        sim.start_transfer(x, y, 125 * MB, move |sim, info| {
            l2.borrow_mut().push(info.completed_at);
            let l3 = l2.clone();
            sim.start_transfer(y, x, 125 * MB, move |_, info| {
                l3.borrow_mut().push(info.completed_at);
            });
        });
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        assert!(log[1] > log[0]);
        // Each leg is ~1s (125MB at 1Gbps).
        assert!(log[1].as_secs_f64() > 1.9 && log[1].as_secs_f64() < 2.1);
    }

    #[test]
    fn concurrent_transfers_slow_each_other() {
        let (mut sim, x, y) = pair_sim();
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let t2 = times.clone();
            sim.start_transfer(x, y, 125 * MB, move |_, info| {
                t2.borrow_mut().push(info.completed_at.as_secs_f64());
            });
        }
        sim.run();
        // Both share the link: each finishes at ~2s, not 1s.
        for &t in times.borrow().iter() {
            assert!(t > 1.9 && t < 2.1, "finish at {t}");
        }
    }

    #[test]
    fn staggered_arrivals_reallocate() {
        let (mut sim, x, y) = pair_sim();
        let t_first = Rc::new(RefCell::new(0.0));
        let tf = t_first.clone();
        // First flow alone for 0.5s, then shares for the remainder.
        sim.start_transfer(x, y, 125 * MB, move |_, info| {
            *tf.borrow_mut() = info.completed_at.as_secs_f64();
        });
        sim.schedule_in(SimDuration::from_nanos(500_000_000), move |sim| {
            sim.start_transfer(x, y, 125 * MB, |_, _| {});
        });
        sim.run();
        // First flow: 62.5MB in 0.5s alone, then 62.5MB at 0.5Gbps = 1.0s more.
        let t = *t_first.borrow();
        assert!((t - 1.5).abs() < 0.01, "first finished at {t}");
    }

    #[test]
    fn cancel_drops_handler() {
        let (mut sim, x, y) = pair_sim();
        let ran = Rc::new(RefCell::new(false));
        let r2 = ran.clone();
        let id = sim.start_transfer(x, y, 125 * MB, move |_, _| {
            *r2.borrow_mut() = true;
        });
        let left = sim.cancel_transfer(id).unwrap();
        assert_eq!(left, 125 * MB);
        sim.run();
        assert!(!*ran.borrow());
    }

    #[test]
    fn cap_changes_mid_flight() {
        let (mut sim, x, y) = pair_sim();
        let done = Rc::new(RefCell::new(0.0));
        let d2 = done.clone();
        let id = sim.start_transfer_capped(
            x,
            y,
            125 * MB,
            Some(Bandwidth::mbps(500.0)),
            move |_, info| {
                *d2.borrow_mut() = info.completed_at.as_secs_f64();
            },
        );
        // After 1s at 500 Mbps (62.5 MB done), lift the cap.
        sim.schedule_in(SimDuration::from_secs(1), move |sim| {
            sim.set_flow_cap(id, None);
        });
        sim.run();
        // Remaining 62.5MB at 1Gbps = 0.5s: total 1.5s.
        let t = *done.borrow();
        assert!((t - 1.5).abs() < 0.01, "finished at {t}");
    }

    #[test]
    fn engine_emits_flow_and_link_metrics() {
        let (mut sim, x, y) = pair_sim();
        sim.start_transfer(x, y, 125 * MB, |_, _| {});
        sim.run();
        let m = sim.metrics();
        assert_eq!(m.counter("netsim.flows.started").get(), 1);
        assert_eq!(m.counter("netsim.flows.completed").get(), 1);
        assert_eq!(m.counter("netsim.bytes.completed").get(), 125 * MB);
        assert_eq!(m.histogram("netsim.flow.duration_us").count(), 1);
        assert_eq!(m.histogram("netsim.flow.bytes").load().max(), 125 * MB);
        // The single x→y hop carried every byte.
        let link_bytes: u64 = m
            .metric_names()
            .iter()
            .filter(|n| n.starts_with("netsim.link."))
            .map(|n| m.counter(n).get())
            .sum();
        assert_eq!(link_bytes, 125 * MB);
    }

    #[test]
    fn shared_registry_collects_engine_metrics() {
        let (mut sim, x, y) = pair_sim();
        let reg = hpop_obs::MetricsRegistry::new();
        sim.use_metrics(reg.clone());
        sim.start_transfer(x, y, MB, |_, _| {});
        sim.run();
        assert_eq!(reg.counter("netsim.flows.completed").get(), 1);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_transfer_panics() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let mut sim = NetSim::with_topology(b.build());
        sim.start_transfer(x, y, MB, |_, _| {});
    }
}
