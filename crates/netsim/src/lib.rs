//! # hpop-netsim — deterministic flow-level network simulator
//!
//! The substrate underneath every HPoP experiment. The paper's testbed was
//! the Case Connection Zone (CCZ): ~100 homes with bi-directional 1 Gbps
//! fiber, aggregated onto a shared 10 Gbps uplink. We reproduce that (and
//! any other) topology in a deterministic discrete-event simulator so every
//! figure regenerates bit-identically from a seed.
//!
//! The simulator is *flow-level*: links divide capacity among the flows
//! crossing them by progressive filling (max-min fairness), optionally
//! limited by per-flow rate caps (used by `hpop-transport`'s TCP model to
//! impose congestion-window ceilings). Packet-level detail (per-packet
//! encapsulation overhead, loss probabilities) is modeled analytically
//! where an experiment needs it.
//!
//! ## Architecture
//!
//! - [`time`] — simulated clock ([`SimTime`]) with nanosecond resolution.
//! - [`units`] — typed [`Bandwidth`] and byte-size helpers.
//! - [`engine`] — the event queue: [`Sim`] schedules closures at future
//!   simulated instants and runs them in deterministic order.
//! - [`topology`] — nodes and full-duplex links with capacity, propagation
//!   delay and loss.
//! - [`routing`] — shortest-path (latency-weighted Dijkstra) routing and
//!   path metrics.
//! - [`fairshare`] — max-min fair bandwidth allocation with rate caps.
//! - [`flow`] — the active-flow set and its progress bookkeeping.
//! - [`netsim`] — [`NetSim`]: the engine + flow network glued together;
//!   start transfers, get completion callbacks.
//! - [`metrics`] — time series, counters and CDFs used by the harness.
//! - [`presets`] — canonical topologies from the paper (CCZ, dumbbell,
//!   detour triangles).
//! - [`churn`] — seeded on/off renewal processes per node: the
//!   deterministic peer-churn schedules the fabric layer runs against.
//! - [`faults`] — seeded fault-injection plans composing link loss,
//!   delay spikes, blackholes, peer crashes/slowness/corruption and
//!   named partitions on the same clock as the churn schedules.
//! - [`attacks`] — seeded adversarial campaigns (Sybil swarms,
//!   accounting collusion, record laundering, adaptive throttling):
//!   the same passive-oracle shape as [`faults`], composable with it.
//! - [`storage`] — [`SimDisk`]: a deterministic block device with
//!   crash-point injection, torn sector writes and bit-rot, the
//!   substrate of the `hpop-durability` crash-recovery layer.
//!
//! ## Example
//!
//! ```
//! use hpop_netsim::prelude::*;
//!
//! // Two homes connected by a 1 Gbps link; one 100 MB transfer between them.
//! let mut b = TopologyBuilder::new();
//! let a = b.add_node("home-a");
//! let c = b.add_node("home-b");
//! b.add_link(a, c, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
//! let mut sim = NetSim::with_topology(b.build());
//! sim.start_transfer(a, c, 100 * MB, |_, info| {
//!     assert!(info.completed_at > SimTime::ZERO);
//! });
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod attacks;
pub mod calendar;
pub mod churn;
pub mod engine;
pub mod fairshare;
pub mod faults;
pub mod flow;
pub mod metrics;
pub mod netsim;
pub mod presets;
pub mod routing;
pub mod storage;
pub mod time;
pub mod topology;
pub mod units;

pub use churn::{ChurnConfig, ChurnEvent, ChurnSchedule};
pub use engine::Sim;
pub use faults::{FaultConfig, FaultPlan, PeerMode};
pub use flow::{AllocMode, AllocStats, CompletedInfo, FlowId, FlowNet};
pub use netsim::{NetSim, TransferInfo};
pub use routing::{Path, RoutingTable};
pub use storage::{DiskError, DiskStats, SimDisk, StorageFaults, SECTOR_BYTES};
pub use time::{SimDuration, SimTime};
pub use topology::{LinkId, NodeId, Topology, TopologyBuilder};
pub use units::{Bandwidth, GB, KB, MB};

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::churn::{ChurnConfig, ChurnEvent, ChurnSchedule};
    pub use crate::engine::Sim;
    pub use crate::flow::{AllocMode, AllocStats, FlowId, FlowNet};
    pub use crate::metrics::{Cdf, Counter, TimeSeries};
    pub use crate::netsim::{NetSim, TransferInfo};
    pub use crate::routing::{Path, RoutingTable};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LinkId, NodeId, Topology, TopologyBuilder};
    pub use crate::units::{Bandwidth, GB, KB, MB};
}
