//! The discrete-event engine.
//!
//! [`Sim`] owns a simulated clock, a priority queue of scheduled events,
//! and arbitrary user state `S`. Events are closures invoked with mutable
//! access to the whole simulation, so handlers can inspect state and
//! schedule further events. Ties in event time are broken by insertion
//! order, which keeps runs fully deterministic.

use crate::calendar::CalendarQueue;
use crate::time::{SimDuration, SimTime};

type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>)>;

/// A discrete-event simulation over user state `S`.
///
/// ```
/// use hpop_netsim::engine::Sim;
/// use hpop_netsim::time::SimDuration;
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(SimDuration::from_secs(1), |sim| sim.state += 1);
/// sim.schedule_in(SimDuration::from_secs(2), |sim| sim.state += 10);
/// sim.run();
/// assert_eq!(sim.state, 11);
/// assert_eq!(sim.now().as_secs_f64(), 2.0);
/// ```
pub struct Sim<S> {
    now: SimTime,
    queue: CalendarQueue<EventFn<S>>,
    next_seq: u64,
    events_run: u64,
    /// User-owned simulation state, freely accessible from event handlers.
    pub state: S,
}

impl<S> Sim<S> {
    /// Creates a simulation at t = 0 wrapping the given state.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            next_seq: 0,
            events_run: 0,
            state,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Sim<S>) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at.as_nanos(), seq, Box::new(event));
    }

    /// Schedules `event` to run `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: impl FnOnce(&mut Sim<S>) + 'static) {
        self.schedule_at(self.now + delay, event);
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events until the queue is empty or the clock would pass
    /// `deadline`; events scheduled exactly at `deadline` do run. The clock
    /// is left at the later of its current value and `deadline` (so metrics
    /// sampled afterwards see the full window).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek_key() {
                Some((at, _)) if at <= deadline.as_nanos() => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Executes the next event, if any. Returns whether one ran.
    pub fn step(&mut self) -> bool {
        match self.queue.pop_min() {
            Some((at, _seq, run)) => {
                let at = SimTime::from_nanos(at);
                debug_assert!(at >= self.now);
                self.now = at;
                self.events_run += 1;
                run(self);
                true
            }
            None => false,
        }
    }

    /// The time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|(at, _)| SimTime::from_nanos(at))
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_run", &self.events_run)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_in(SimDuration::from_secs(3), |s| s.state.push(3));
        sim.schedule_in(SimDuration::from_secs(1), |s| s.state.push(1));
        sim.schedule_in(SimDuration::from_secs(2), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(1), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Sim::new(0u64);
        fn tick(sim: &mut Sim<u64>) {
            sim.state += 1;
            if sim.state < 5 {
                sim.schedule_in(SimDuration::from_millis(10), tick);
            }
        }
        sim.schedule_in(SimDuration::ZERO, tick);
        sim.run();
        assert_eq!(sim.state, 5);
        assert_eq!(sim.now(), SimTime::from_nanos(40_000_000));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1), |s| s.state += 1);
        sim.schedule_in(SimDuration::from_secs(10), |s| s.state += 100);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.state, 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // The far event is still pending and runs on the next full run.
        sim.run();
        assert_eq!(sim.state, 101);
    }

    #[test]
    fn deadline_events_inclusive() {
        let mut sim = Sim::new(false);
        sim.schedule_at(SimTime::from_secs(5), |s| s.state = true);
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.state);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_in(SimDuration::from_secs(1), |s| {
            s.schedule_at(SimTime::ZERO, |_| {});
        });
        sim.run();
    }

    #[test]
    fn event_count_tracks() {
        let mut sim = Sim::new(());
        for _ in 0..7 {
            sim.schedule_in(SimDuration::from_millis(1), |_| {});
        }
        sim.run();
        assert_eq!(sim.events_run(), 7);
        assert_eq!(sim.pending(), 0);
    }
}
