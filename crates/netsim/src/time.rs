//! Simulated time.
//!
//! [`SimTime`] is an instant on the simulation clock, counted in integer
//! nanoseconds since the simulation epoch; [`SimDuration`] is a span
//! between instants. Integer arithmetic keeps runs deterministic — two
//! identical schedules produce identical clocks on every platform.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock (nanoseconds since the epoch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for metrics/reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a scheduling bug).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`since` called with a later instant"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero;
    /// values beyond the representable range clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for rate math and reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Checked subtraction; `None` if `other` is longer.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", std::time::Duration::from_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(250));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.since(SimTime::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
