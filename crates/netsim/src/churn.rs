//! Deterministic peer-churn model.
//!
//! Home appliances are not data-center servers: they reboot, lose
//! power, get unplugged for a move. Every peer-assisted HPoP service
//! must survive that, so the simulator models churn as **seeded on/off
//! renewal processes per node**: a configurable fraction of nodes
//! (*churners*) alternate exponentially-distributed up-sessions and
//! down-times; the rest stay up. The whole schedule is materialized at
//! construction from one seed and a horizon, so a run is a pure
//! function of `(config, n, horizon)` — identical on every platform,
//! replayable from the `BENCH_*.json` seed.
//!
//! The canonical preset ([`ChurnConfig::paper_preset`]) cycles 25% of
//! the peers with a mean session of 10 simulated minutes — the regime
//! the `exp_fabric_churn` acceptance numbers are quoted under.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the churn process.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Fraction of nodes that cycle on/off (the rest never fail).
    pub churn_fraction: f64,
    /// Mean length of a churner's up-session.
    pub mean_session: SimDuration,
    /// Mean length of a churner's downtime between sessions.
    pub mean_downtime: SimDuration,
    /// Seed for the schedule.
    pub seed: u64,
}

impl ChurnConfig {
    /// The canonical experiment preset: 25% of peers cycling with a
    /// mean session of 10 sim-minutes and mean downtime of 2.
    pub fn paper_preset(seed: u64) -> ChurnConfig {
        ChurnConfig {
            churn_fraction: 0.25,
            mean_session: SimDuration::from_secs(600),
            mean_downtime: SimDuration::from_secs(120),
            seed,
        }
    }
}

/// One liveness transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChurnEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which node flips.
    pub node: usize,
    /// The node's liveness after the transition.
    pub up: bool,
}

/// A fully materialized churn schedule over `n` nodes up to a horizon.
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    /// Per node: sorted toggle instants. Every node starts up; the
    /// k-th toggle flips it (odd count so far ⇒ down).
    toggles: Vec<Vec<SimTime>>,
    horizon: SimTime,
    churners: usize,
}

/// Draws an exponential duration with the given mean (inverse-CDF).
fn exponential(rng: &mut StdRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]; ln of it is finite and non-positive.
    SimDuration::from_secs_f64(-mean.as_secs_f64() * (1.0 - u).ln())
}

impl ChurnSchedule {
    /// Generates the schedule for `n` nodes up to `horizon`.
    ///
    /// Which nodes churn is itself seeded: each node churns with
    /// probability `churn_fraction`, drawn from a node-indexed stream
    /// so that adding nodes never reshuffles earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if `churn_fraction` is outside `[0, 1]` or a mean
    /// duration is zero while churners exist.
    pub fn generate(n: usize, cfg: ChurnConfig, horizon: SimTime) -> ChurnSchedule {
        assert!(
            (0.0..=1.0).contains(&cfg.churn_fraction),
            "churn fraction out of range: {}",
            cfg.churn_fraction
        );
        let mut toggles = Vec::with_capacity(n);
        let mut churners = 0;
        for node in 0..n {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let is_churner = rng.gen::<f64>() < cfg.churn_fraction;
            let mut t = Vec::new();
            if is_churner {
                assert!(
                    !cfg.mean_session.is_zero() && !cfg.mean_downtime.is_zero(),
                    "churners need positive mean durations"
                );
                churners += 1;
                let mut at = SimTime::ZERO;
                let mut up = true;
                loop {
                    let dur = if up {
                        exponential(&mut rng, cfg.mean_session)
                    } else {
                        exponential(&mut rng, cfg.mean_downtime)
                    };
                    at += dur;
                    if at >= horizon {
                        break;
                    }
                    t.push(at);
                    up = !up;
                }
            }
            toggles.push(t);
        }
        ChurnSchedule {
            toggles,
            horizon,
            churners,
        }
    }

    /// Number of nodes in the schedule.
    pub fn len(&self) -> usize {
        self.toggles.len()
    }

    /// True for a schedule over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.toggles.is_empty()
    }

    /// How many nodes cycle (the rest are always up).
    pub fn churner_count(&self) -> usize {
        self.churners
    }

    /// The horizon the schedule was generated to.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Ground-truth liveness of `node` at `t` (every node starts up).
    pub fn is_up(&self, node: usize, t: SimTime) -> bool {
        let flips = self.toggles[node].partition_point(|&at| at <= t);
        flips % 2 == 0
    }

    /// All transitions in `(from, to]`, globally time-ordered (ties
    /// break by node index).
    pub fn transitions_in(&self, from: SimTime, to: SimTime) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        self.transitions_into(from, to, &mut out);
        out
    }

    /// Allocation-free variant of [`transitions_in`]: clears `out` and
    /// fills it with the transitions in `(from, to]`. Lets per-tick
    /// driver loops reuse one buffer instead of allocating a fresh
    /// `Vec` every simulated second.
    ///
    /// [`transitions_in`]: ChurnSchedule::transitions_in
    pub fn transitions_into(&self, from: SimTime, to: SimTime, out: &mut Vec<ChurnEvent>) {
        out.clear();
        for (node, t) in self.toggles.iter().enumerate() {
            let lo = t.partition_point(|&at| at <= from);
            let hi = t.partition_point(|&at| at <= to);
            for (k, &at) in t[lo..hi].iter().enumerate() {
                out.push(ChurnEvent {
                    at,
                    node,
                    up: (lo + k) % 2 == 1, // odd toggle index ⇒ back up
                });
            }
        }
        out.sort_by(|a, b| a.at.cmp(&b.at).then(a.node.cmp(&b.node)));
    }

    /// The last transition instant anywhere in the schedule, if any
    /// node ever toggles.
    pub fn last_transition(&self) -> Option<SimTime> {
        self.toggles.iter().filter_map(|t| t.last()).copied().max()
    }

    /// Fraction of `[0, until]` that `node` was up.
    pub fn uptime_fraction(&self, node: usize, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 1.0;
        }
        let mut up = true;
        let mut last = SimTime::ZERO;
        let mut up_total = SimDuration::ZERO;
        for &at in &self.toggles[node] {
            if at > until {
                break;
            }
            if up {
                up_total += at.saturating_since(last);
            }
            last = at;
            up = !up;
        }
        if up {
            up_total += until.saturating_since(last);
        }
        up_total.as_secs_f64() / until.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes(m: u64) -> SimTime {
        SimTime::from_secs(m * 60)
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = ChurnConfig::paper_preset(7);
        let a = ChurnSchedule::generate(40, cfg, minutes(60));
        let b = ChurnSchedule::generate(40, cfg, minutes(60));
        assert_eq!(a.churner_count(), b.churner_count());
        for node in 0..40 {
            for t in (0..3600).step_by(30) {
                let at = SimTime::from_secs(t);
                assert_eq!(a.is_up(node, at), b.is_up(node, at));
            }
        }
        let c = ChurnSchedule::generate(40, ChurnConfig::paper_preset(8), minutes(60));
        assert_ne!(
            a.transitions_in(SimTime::ZERO, minutes(60)),
            c.transitions_in(SimTime::ZERO, minutes(60))
        );
    }

    #[test]
    fn roughly_a_quarter_churn_under_paper_preset() {
        let s = ChurnSchedule::generate(200, ChurnConfig::paper_preset(3), minutes(60));
        let frac = s.churner_count() as f64 / 200.0;
        assert!((0.15..=0.35).contains(&frac), "churner fraction {frac}");
    }

    #[test]
    fn everyone_starts_up_and_non_churners_stay_up() {
        let s = ChurnSchedule::generate(50, ChurnConfig::paper_preset(5), minutes(60));
        for node in 0..50 {
            assert!(s.is_up(node, SimTime::ZERO));
        }
        let churn_free = ChurnSchedule::generate(
            10,
            ChurnConfig {
                churn_fraction: 0.0,
                ..ChurnConfig::paper_preset(5)
            },
            minutes(60),
        );
        assert_eq!(churn_free.churner_count(), 0);
        for node in 0..10 {
            assert!(churn_free.is_up(node, minutes(59)));
            assert_eq!(churn_free.uptime_fraction(node, minutes(60)), 1.0);
        }
    }

    #[test]
    fn transitions_match_is_up() {
        let s = ChurnSchedule::generate(30, ChurnConfig::paper_preset(11), minutes(30));
        let events = s.transitions_in(SimTime::ZERO, minutes(30));
        assert!(!events.is_empty(), "paper preset should produce churn");
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at, "events must be time-ordered");
        }
        for e in &events {
            assert_eq!(s.is_up(e.node, e.at), e.up, "event {e:?}");
            // Just before the transition the node was in the opposite state.
            let before = SimTime::from_nanos(e.at.as_nanos() - 1);
            assert_eq!(s.is_up(e.node, before), !e.up);
        }
    }

    #[test]
    fn transitions_into_reuses_buffer_and_matches_allocating_path() {
        let s = ChurnSchedule::generate(20, ChurnConfig::paper_preset(7), minutes(20));
        let mut buf = Vec::new();
        for m in 0..20 {
            let (from, to) = (minutes(m), minutes(m + 1));
            s.transitions_into(from, to, &mut buf);
            assert_eq!(buf, s.transitions_in(from, to), "window {m}");
        }
        // A dirty buffer is cleared, not appended to.
        s.transitions_into(SimTime::ZERO, minutes(20), &mut buf);
        let all = buf.len();
        s.transitions_into(SimTime::ZERO, minutes(20), &mut buf);
        assert_eq!(buf.len(), all);
    }

    #[test]
    fn uptime_fraction_matches_session_downtime_ratio() {
        // Mean session 600 s, mean downtime 120 s ⇒ long-run uptime of
        // a churner ≈ 600/720 ≈ 0.83. Averaged over many churners and
        // a long horizon the estimate should be close.
        let cfg = ChurnConfig {
            churn_fraction: 1.0,
            ..ChurnConfig::paper_preset(13)
        };
        let horizon = minutes(600);
        let s = ChurnSchedule::generate(60, cfg, horizon);
        let mean: f64 = (0..60).map(|n| s.uptime_fraction(n, horizon)).sum::<f64>() / 60.0;
        assert!((0.78..=0.88).contains(&mean), "mean uptime {mean}");
    }

    #[test]
    fn uptime_fraction_is_one_at_epoch() {
        let s = ChurnSchedule::generate(2, ChurnConfig::paper_preset(1), minutes(10));
        assert_eq!(s.uptime_fraction(0, SimTime::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "churn fraction out of range")]
    fn bad_fraction_rejected() {
        let _ = ChurnSchedule::generate(
            1,
            ChurnConfig {
                churn_fraction: 1.5,
                ..ChurnConfig::paper_preset(0)
            },
            minutes(1),
        );
    }
}
