//! Flash-crowd allocator audit at metro scale.
//!
//! A flash crowd is the allocator's worst case: arrival rate jumps ~10×
//! in seconds and the new flows pile onto the *same* few uplinks (the
//! crowd is regionally skewed). The incremental max-min engine's two
//! guarantees must survive exactly this shape, not just smooth churn:
//!
//! 1. **Bounded work**: links touched per flow event stays under the
//!    E22 budget ceiling of 10 (the expected figure is ~2 — a flow's
//!    bottleneck link plus a ripple neighbor).
//! 2. **Zero steady-state allocation**: once one full burst episode has
//!    warmed every arena, list, heap and scratch buffer, an identical
//!    second episode must not touch the heap allocator at all.
//!
//! The schedule drives a 100k-home city through pre-burst → 10×
//! epicenter-skewed burst → drain, twice; the second episode runs under
//! the counting `#[global_allocator]`.

use hpop_netsim::prelude::*;
use hpop_netsim::presets::{metro, MetroNetwork, MetroParams};
use hpop_obs::TraceCtx;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Baseline cycles before the burst (and to warm the round-robin set).
const PRE: usize = 512;
/// Burst cycles: each starts `MAGNITUDE` epicenter flows + 1 baseline.
const BURST: usize = 256;
/// The flash-crowd rate multiplier.
const MAGNITUDE: usize = 10;
/// Homes in the epicenter region (10 aggregation switches' worth).
const EPICENTER_HOMES: usize = 320;
/// Round-robin working set of baseline requester homes.
const BASELINE_HOMES: usize = 4096;

fn start_home_flow(net: &mut FlowNet, city: &MetroNetwork, home: usize, i: usize, clock: SimTime) {
    let hops = city.up_hops(home);
    net.start_on_hops(
        city.homes[home],
        city.backbone,
        &hops,
        1_000_000 + (i as u64 % 7) * 300_000,
        Some(Bandwidth::mbps(200.0 + (i % 5) as f64 * 50.0)),
        clock,
        TraceCtx::NONE,
    );
}

fn drain_one(net: &mut FlowNet, clock: &mut SimTime) -> usize {
    let Some((t, _)) = net.next_completion() else {
        return 0;
    };
    *clock = t;
    net.advance(t);
    let mut done = 0usize;
    net.drain_completed_with(|_, _, _| done += 1);
    done
}

/// Concurrency bound during the burst — the role the service-level
/// admission layer plays in E26. Without it the backlog on the shared
/// epicenter uplinks grows without bound and every arrival ripples
/// across hundreds of access links: that is the collapse the overload
/// controls exist to prevent, and the engine's ~2-links-per-event
/// guarantee is scoped to the admitted (bounded-concurrency) regime.
const MAX_INFLIGHT: usize = 64;

/// One full flash-crowd episode: pre-burst baseline, a 10× regionally
/// skewed burst of *arrival rate* under bounded concurrency, then
/// drain-to-empty. Deterministic — the second run replays the exact
/// same link set the first warmed.
fn episode(net: &mut FlowNet, city: &MetroNetwork, clock: &mut SimTime) {
    let mut inflight = 0usize;
    for i in 0..PRE {
        start_home_flow(net, city, (i * 9973) % BASELINE_HOMES, i, *clock);
        inflight += 1;
        inflight -= drain_one(net, clock);
    }
    for i in 0..BURST {
        // The crowd: MAGNITUDE flows from the epicenter region...
        for k in 0..MAGNITUDE {
            let home = (i * MAGNITUDE + k) % EPICENTER_HOMES;
            start_home_flow(net, city, home, i + k, *clock);
        }
        // ...on top of the unchanged baseline.
        start_home_flow(net, city, ((PRE + i) * 9973) % BASELINE_HOMES, i, *clock);
        inflight += MAGNITUDE + 1;
        while inflight > MAX_INFLIGHT {
            inflight -= drain_one(net, clock);
        }
    }
    // Decay: arrivals stop, the backlog drains to empty.
    while drain_one(net, clock) > 0 {}
}

#[test]
fn flash_crowd_burst_respects_allocator_ceilings() {
    let city = metro(&MetroParams {
        homes: 100_000,
        ..MetroParams::default()
    });
    let mut net = FlowNet::new(city.topology.clone());
    let mut clock = SimTime::ZERO;

    // Warm-up episode: grow every buffer to burst-peak capacity.
    episode(&mut net, &city, &mut clock);

    let allocs_before = allocs();
    let stats_before = net.alloc_stats();
    episode(&mut net, &city, &mut clock);
    let allocs_after = allocs();
    let stats = net.alloc_stats();

    assert_eq!(
        allocs_after - allocs_before,
        0,
        "flash-crowd episode performed {} heap allocations after warm-up",
        allocs_after - allocs_before
    );

    // Bounded allocator work even while the crowd piles onto the same
    // few uplinks: links touched per reallocation pass under the E22
    // budget ceiling of 10 (expected ~2).
    let events = stats.reallocations - stats_before.reallocations;
    let touched = stats.links_touched - stats_before.links_touched;
    assert!(events > 3_000, "burst exercised the allocator ({events})");
    let per_event = touched as f64 / events as f64;
    assert!(
        per_event <= 10.0,
        "links touched per flow event {per_event:.2} exceeds ceiling 10"
    );
    assert!(
        stats.heap_pushes > stats_before.heap_pushes,
        "completions were heap-tracked"
    );
}
