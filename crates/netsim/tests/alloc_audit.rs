//! Steady-state allocation audit of the flow-engine tick path.
//!
//! A metro-scale run spends its life in a churn loop: flows complete,
//! replacements start, rates ripple. After warm-up every buffer involved
//! (arena slots, per-link flow lists, the completion heap, the ripple
//! scratch vectors, the drain buffer) must have reached capacity — the
//! loop must run without touching the heap allocator at all. A counting
//! `#[global_allocator]` enforces exactly that.

use hpop_netsim::prelude::*;
use hpop_obs::TraceCtx;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A small CCZ-style tree: `n` homes on 1 Gbps access links into an
/// aggregation node whose oversubscribed 2 Gbps uplink feeds a core node.
/// Every home→core flow contends on the uplink, so churn genuinely
/// ripples rates across flows.
type Star = (
    Topology,
    NodeId,
    Vec<(NodeId, [hpop_netsim::topology::DirLinkId; 2])>,
);

fn star(n: usize) -> Star {
    let mut b = TopologyBuilder::new();
    let agg = b.add_node("agg");
    let core = b.add_node("core");
    let uplink = b.add_link(agg, core, Bandwidth::gbps(2.0), SimDuration::from_millis(1));
    let mut homes = Vec::with_capacity(n);
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let h = b.add_node(format!("home{i}"));
        let l = b.add_link(h, agg, Bandwidth::gbps(1.0), SimDuration::from_millis(1));
        homes.push(h);
        links.push(l);
    }
    let topo = b.build();
    let out = homes
        .iter()
        .zip(&links)
        .map(|(&h, &l)| (h, [l.forward(), uplink.forward()]))
        .collect();
    (topo, core, out)
}

#[test]
fn steady_state_churn_does_not_allocate() {
    let (topo, agg, homes) = star(16);
    let mut net = FlowNet::new(topo);
    let mut clock = SimTime::ZERO;

    // Churn loop body: drain whatever completed, start a replacement on
    // the same home, advance to the next completion.
    let cycle = |net: &mut FlowNet, clock: &mut SimTime, i: usize| {
        let (home, hops) = &homes[i % homes.len()];
        net.start_on_hops(
            *home,
            agg,
            hops,
            1_000_000 + (i as u64 % 7) * 100_000,
            Some(Bandwidth::mbps(200.0 + (i % 5) as f64 * 50.0)),
            *clock,
            TraceCtx::NONE,
        );
        let (t, _) = net.next_completion().expect("flows in flight");
        *clock = t;
        net.advance(t);
        net.drain_completed_with(|_, _, _| {});
    };

    // Warm-up: grow every arena, list, heap and scratch buffer to its
    // steady-state capacity.
    for i in 0..4_096 {
        cycle(&mut net, &mut clock, i);
    }

    let before = allocs();
    for i in 0..4_096 {
        cycle(&mut net, &mut clock, i);
    }
    let after = allocs();

    assert_eq!(
        after - before,
        0,
        "steady-state churn performed {} heap allocations",
        after - before
    );
    let stats = net.alloc_stats();
    assert!(stats.reallocations > 8_000, "churn exercised the allocator");
    assert!(stats.heap_pushes > 8_000, "completions were heap-tracked");
}
