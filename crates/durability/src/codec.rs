//! Minimal little-endian byte codec for WAL records, snapshots and
//! service op encodings.
//!
//! Mirrors the style of `hpop-fabric`'s wire module: explicit field
//! order, no self-description, `Option`-returning reads so torn or
//! rotted input degrades to `None` instead of panicking.

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u128.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an f64 as its IEEE-754 bit pattern (byte-exact across
    /// encode/decode, unlike any decimal round trip).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Writes a u32 length prefix followed by the raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Cursor-based reader over an encoded slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("len 4")))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("len 8")))
    }

    /// Reads a little-endian u128.
    pub fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().expect("len 16")))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a u32-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut w = ByteWriter::new();
        w.u8(7)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 1)
            .u128(u128::MAX / 3)
            .f64(-0.1)
            .bytes(b"payload")
            .str("héllo");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.u128(), Some(u128::MAX / 3));
        assert_eq!(r.f64(), Some(-0.1));
        assert_eq!(r.bytes(), Some(&b"payload"[..]));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_reads_none_not_panic() {
        let mut w = ByteWriter::new();
        w.bytes(b"four");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(r.bytes().is_none(), "cut at {cut} should underflow");
        }
    }
}
