//! Checksummed state snapshots with atomic installation.
//!
//! A snapshot is the full encoded service state as of a committed
//! sequence number. It is written to `snap-<through_seq>.tmp` and then
//! renamed onto `snap-<through_seq>` — the rename is the single atomic
//! commit point, so a crash anywhere during the write leaves at worst
//! an orphan `.tmp` (cleaned up by [`prune`]) and never a half-visible
//! snapshot.
//!
//! File layout: `[magic: u32][crc: u32][through_seq: u64]
//! [len: u32][state bytes]`, CRC-32 over everything after the CRC
//! field. [`load_latest`] tries snapshots newest-first and falls back
//! past any that fail the checksum (bit-rot), counting the fallbacks
//! so recovery can report detected media damage.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use hpop_netsim::storage::{DiskError, SimDisk};

/// `"HPSN"` little-endian.
const MAGIC: u32 = 0x4E53_5048;

/// Installed snapshot name for `through_seq` under `dir`.
fn snap_name(dir: &str, through_seq: u64) -> String {
    format!("{dir}/snap-{through_seq:016x}")
}

/// What [`load_latest`] found.
#[derive(Clone, Debug, Default)]
pub struct SnapshotLoad {
    /// `(through_seq, state bytes)` of the newest valid snapshot.
    pub loaded: Option<(u64, Vec<u8>)>,
    /// Snapshots that failed validation before one loaded (bit-rot
    /// detected and skipped).
    pub fallbacks: u64,
}

/// Writes and atomically installs a snapshot of `state` as of
/// `through_seq`.
pub fn write_snapshot(
    disk: &mut SimDisk,
    dir: &str,
    through_seq: u64,
    state: &[u8],
) -> Result<(), DiskError> {
    let mut body = ByteWriter::new();
    body.u64(through_seq).bytes(state);
    let body = body.into_bytes();
    let mut w = ByteWriter::new();
    w.u32(MAGIC).u32(crc32(&body));
    let mut content = w.into_bytes();
    content.extend_from_slice(&body);

    let name = snap_name(dir, through_seq);
    let tmp = format!("{name}.tmp");
    disk.write_file(&tmp, &content)?;
    disk.rename(&tmp, &name)
}

/// Parses one snapshot file; `None` = damaged (magic or CRC mismatch).
fn parse(content: &[u8]) -> Option<(u64, Vec<u8>)> {
    let mut r = ByteReader::new(content);
    if r.u32()? != MAGIC {
        return None;
    }
    let crc = r.u32()?;
    if crc32(&content[8..]) != crc {
        return None;
    }
    let through_seq = r.u64()?;
    let state = r.bytes()?;
    Some((through_seq, state.to_vec()))
}

/// Loads the newest valid snapshot under `dir`, skipping damaged ones.
pub fn load_latest(disk: &mut SimDisk, dir: &str) -> Result<SnapshotLoad, DiskError> {
    let mut names: Vec<String> = disk
        .list(&format!("{dir}/snap-"))
        .into_iter()
        .filter(|n| !n.ends_with(".tmp"))
        .collect();
    names.sort();
    let mut out = SnapshotLoad::default();
    for name in names.iter().rev() {
        let content = disk.read(name)?;
        match parse(&content) {
            Some(loaded) => {
                out.loaded = Some(loaded);
                return Ok(out);
            }
            None => out.fallbacks += 1,
        }
    }
    Ok(out)
}

/// `through_seq` of every installed snapshot, ascending — compaction
/// uses the smallest as its keep-everything-after boundary.
pub fn installed_throughs(disk: &SimDisk, dir: &str) -> Vec<u64> {
    let prefix = format!("{dir}/snap-");
    let mut out: Vec<u64> = disk
        .list(&prefix)
        .iter()
        .filter(|n| !n.ends_with(".tmp"))
        .filter_map(|n| u64::from_str_radix(n.strip_prefix(&prefix)?, 16).ok())
        .collect();
    out.sort_unstable();
    out
}

/// Deletes orphan `.tmp` files and all but the newest `keep` installed
/// snapshots. Keeping more than one is the bit-rot insurance
/// [`load_latest`] relies on.
pub fn prune(disk: &mut SimDisk, dir: &str, keep: usize) -> Result<(), DiskError> {
    let all = disk.list(&format!("{dir}/snap-"));
    for name in all.iter().filter(|n| n.ends_with(".tmp")) {
        disk.delete(name)?;
    }
    let mut installed: Vec<&String> = all.iter().filter(|n| !n.ends_with(".tmp")).collect();
    installed.sort();
    let n = installed.len();
    for name in installed.into_iter().take(n.saturating_sub(keep)) {
        disk.delete(name)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_load_round_trips() {
        let mut disk = SimDisk::new(1);
        write_snapshot(&mut disk, "d", 42, b"the state").unwrap();
        let got = load_latest(&mut disk, "d").unwrap();
        assert_eq!(got.loaded, Some((42, b"the state".to_vec())));
        assert_eq!(got.fallbacks, 0);
    }

    #[test]
    fn newest_wins_and_rot_falls_back() {
        let mut disk = SimDisk::new(2);
        write_snapshot(&mut disk, "d", 10, b"old").unwrap();
        write_snapshot(&mut disk, "d", 20, b"new").unwrap();
        let got = load_latest(&mut disk, "d").unwrap();
        assert_eq!(got.loaded, Some((20, b"new".to_vec())));
        // Rot the newest: loader falls back to the older one.
        assert!(disk.corrupt("d/snap-0000000000000014", 9, 0));
        let got = load_latest(&mut disk, "d").unwrap();
        assert_eq!(got.loaded, Some((10, b"old".to_vec())));
        assert_eq!(got.fallbacks, 1);
    }

    #[test]
    fn crash_before_rename_leaves_no_snapshot() {
        let mut disk = SimDisk::new(3);
        write_snapshot(&mut disk, "d", 1, b"base").unwrap();
        // The rename is the very last step of write_snapshot; arming
        // the final step of the second snapshot kills exactly it.
        let state = vec![9u8; 600];
        let steps_for_write = 1 + 1 + 1 + 1; // probe run below confirms
        let mut probe = SimDisk::new(3);
        write_snapshot(&mut probe, "d", 1, b"base").unwrap();
        let before = probe.steps();
        write_snapshot(&mut probe, "d", 2, &state).unwrap();
        let rename_step = probe.steps() - 1;
        assert!(probe.steps() - before >= steps_for_write as u64 - 1);

        disk.arm_crash(rename_step);
        assert!(write_snapshot(&mut disk, "d", 2, &state).is_err());
        disk.restart();
        let got = load_latest(&mut disk, "d").unwrap();
        assert_eq!(got.loaded, Some((1, b"base".to_vec())), "tmp not visible");
        // Prune clears the orphan tmp.
        prune(&mut disk, "d", 2).unwrap();
        assert!(disk.list("d/snap-").iter().all(|n| !n.ends_with(".tmp")));
    }

    #[test]
    fn prune_keeps_newest_two() {
        let mut disk = SimDisk::new(4);
        for through in [1u64, 2, 3, 4] {
            write_snapshot(&mut disk, "d", through, b"s").unwrap();
        }
        prune(&mut disk, "d", 2).unwrap();
        let left = disk.list("d/snap-");
        assert_eq!(left.len(), 2);
        assert!(left.iter().any(|n| n.ends_with("3")));
        assert!(left.iter().any(|n| n.ends_with("4")));
    }
}
