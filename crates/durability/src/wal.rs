//! Checksummed write-ahead log over [`SimDisk`].
//!
//! ## Frame format
//!
//! Every record is one frame: `[len: u32][crc: u32][payload: len]`,
//! CRC-32 over the payload. Two payload kinds:
//!
//! - **op** (`kind = 1`): `[1u8][seq: u64][op bytes…]` — a service
//!   operation, durable but *uncommitted* until covered by a marker.
//! - **commit marker** (`kind = 2`): `[2u8][through_seq: u64]` — all
//!   ops with `seq <= through_seq` are committed. The caller is only
//!   acked after the marker's last sector step completes.
//!
//! ## Segments
//!
//! The log is a sequence of files `seg-<idx>` (fixed-width hex, so
//! lexicographic listing is chronological). Rotation happens **only at
//! commit boundaries** — immediately after a marker — which is what
//! makes recovery's truncation rule safe: any segment before the last
//! ends in a marker, so a bad frame in the *last* segment is an
//! ordinary torn tail, while a bad frame *earlier* can only be media
//! rot of committed history (detected and reported, not silently
//! replayed past).
//!
//! ## Recovery
//!
//! [`Wal::recover`] scans segments in order, validating every frame.
//! It stops at the first invalid frame, truncates that segment back to
//! the end of its last commit marker (dropping valid-but-uncommitted
//! op frames too — their sequence numbers will be reused), and deletes
//! any later segments. This is idempotent: a crash during the cleanup
//! steps just means the next recovery redoes them.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use hpop_netsim::storage::{DiskError, SimDisk};

/// Payload kind byte for an op frame.
const KIND_OP: u8 = 1;
/// Payload kind byte for a commit marker.
const KIND_COMMIT: u8 = 2;
/// Sanity cap on a single frame payload (1 GiB).
const MAX_PAYLOAD: u32 = 1 << 30;

/// The append position of a write-ahead log.
#[derive(Clone, Debug)]
pub struct Wal {
    dir: String,
    seg_index: u64,
    seg_bytes: u64,
    max_segment_bytes: u64,
    /// Highest committed op seq per segment — the compaction oracle.
    /// Sequence numbers are monotone across segments, so "every op in
    /// this segment is covered by snapshot S" is just `max <= S`.
    seg_max_seq: std::collections::BTreeMap<u64, u64>,
}

/// What a [`Wal::recover`] scan found.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Committed ops in sequence order: `(seq, op bytes)`.
    pub committed: Vec<(u64, Vec<u8>)>,
    /// Highest committed sequence number (0 = none).
    pub committed_seq: u64,
    /// A torn tail was truncated from the final segment.
    pub torn_tail: bool,
    /// A bad frame before the final segment: committed history was
    /// damaged on the media (rot); everything after it was dropped.
    pub corrupted_history: bool,
    /// Frames dropped by truncation (torn or uncommitted).
    pub frames_dropped: u64,
}

/// Segment file name for index `idx` under `dir`.
fn seg_name(dir: &str, idx: u64) -> String {
    format!("{dir}/seg-{idx:012x}")
}

/// Parses a segment index back out of its file name.
fn seg_index_of(dir: &str, name: &str) -> Option<u64> {
    let hex = name.strip_prefix(&format!("{dir}/seg-"))?;
    u64::from_str_radix(hex, 16).ok()
}

/// Encodes one frame around `payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(payload.len() as u32);
    w.u32(crc32(payload));
    let mut out = w.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// One successfully parsed frame.
enum Frame<'a> {
    Op { seq: u64, op: &'a [u8] },
    Commit { through_seq: u64 },
}

/// Parses the frame at `buf[pos..]`; `None` means torn/rotted/absent.
/// Returns the frame and the offset just past it.
fn parse_frame(buf: &[u8], pos: usize) -> Option<(Frame<'_>, usize)> {
    let mut r = ByteReader::new(&buf[pos..]);
    let len = r.u32()?;
    let crc = r.u32()?;
    if len > MAX_PAYLOAD || buf.len() - pos < 8 + len as usize {
        return None;
    }
    let payload = &buf[pos + 8..pos + 8 + len as usize];
    if crc32(payload) != crc {
        return None;
    }
    let mut p = ByteReader::new(payload);
    let parsed = match p.u8()? {
        KIND_OP => Frame::Op {
            seq: p.u64()?,
            op: &payload[9..],
        },
        KIND_COMMIT => Frame::Commit {
            through_seq: p.u64()?,
        },
        _ => return None,
    };
    Some((parsed, pos + 8 + len as usize))
}

impl Wal {
    /// Appends an op frame for `seq`. Durable when it returns, but not
    /// committed — callers must not ack until [`Wal::commit`].
    pub fn append_op(&mut self, disk: &mut SimDisk, seq: u64, op: &[u8]) -> Result<(), DiskError> {
        let mut w = ByteWriter::new();
        w.u8(KIND_OP).u64(seq);
        let mut payload = w.into_bytes();
        payload.extend_from_slice(op);
        self.append_frame(disk, &payload)?;
        let max = self.seg_max_seq.entry(self.seg_index).or_insert(0);
        *max = (*max).max(seq);
        Ok(())
    }

    /// Appends a commit marker covering every op with
    /// `seq <= through_seq`, then rotates the segment if it is full.
    pub fn commit(&mut self, disk: &mut SimDisk, through_seq: u64) -> Result<(), DiskError> {
        let mut w = ByteWriter::new();
        w.u8(KIND_COMMIT).u64(through_seq);
        self.append_frame(disk, &w.into_bytes())?;
        if self.seg_bytes >= self.max_segment_bytes {
            self.rotate();
        }
        Ok(())
    }

    fn append_frame(&mut self, disk: &mut SimDisk, payload: &[u8]) -> Result<(), DiskError> {
        let bytes = frame(payload);
        disk.append(&seg_name(&self.dir, self.seg_index), &bytes)?;
        self.seg_bytes += bytes.len() as u64;
        Ok(())
    }

    /// Starts a fresh, empty segment. Called after a snapshot so
    /// compaction can drop everything older.
    pub fn rotate(&mut self) {
        self.seg_index += 1;
        self.seg_bytes = 0;
    }

    /// Index of the currently open segment.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// Deletes every closed segment whose ops are all covered by a
    /// snapshot at `boundary_seq` — compaction that preserves replay
    /// back to the *oldest retained* snapshot, so snapshot bit-rot
    /// fallback never finds a WAL gap. Each delete is one atomic step;
    /// a crash mid-way leaves extra (still valid) segments for the
    /// next recovery to skip or a later compaction to re-delete.
    pub fn compact_covered(
        &mut self,
        disk: &mut SimDisk,
        boundary_seq: u64,
    ) -> Result<u64, DiskError> {
        let mut dropped = 0;
        for name in disk.list(&format!("{}/seg-", self.dir)) {
            let Some(idx) = seg_index_of(&self.dir, &name) else {
                continue;
            };
            // A segment with no op frames (markers only) is trivially
            // covered; sequence monotonicity makes `max <= boundary`
            // exactly the "fully covered" test otherwise.
            let covered = self
                .seg_max_seq
                .get(&idx)
                .is_none_or(|&m| m <= boundary_seq);
            if idx < self.seg_index && covered {
                disk.delete(&name)?;
                self.seg_max_seq.remove(&idx);
                dropped += 1;
            }
        }
        Ok(dropped)
    }

    /// Scans (and where needed repairs) the log under `dir`, returning
    /// the committed ops and a [`Wal`] positioned to append after
    /// them. Works on an empty directory (a brand-new log).
    pub fn recover(
        disk: &mut SimDisk,
        dir: &str,
        max_segment_bytes: u64,
    ) -> Result<(Wal, WalRecovery), DiskError> {
        let mut segs: Vec<u64> = disk
            .list(&format!("{dir}/seg-"))
            .iter()
            .filter_map(|n| seg_index_of(dir, n))
            .collect();
        segs.sort_unstable();

        let mut rec = WalRecovery::default();
        let mut pending: Vec<(u64, Vec<u8>, u64)> = Vec::new();
        let mut seg_max_seq = std::collections::BTreeMap::new();
        // Position to resume appending at; fresh log when no segments.
        let mut open_seg = 0u64;
        let mut open_bytes = 0u64;

        for (si, &seg) in segs.iter().enumerate() {
            let name = seg_name(dir, seg);
            let buf = disk.read(&name)?;
            let mut pos = 0usize;
            // Offset just past the last commit marker in this segment.
            let mut committed_end = 0usize;
            let mut bad = false;
            while pos < buf.len() {
                match parse_frame(&buf, pos) {
                    Some((Frame::Op { seq, op }, next)) => {
                        pending.push((seq, op.to_vec(), seg));
                        pos = next;
                    }
                    Some((Frame::Commit { through_seq }, next)) => {
                        let mut keep = Vec::new();
                        for (seq, op, home_seg) in pending.drain(..) {
                            if seq <= through_seq {
                                rec.committed_seq = rec.committed_seq.max(seq);
                                rec.committed.push((seq, op));
                                let max = seg_max_seq.entry(home_seg).or_insert(0);
                                *max = (*max).max(seq);
                            } else {
                                keep.push((seq, op, home_seg));
                            }
                        }
                        pending = keep;
                        pos = next;
                        committed_end = next;
                    }
                    None => {
                        bad = true;
                        break;
                    }
                }
            }
            let last = si + 1 == segs.len();
            if bad && !last {
                rec.corrupted_history = true;
            }
            if bad && last {
                rec.torn_tail = true;
            }
            if bad || (last && committed_end < buf.len()) {
                // Drop the tail: torn frames plus any valid op frames
                // never covered by a marker (their seqs get reused).
                rec.frames_dropped += pending.drain(..).len() as u64 + u64::from(bad);
                disk.truncate(&name, committed_end)?;
                open_seg = seg;
                open_bytes = committed_end as u64;
                if bad {
                    // Anything after the damage is untrustworthy to
                    // order; delete it (committed ops already gathered
                    // from earlier segments survive).
                    for &later in &segs[si + 1..] {
                        disk.delete(&seg_name(dir, later))?;
                        seg_max_seq.remove(&later);
                    }
                    break;
                }
            } else if last {
                open_seg = seg;
                open_bytes = buf.len() as u64;
            }
        }
        rec.committed.sort_by_key(|(seq, _)| *seq);

        let wal = Wal {
            dir: dir.to_string(),
            seg_index: open_seg,
            seg_bytes: open_bytes,
            max_segment_bytes: max_segment_bytes.max(1),
            seg_max_seq,
        };
        Ok((wal, rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(disk: &mut SimDisk, max: u64) -> Wal {
        let (wal, rec) = Wal::recover(disk, "wal", max).unwrap();
        assert_eq!(rec.committed_seq, 0);
        wal
    }

    #[test]
    fn append_commit_recover_round_trip() {
        let mut disk = SimDisk::new(1);
        let mut wal = fresh(&mut disk, 1 << 20);
        for seq in 1..=5u64 {
            wal.append_op(&mut disk, seq, format!("op{seq}").as_bytes())
                .unwrap();
            wal.commit(&mut disk, seq).unwrap();
        }
        let (_, rec) = Wal::recover(&mut disk, "wal", 1 << 20).unwrap();
        assert_eq!(rec.committed_seq, 5);
        assert!(!rec.torn_tail && !rec.corrupted_history);
        let ops: Vec<String> = rec
            .committed
            .iter()
            .map(|(_, op)| String::from_utf8(op.clone()).unwrap())
            .collect();
        assert_eq!(ops, vec!["op1", "op2", "op3", "op4", "op5"]);
    }

    #[test]
    fn uncommitted_op_is_dropped_on_recovery() {
        let mut disk = SimDisk::new(2);
        let mut wal = fresh(&mut disk, 1 << 20);
        wal.append_op(&mut disk, 1, b"committed").unwrap();
        wal.commit(&mut disk, 1).unwrap();
        wal.append_op(&mut disk, 2, b"never marked").unwrap();
        let (_, rec) = Wal::recover(&mut disk, "wal", 1 << 20).unwrap();
        assert_eq!(rec.committed_seq, 1);
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.frames_dropped, 1);
    }

    #[test]
    fn torn_tail_truncates_to_committed_prefix() {
        let mut disk = SimDisk::new(3);
        let mut wal = fresh(&mut disk, 1 << 20);
        wal.append_op(&mut disk, 1, &[7u8; 100]).unwrap();
        wal.commit(&mut disk, 1).unwrap();
        // Crash mid-append of op 2 → torn frame on disk.
        disk.arm_crash(disk.steps());
        assert!(wal.append_op(&mut disk, 2, &[8u8; 100]).is_err());
        disk.restart();
        let (wal2, rec) = Wal::recover(&mut disk, "wal", 1 << 20).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.committed_seq, 1);
        // And the log is reusable after repair.
        let mut wal2 = wal2;
        wal2.append_op(&mut disk, 2, b"retry").unwrap();
        wal2.commit(&mut disk, 2).unwrap();
        let (_, rec2) = Wal::recover(&mut disk, "wal", 1 << 20).unwrap();
        assert_eq!(rec2.committed_seq, 2);
        assert!(!rec2.torn_tail);
    }

    #[test]
    fn rotation_spreads_ops_across_segments() {
        let mut disk = SimDisk::new(4);
        let mut wal = fresh(&mut disk, 64); // tiny segments
        for seq in 1..=20u64 {
            wal.append_op(&mut disk, seq, &[seq as u8; 40]).unwrap();
            wal.commit(&mut disk, seq).unwrap();
        }
        assert!(wal.segment_index() > 3, "rotation must have happened");
        let (_, rec) = Wal::recover(&mut disk, "wal", 64).unwrap();
        assert_eq!(rec.committed_seq, 20);
        assert_eq!(rec.committed.len(), 20);
    }

    #[test]
    fn rot_in_old_segment_is_detected_as_corrupted_history() {
        let mut disk = SimDisk::new(5);
        let mut wal = fresh(&mut disk, 64);
        for seq in 1..=10u64 {
            wal.append_op(&mut disk, seq, &[seq as u8; 40]).unwrap();
            wal.commit(&mut disk, seq).unwrap();
        }
        // Flip a bit in the first (long-since-committed) segment.
        let first = disk.list("wal/seg-").first().cloned().unwrap();
        assert!(disk.corrupt(&first, 12, 1));
        let (_, rec) = Wal::recover(&mut disk, "wal", 64).unwrap();
        assert!(rec.corrupted_history);
        assert!(rec.committed_seq < 10, "ops after the rot are not trusted");
        // Recovery repaired the log: a second scan is clean.
        let (_, rec2) = Wal::recover(&mut disk, "wal", 64).unwrap();
        assert!(!rec2.corrupted_history);
        assert_eq!(rec2.committed_seq, rec.committed_seq);
    }

    #[test]
    fn crash_during_recovery_truncate_is_idempotent() {
        let mut disk = SimDisk::new(11);
        let mut wal = fresh(&mut disk, 1 << 20);
        wal.append_op(&mut disk, 1, b"a").unwrap();
        wal.commit(&mut disk, 1).unwrap();
        disk.arm_crash(disk.steps()); // torn tail for op 2
        assert!(wal.append_op(&mut disk, 2, &[9u8; 600]).is_err());
        disk.restart();
        // Recovery reads are step-free, so the very next step is its
        // own truncate — kill the power exactly there.
        disk.arm_crash(disk.steps());
        assert!(Wal::recover(&mut disk, "wal", 1 << 20).is_err());
        disk.restart();
        let (_, rec) = Wal::recover(&mut disk, "wal", 1 << 20).unwrap();
        assert!(rec.torn_tail, "the tail is still torn until repaired");
        assert_eq!(rec.committed_seq, 1);
        // Third scan sees a clean log.
        let (_, rec2) = Wal::recover(&mut disk, "wal", 1 << 20).unwrap();
        assert!(!rec2.torn_tail);
        assert_eq!(rec2.committed_seq, 1);
    }

    #[test]
    fn compaction_drops_only_older_segments() {
        let mut disk = SimDisk::new(6);
        let mut wal = fresh(&mut disk, 64);
        for seq in 1..=10u64 {
            wal.append_op(&mut disk, seq, &[seq as u8; 40]).unwrap();
            wal.commit(&mut disk, seq).unwrap();
        }
        wal.rotate();
        wal.append_op(&mut disk, 11, b"live").unwrap();
        wal.commit(&mut disk, 11).unwrap();
        // Boundary 10: every closed segment is covered, the live one
        // is not (and is the open segment anyway).
        let dropped = wal.compact_covered(&mut disk, 10).unwrap();
        assert!(dropped > 0);
        let (_, rec) = Wal::recover(&mut disk, "wal", 64).unwrap();
        assert_eq!(rec.committed.len(), 1, "only the live segment remains");
        assert_eq!(rec.committed_seq, 11);
    }

    #[test]
    fn compaction_respects_the_fallback_boundary() {
        let mut disk = SimDisk::new(7);
        let mut wal = fresh(&mut disk, 64);
        for seq in 1..=10u64 {
            wal.append_op(&mut disk, seq, &[seq as u8; 40]).unwrap();
            wal.commit(&mut disk, seq).unwrap();
        }
        wal.rotate();
        // Pretend the oldest retained snapshot is at seq 4: segments
        // holding ops > 4 must survive so a fallback can replay them.
        wal.compact_covered(&mut disk, 4).unwrap();
        let (_, rec) = Wal::recover(&mut disk, "wal", 64).unwrap();
        let seqs: Vec<u64> = rec.committed.iter().map(|(s, _)| *s).collect();
        for needed in 5..=10u64 {
            assert!(
                seqs.contains(&needed),
                "op {needed} must survive compaction"
            );
        }
        assert_eq!(rec.committed_seq, 10);
    }
}
