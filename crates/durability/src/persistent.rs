//! [`Durable`] — the contract a service implements — and
//! [`Persistent<T>`] — the WAL + snapshot machine that runs it.
//!
//! ## The committed-prefix invariant
//!
//! [`Persistent::execute`] appends the op frame, appends the commit
//! marker, and only then applies the op to the in-memory state and
//! returns `Ok` (the *ack*). Power can fail at any I/O step, which
//! yields exactly three observable classes after recovery:
//!
//! - **acked** ops (execute returned `Ok`) — always recovered;
//! - at most one **committed-but-unacked** op (power failed after the
//!   marker was durable but during post-commit snapshot I/O) —
//!   recovered, and the caller's retry must be idempotent at the
//!   service layer (e.g. NoCDN settlement replay rejection);
//! - **unacked** ops — cleanly absent, never half-applied.
//!
//! The exhaustive proof lives in [`crate::harness`], which enumerates
//! every I/O step of a workload, crashes there, recovers, and checks
//! all three classes plus byte-identical replay.

use crate::snapshot;
use crate::wal::Wal;
use hpop_netsim::storage::{DiskError, SimDisk};

/// State that can live behind a WAL: replayable ops plus whole-state
/// snapshot encode/decode.
///
/// `apply` must be deterministic — replaying the same committed ops
/// onto `fresh()` must reproduce the same `encode_state()` bytes, and
/// `decode_state(encode_state())` must round-trip. Those two laws are
/// what the crash harness asserts.
pub trait Durable: Sized {
    /// The state before any op was ever applied.
    fn fresh() -> Self;
    /// Full state serialization for snapshots (deterministic).
    fn encode_state(&self) -> Vec<u8>;
    /// Rebuilds state from [`Durable::encode_state`] bytes; `None` on
    /// damage (the caller falls back to an older snapshot or replay).
    fn decode_state(bytes: &[u8]) -> Option<Self>;
    /// Applies one committed op. Must be deterministic; malformed op
    /// bytes (impossible for CRC-verified committed frames) may be
    /// ignored.
    fn apply(&mut self, op: &[u8]);
}

/// Tuning for one persistent store.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Rotate the WAL segment at the first commit past this size.
    pub max_segment_bytes: u64,
    /// Snapshot + compact every this many committed ops (0 = never).
    pub snapshot_every_ops: u64,
    /// Installed snapshots to retain (bit-rot fallback depth).
    pub keep_snapshots: usize,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            max_segment_bytes: 64 * 1024,
            snapshot_every_ops: 1024,
            keep_snapshots: 2,
        }
    }
}

/// What [`Persistent::open`] did to get the state back.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// `through_seq` of the snapshot the state started from (0 =
    /// recovered purely by replay).
    pub snapshot_through: u64,
    /// Damaged snapshots skipped before one validated.
    pub snapshot_fallbacks: u64,
    /// Committed WAL ops replayed on top of the snapshot.
    pub ops_replayed: u64,
    /// Bytes read off the device during recovery.
    pub bytes_read: u64,
    /// A torn WAL tail was truncated (normal after power loss
    /// mid-append).
    pub torn_tail: bool,
    /// Committed history was damaged on the media (rot inside an old
    /// segment); state is the longest trustworthy prefix.
    pub corrupted_history: bool,
}

/// A service state of type `T` made crash-consistent by a write-ahead
/// log and periodic snapshots on a [`SimDisk`].
#[derive(Clone, Debug)]
pub struct Persistent<T> {
    state: T,
    disk: SimDisk,
    dir: String,
    wal: Wal,
    cfg: DurabilityConfig,
    committed_seq: u64,
    ops_since_snapshot: u64,
    recovery: RecoveryReport,
}

impl<T: Durable> Persistent<T> {
    /// Opens (recovers or freshly initializes) the store under `dir`.
    ///
    /// Recovery: newest valid snapshot (falling back past rot), then
    /// replay of every committed WAL op above its `through_seq`. The
    /// scan also repairs torn tails, so a crash *during* recovery is
    /// itself recoverable — open is idempotent.
    pub fn open(mut disk: SimDisk, dir: &str, cfg: DurabilityConfig) -> Result<Self, DiskError> {
        let read0 = disk.stats().bytes_read;
        let snap = snapshot::load_latest(&mut disk, dir)?;
        let mut report = RecoveryReport {
            snapshot_fallbacks: snap.fallbacks,
            ..RecoveryReport::default()
        };
        let mut state = match &snap.loaded {
            Some((through, bytes)) => {
                report.snapshot_through = *through;
                match T::decode_state(bytes) {
                    Some(state) => state,
                    None => {
                        // Validated by CRC yet undecodable — treat as
                        // damage and fall back to pure replay.
                        report.snapshot_fallbacks += 1;
                        report.snapshot_through = 0;
                        T::fresh()
                    }
                }
            }
            None => T::fresh(),
        };

        let (wal, wal_rec) = Wal::recover(&mut disk, &format!("{dir}/wal"), cfg.max_segment_bytes)?;
        for (seq, op) in &wal_rec.committed {
            if *seq > report.snapshot_through {
                state.apply(op);
                report.ops_replayed += 1;
            }
        }
        report.torn_tail = wal_rec.torn_tail;
        report.corrupted_history = wal_rec.corrupted_history;
        report.bytes_read = disk.stats().bytes_read - read0;

        let metrics = hpop_obs::metrics();
        metrics.counter("durability.recovery.count").add(1);
        metrics
            .counter("durability.recovery.ops_replayed")
            .add(report.ops_replayed);
        metrics
            .counter("durability.recovery.snapshot_fallbacks")
            .add(report.snapshot_fallbacks);
        if report.torn_tail {
            metrics.counter("durability.recovery.torn_tails").add(1);
        }

        Ok(Persistent {
            committed_seq: report.snapshot_through.max(wal_rec.committed_seq),
            state,
            disk,
            dir: dir.to_string(),
            wal,
            cfg,
            ops_since_snapshot: 0,
            recovery: report,
        })
    }

    /// Durably executes one op: WAL append, commit marker, in-memory
    /// apply, then (maybe) snapshot + compaction. `Ok` is the ack —
    /// the op survives any later crash. On `Err` the op is at worst
    /// committed-but-unacked (see the module docs); the caller's retry
    /// path must tolerate that.
    pub fn execute(&mut self, op: &[u8]) -> Result<(), DiskError> {
        let seq = self.committed_seq + 1;
        self.wal.append_op(&mut self.disk, seq, op)?;
        self.wal.commit(&mut self.disk, seq)?;
        self.committed_seq = seq;
        self.state.apply(op);
        self.ops_since_snapshot += 1;
        hpop_obs::metrics()
            .counter("durability.ops.committed")
            .add(1);
        if self.cfg.snapshot_every_ops > 0 && self.ops_since_snapshot >= self.cfg.snapshot_every_ops
        {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// Snapshots the current state and compacts the WAL behind it.
    /// Crash-safe at every step: the snapshot installs atomically, the
    /// rotation is pure bookkeeping, and leftover old segments or tmp
    /// files are cleaned up by the next recovery/prune. Compaction
    /// only drops segments fully covered by the *oldest retained*
    /// snapshot, so bit-rot fallback to an older snapshot always finds
    /// the WAL ops it needs to catch back up.
    pub fn snapshot_now(&mut self) -> Result<(), DiskError> {
        let bytes = self.state.encode_state();
        snapshot::write_snapshot(&mut self.disk, &self.dir, self.committed_seq, &bytes)?;
        snapshot::prune(&mut self.disk, &self.dir, self.cfg.keep_snapshots.max(1))?;
        let boundary = snapshot::installed_throughs(&self.disk, &self.dir)
            .first()
            .copied()
            .unwrap_or(0);
        self.wal.rotate();
        self.wal.compact_covered(&mut self.disk, boundary)?;
        self.ops_since_snapshot = 0;
        hpop_obs::metrics()
            .counter("durability.snapshot.written")
            .add(1);
        Ok(())
    }

    /// The recovered/live state (reads only — all mutation goes
    /// through [`Persistent::execute`]).
    pub fn state(&self) -> &T {
        &self.state
    }

    /// Highest committed sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.committed_seq
    }

    /// How the last [`Persistent::open`] recovered.
    pub fn last_recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The underlying device (stats, crash arming).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Mutable device access — the crash harness arms power loss here.
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Tears down the in-memory half (the "process") and returns the
    /// platters, ready for [`SimDisk::restart`] + [`Persistent::open`].
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }
}
