//! # hpop-durability — crash-consistent state for home appliances
//!
//! PR 4 taught the simulator to kill peers and restart them "with
//! amnesia"; this crate removes the amnesia. Services route their
//! authoritative state through a checksummed write-ahead log with
//! atomic commit markers, periodic snapshots and compaction, all on
//! the deterministic [`SimDisk`](hpop_netsim::storage::SimDisk) block
//! device — so a power loss between (or inside) any two I/O steps
//! recovers to exactly the committed prefix of operations.
//!
//! - [`crc32`] — frame and snapshot checksums (IEEE, table-driven).
//! - [`codec`] — little-endian byte codec shared by the WAL framing
//!   and the services' op encodings.
//! - [`wal`] — length+CRC-framed records, commit markers, segment
//!   rotation at commit boundaries, torn-tail repair.
//! - [`snapshot`] — whole-state snapshots installed by atomic rename,
//!   newest-valid-wins loading with bit-rot fallback.
//! - [`persistent`] — the [`Durable`] trait
//!   (`encode_state`/`decode_state`/`apply`) and [`Persistent<T>`],
//!   the WAL+snapshot machine with the committed-prefix ack contract.
//! - [`harness`] — [`crash_matrix`]: enumerate every I/O step of a
//!   workload, crash there, recover, assert the invariant. Adopters
//!   (attic store+locks, NoCDN accounting, fabric incarnations and
//!   reputation, coop-cache index) run their own op encodings through
//!   it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod harness;
pub mod persistent;
pub mod snapshot;
pub mod wal;

pub use harness::{crash_matrix, CrashMatrixOutcome};
pub use persistent::{DurabilityConfig, Durable, Persistent, RecoveryReport};

#[cfg(test)]
mod tests {
    use super::codec::{ByteReader, ByteWriter};
    use super::*;
    use hpop_netsim::storage::SimDisk;
    use std::collections::BTreeMap;

    /// Toy adopter: a map of registers with append-add semantics.
    #[derive(Debug, Default)]
    struct Registers {
        slots: BTreeMap<u64, u64>,
    }

    impl Registers {
        fn op(key: u64, add: u64) -> Vec<u8> {
            let mut w = ByteWriter::new();
            w.u64(key).u64(add);
            w.into_bytes()
        }
    }

    impl Durable for Registers {
        fn fresh() -> Registers {
            Registers::default()
        }
        fn encode_state(&self) -> Vec<u8> {
            let mut w = ByteWriter::new();
            w.u64(self.slots.len() as u64);
            for (k, v) in &self.slots {
                w.u64(*k).u64(*v);
            }
            w.into_bytes()
        }
        fn decode_state(bytes: &[u8]) -> Option<Registers> {
            let mut r = ByteReader::new(bytes);
            let n = r.u64()?;
            let mut slots = BTreeMap::new();
            for _ in 0..n {
                slots.insert(r.u64()?, r.u64()?);
            }
            Some(Registers { slots })
        }
        fn apply(&mut self, op: &[u8]) {
            let mut r = ByteReader::new(op);
            if let (Some(k), Some(add)) = (r.u64(), r.u64()) {
                *self.slots.entry(k).or_insert(0) += add;
            }
        }
    }

    fn workload(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| Registers::op(i % 7, i + 1)).collect()
    }

    #[test]
    fn open_execute_reopen_round_trips() {
        let cfg = DurabilityConfig::default();
        let mut p = Persistent::<Registers>::open(SimDisk::new(1), "svc", cfg).unwrap();
        for op in workload(10) {
            p.execute(&op).unwrap();
        }
        let bytes = p.state().encode_state();
        let disk = p.into_disk();
        let p2 = Persistent::<Registers>::open(disk, "svc", cfg).unwrap();
        assert_eq!(p2.state().encode_state(), bytes);
        assert_eq!(p2.committed_seq(), 10);
        assert_eq!(p2.last_recovery().ops_replayed, 10);
    }

    #[test]
    fn snapshot_bounds_replay_length() {
        let cfg = DurabilityConfig {
            snapshot_every_ops: 8,
            ..DurabilityConfig::default()
        };
        let mut p = Persistent::<Registers>::open(SimDisk::new(2), "svc", cfg).unwrap();
        for op in workload(50) {
            p.execute(&op).unwrap();
        }
        let p2 = Persistent::<Registers>::open(p.into_disk(), "svc", cfg).unwrap();
        assert!(p2.last_recovery().snapshot_through >= 48);
        assert!(p2.last_recovery().ops_replayed <= 8);
        assert_eq!(p2.committed_seq(), 50);
    }

    #[test]
    fn rotted_snapshot_falls_back_and_still_recovers() {
        let cfg = DurabilityConfig {
            snapshot_every_ops: 10,
            keep_snapshots: 2,
            ..DurabilityConfig::default()
        };
        let mut p = Persistent::<Registers>::open(SimDisk::new(3), "svc", cfg).unwrap();
        let ops = workload(25);
        for op in &ops {
            p.execute(op).unwrap();
        }
        let reference = p.state().encode_state();
        let mut disk = p.into_disk();
        let newest = disk
            .list("svc/snap-")
            .into_iter()
            .rfind(|n| !n.ends_with(".tmp"))
            .expect("a snapshot exists");
        assert!(disk.corrupt(&newest, 20, 2));
        let p2 = Persistent::<Registers>::open(disk, "svc", cfg).unwrap();
        assert_eq!(p2.last_recovery().snapshot_fallbacks, 1);
        assert_eq!(
            p2.state().encode_state(),
            reference,
            "older snapshot + longer replay must reach the same state"
        );
    }

    /// The tentpole acceptance test: every I/O step of a workload that
    /// crosses segment rotations AND snapshot+compaction cycles is a
    /// survivable crash point.
    #[test]
    fn crash_matrix_over_rotation_and_snapshots() {
        let cfg = DurabilityConfig {
            max_segment_bytes: 256,
            snapshot_every_ops: 6,
            keep_snapshots: 2,
        };
        let outcome = crash_matrix::<Registers>(0xcafe, cfg, &workload(20));
        assert!(outcome.baseline_steps > 40, "must enumerate a real matrix");
        assert!(outcome.torn_tails > 0, "some points must tear the tail");
        assert!(
            outcome.committed_unacked > 0,
            "snapshot I/O after the marker must yield committed-unacked points"
        );
    }

    #[test]
    fn crash_matrix_without_snapshots_replays_everything() {
        let cfg = DurabilityConfig {
            max_segment_bytes: 512,
            snapshot_every_ops: 0,
            keep_snapshots: 2,
        };
        let outcome = crash_matrix::<Registers>(0xbeef, cfg, &workload(12));
        assert!(outcome.max_ops_replayed >= 11);
        assert_eq!(outcome.snapshot_fallbacks, 0);
    }

    #[test]
    fn reopen_after_torn_tail_lands_on_committed_prefix() {
        let cfg = DurabilityConfig::default();
        let mut p = Persistent::<Registers>::open(SimDisk::new(9), "svc", cfg).unwrap();
        for op in workload(5) {
            p.execute(&op).unwrap();
        }
        let mut disk = p.into_disk();
        disk.arm_crash(disk.steps()); // mid-append of the next op
        let mut p = Persistent::<Registers>::open(disk, "svc", cfg).unwrap();
        assert!(p.execute(&Registers::op(9, 9)).is_err());
        let mut disk = p.into_disk();
        disk.restart();
        let p2 = Persistent::<Registers>::open(disk, "svc", cfg).unwrap();
        assert_eq!(p2.committed_seq(), 5);
        let mut reference = Registers::fresh();
        for op in workload(5) {
            reference.apply(&op);
        }
        assert_eq!(p2.state().encode_state(), reference.encode_state());
    }
}
