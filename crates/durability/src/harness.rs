//! The exhaustive crash-point matrix.
//!
//! [`crash_matrix`] is the crate's correctness proof and the reusable
//! fixture every adopter runs its own op encoding through. Given a
//! workload of ops and a [`DurabilityConfig`]:
//!
//! 1. **Baseline** — run the workload on a fresh disk with no faults;
//!    record the total I/O step count `N` and the final state bytes.
//! 2. **Enumerate** — for every step `k in 0..N`, re-run on a fresh
//!    identically-seeded disk with power loss armed at step `k`. The
//!    run dies mid-workload; restart the disk and recover.
//! 3. **Assert** the committed-prefix invariant at each `k`:
//!    - every acked op is recovered (`acked <= committed`),
//!    - at most the one in-flight op is committed-but-unacked
//!      (`committed <= acked + 1`),
//!    - the recovered state is byte-identical to replaying exactly the
//!      first `committed` ops onto a fresh state — no torn state, no
//!      partial application;
//!    - finishing the remaining ops after recovery lands on the exact
//!      baseline final state bytes.
//!
//! Because `N` covers every sector write, rename, delete and truncate
//! issued by WAL appends, commit markers, segment rotation, snapshot
//! writes and compaction, passing the matrix means there is no
//! power-loss instant that breaks recovery.

use crate::persistent::{DurabilityConfig, Durable, Persistent};
use hpop_netsim::storage::{DiskError, SimDisk, StorageFaults};

/// Aggregate of one full matrix run (all crash points passed).
#[derive(Clone, Debug, Default)]
pub struct CrashMatrixOutcome {
    /// I/O steps in the fault-free baseline = crash points enumerated.
    pub baseline_steps: u64,
    /// Crash points whose recovery saw (and repaired) a torn tail.
    pub torn_tails: u64,
    /// Crash points where the in-flight op was committed but unacked.
    pub committed_unacked: u64,
    /// Largest replay length any recovery needed.
    pub max_ops_replayed: u64,
    /// Snapshot-CRC fallbacks observed (0 unless bit-rot is armed).
    pub snapshot_fallbacks: u64,
}

/// Replays `ops[..count]` onto a fresh state and returns its encoding
/// — the reference result recovery must match byte-for-byte.
fn reference_state<T: Durable>(ops: &[Vec<u8>], count: usize) -> Vec<u8> {
    let mut state = T::fresh();
    for op in &ops[..count] {
        state.apply(op);
    }
    state.encode_state()
}

/// Runs the full crash-point matrix for state type `T` over `ops`.
///
/// Panics (with the offending crash point in the message) on any
/// invariant violation — this is a test fixture, not a prober.
pub fn crash_matrix<T: Durable>(
    seed: u64,
    cfg: DurabilityConfig,
    ops: &[Vec<u8>],
) -> CrashMatrixOutcome {
    let faults = StorageFaults {
        torn_write_fraction: 1.0,
        bitrot_flips_per_restart: 0.0,
    };

    // 1. Fault-free baseline.
    let mut p = Persistent::<T>::open(SimDisk::with_faults(seed, faults), "svc", cfg)
        .expect("baseline open cannot fail on a fresh disk");
    for (i, op) in ops.iter().enumerate() {
        p.execute(op)
            .unwrap_or_else(|e| panic!("baseline execute #{i} failed: {e}"));
    }
    let baseline_final = p.state().encode_state();
    let baseline_steps = p.disk().steps();
    assert_eq!(
        baseline_final,
        reference_state::<T>(ops, ops.len()),
        "baseline must equal pure replay (apply determinism law)"
    );

    let mut outcome = CrashMatrixOutcome {
        baseline_steps,
        ..CrashMatrixOutcome::default()
    };

    // 2–3. Crash at every step, recover, assert, finish.
    for k in 0..baseline_steps {
        let mut p = Persistent::<T>::open(SimDisk::with_faults(seed, faults), "svc", cfg)
            .expect("fresh open");
        p.disk_mut().arm_crash(k);
        let mut acked = 0u64;
        let mut crashed = false;
        for op in ops {
            match p.execute(op) {
                Ok(()) => acked += 1,
                Err(DiskError::PowerLoss) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("crash point {k}: unexpected error {e}"),
            }
        }
        assert!(crashed, "crash point {k} < {baseline_steps} must fire");

        let mut disk = p.into_disk();
        disk.restart();
        let p2 = Persistent::<T>::open(disk, "svc", cfg)
            .unwrap_or_else(|e| panic!("crash point {k}: recovery open failed: {e}"));
        let committed = p2.committed_seq();
        assert!(
            committed >= acked,
            "crash point {k}: lost acked ops ({acked} acked, {committed} recovered)"
        );
        assert!(
            committed <= acked + 1,
            "crash point {k}: over-recovered ({acked} acked, {committed} committed)"
        );
        assert_eq!(
            p2.state().encode_state(),
            reference_state::<T>(ops, committed as usize),
            "crash point {k}: recovered state is not the committed prefix"
        );

        let report = p2.last_recovery();
        outcome.torn_tails += u64::from(report.torn_tail);
        outcome.committed_unacked += u64::from(committed == acked + 1);
        outcome.max_ops_replayed = outcome.max_ops_replayed.max(report.ops_replayed);
        outcome.snapshot_fallbacks += report.snapshot_fallbacks;
        assert!(
            !report.corrupted_history,
            "crash point {k}: power loss alone must never read as history rot"
        );

        // Finish the workload on the recovered store: the end state
        // must be indistinguishable from the never-crashed run.
        let mut p2 = p2;
        for op in &ops[committed as usize..] {
            p2.execute(op)
                .unwrap_or_else(|e| panic!("crash point {k}: post-recovery execute: {e}"));
        }
        assert_eq!(
            p2.state().encode_state(),
            baseline_final,
            "crash point {k}: resumed run diverged from baseline"
        );
    }
    outcome
}
