//! The attic's WebDAV-semantics HTTP server.
//!
//! The paper's prototype "implements a data attic as a WebDAV server"
//! reachable over HTTP(S) for "decoupled communication between the
//! external applications and the attic and ease of firewall traversal"
//! (§IV-A). [`AtticServer`] dispatches the WebDAV verb set over the
//! versioned store and lock table, enforcing capability grants on
//! external requests.

use crate::lock::{LockDepth, LockError, LockManager, LockScope, LockToken};
use crate::store::{ObjectStore, StoreError};
use hpop_core::auth::{CapabilityToken, TokenVerifier};
use hpop_core::events::{Event, EventBus};
use hpop_http::message::{Method, Request, Response, StatusCode};
use hpop_netsim::time::{SimDuration, SimTime};

/// The data attic server: store + locks + access control.
///
/// ```
/// use hpop_attic::server::AtticServer;
/// use hpop_core::auth::TokenVerifier;
/// use hpop_http::message::Request;
/// use hpop_http::url::Url;
/// use hpop_netsim::time::SimTime;
///
/// let mut attic = AtticServer::new(TokenVerifier::new([7u8; 32]));
/// let put = Request::put(Url::https("attic.home", "/note.txt"), &b"hi"[..]);
/// let resp = attic.handle_local(&put, SimTime::ZERO);
/// assert!(resp.status.is_success());
/// ```
pub struct AtticServer {
    store: ObjectStore,
    locks: LockManager,
    verifier: TokenVerifier,
    bus: Option<EventBus>,
}

impl std::fmt::Debug for AtticServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtticServer")
            .field("files", &self.store.files_under("/").len())
            .finish()
    }
}

fn store_error_response(e: StoreError) -> Response {
    let status = match e {
        StoreError::NotFound => StatusCode::NOT_FOUND,
        StoreError::MissingParent | StoreError::Conflict => StatusCode::CONFLICT,
        StoreError::BadPath => StatusCode::BAD_REQUEST,
        StoreError::DestinationExists => StatusCode::PRECONDITION_FAILED,
    };
    Response::new(status)
}

fn parse_lock_token(header: Option<&str>) -> Option<LockToken> {
    header.and_then(LockToken::parse)
}

impl AtticServer {
    /// Creates an attic bound to the appliance's token verifier.
    pub fn new(verifier: TokenVerifier) -> AtticServer {
        AtticServer {
            store: ObjectStore::new(),
            locks: LockManager::new(),
            verifier,
            bus: None,
        }
    }

    /// Attaches the appliance event bus; writes publish `attic.write`.
    pub fn with_bus(mut self, bus: EventBus) -> AtticServer {
        self.bus = Some(bus);
        self
    }

    /// Direct store access for in-home (trusted) tooling and tests.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable direct store access (trusted local tooling).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Handles a request from inside the home (trusted; no grant needed).
    pub fn handle_local(&mut self, req: &Request, now: SimTime) -> Response {
        self.dispatch(req, now)
    }

    /// Handles a request from an external application: the request must
    /// carry `Authorization: Capability <wire>` with a valid, unexpired
    /// token whose scope covers the path and whose permission matches
    /// the method.
    pub fn handle_external(&mut self, req: &Request, now: SimTime) -> Response {
        let Some(auth) = req.headers.get("authorization") else {
            return Response::new(StatusCode::UNAUTHORIZED);
        };
        let Some(wire) = auth.strip_prefix("Capability ") else {
            return Response::new(StatusCode::UNAUTHORIZED);
        };
        let Some(token) = CapabilityToken::decode(wire) else {
            return Response::new(StatusCode::UNAUTHORIZED);
        };
        if !self.verifier.verify(&token, now) {
            return Response::new(StatusCode::UNAUTHORIZED);
        }
        let path = req.url.path();
        if !token.covers(path) {
            return Response::new(StatusCode::FORBIDDEN);
        }
        let needs_write = !req.method.is_safe();
        let allowed = if needs_write {
            token.permission.allows_write()
        } else {
            token.permission.allows_read()
        };
        if !allowed {
            return Response::new(StatusCode::FORBIDDEN);
        }
        self.dispatch(req, now)
    }

    fn dispatch(&mut self, req: &Request, now: SimTime) -> Response {
        let path = req.url.path().to_owned();
        match req.method {
            Method::Get | Method::Head => self.get(&path, req),
            Method::Put => self.put(&path, req, now),
            Method::Delete => self.delete(&path, req, now),
            Method::MkCol => match self.store.mkcol(&path) {
                Ok(()) => Response::new(StatusCode::CREATED),
                Err(e) => store_error_response(e),
            },
            Method::PropFind => self.propfind(&path, req),
            Method::Copy | Method::Move => self.copy_move(&path, req, now),
            Method::Lock => self.lock(&path, req, now),
            Method::Unlock => self.unlock(&path, req, now),
            Method::Options => Response::new(StatusCode::OK)
                .with_header("dav", "1, 2")
                .with_header(
                    "allow",
                    "GET, PUT, DELETE, MKCOL, PROPFIND, COPY, MOVE, LOCK, UNLOCK",
                ),
            _ => Response::new(StatusCode::METHOD_NOT_ALLOWED),
        }
    }

    fn get(&mut self, path: &str, req: &Request) -> Response {
        match self.store.get(path) {
            Ok(v) => {
                if req.headers.get("if-none-match") == Some(v.etag.as_str()) {
                    return Response::new(StatusCode::NOT_MODIFIED)
                        .with_header("etag", v.etag.clone());
                }
                let mut resp = Response::ok(v.body.clone()).with_header("etag", v.etag.clone());
                if req.method == Method::Head {
                    resp.body = bytes::Bytes::new();
                }
                resp
            }
            Err(e) => store_error_response(e),
        }
    }

    fn put(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let token = parse_lock_token(req.headers.get("lock-token"));
        if let Err(LockError::Locked { holder }) = self.locks.check_write(path, token, now) {
            return Response::new(StatusCode::LOCKED).with_header("x-lock-holder", holder);
        }
        // Conditional write: If-Match guards against lost updates.
        if let Some(expected) = req.headers.get("if-match") {
            match self.store.get(path) {
                Ok(v) if v.etag == expected => {}
                _ => return Response::new(StatusCode::PRECONDITION_FAILED),
            }
        }
        let created = !self.store.exists(path);
        match self.store.put(path, req.body.clone(), now) {
            Ok(etag) => {
                if let Some(bus) = &self.bus {
                    bus.publish(Event::new("attic.write", path.to_owned()));
                }
                let status = if created {
                    StatusCode::CREATED
                } else {
                    StatusCode::NO_CONTENT
                };
                Response::new(status).with_header("etag", etag)
            }
            Err(e) => store_error_response(e),
        }
    }

    fn delete(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let token = parse_lock_token(req.headers.get("lock-token"));
        if let Err(LockError::Locked { holder }) = self.locks.check_write(path, token, now) {
            return Response::new(StatusCode::LOCKED).with_header("x-lock-holder", holder);
        }
        match self.store.delete(path) {
            Ok(_) => Response::new(StatusCode::NO_CONTENT),
            Err(e) => store_error_response(e),
        }
    }

    fn propfind(&mut self, path: &str, req: &Request) -> Response {
        let depth = req.headers.get("depth").unwrap_or("1");
        if depth == "0" {
            return if self.store.exists(path) {
                let kind = if self.store.is_collection(path) {
                    "collection"
                } else {
                    "file"
                };
                Response::new(StatusCode::MULTI_STATUS).with_body(format!("{path} {kind}\n"))
            } else {
                Response::not_found()
            };
        }
        match self.store.list(path) {
            Ok(children) => {
                let mut body = String::new();
                for (name, is_col) in children {
                    body.push_str(&format!(
                        "{name} {}\n",
                        if is_col { "collection" } else { "file" }
                    ));
                }
                Response::new(StatusCode::MULTI_STATUS).with_body(body)
            }
            Err(e) => store_error_response(e),
        }
    }

    fn copy_move(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let Some(dst) = req.headers.get("destination").map(str::to_owned) else {
            return Response::new(StatusCode::BAD_REQUEST);
        };
        let token = parse_lock_token(req.headers.get("lock-token"));
        if let Err(LockError::Locked { holder }) = self.locks.check_write(&dst, token, now) {
            return Response::new(StatusCode::LOCKED).with_header("x-lock-holder", holder);
        }
        let result = if req.method == Method::Copy {
            self.store.copy(path, &dst, now)
        } else {
            if let Err(LockError::Locked { holder }) = self.locks.check_write(path, token, now) {
                return Response::new(StatusCode::LOCKED).with_header("x-lock-holder", holder);
            }
            self.store.rename(path, &dst, now)
        };
        match result {
            Ok(()) => Response::new(StatusCode::CREATED),
            Err(e) => store_error_response(e),
        }
    }

    fn lock(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let owner = req.headers.get("x-lock-owner").unwrap_or("anonymous");
        let scope = match req.headers.get("x-lock-scope") {
            Some("shared") => LockScope::Shared,
            _ => LockScope::Exclusive,
        };
        let depth = match req.headers.get("depth") {
            Some("infinity") => LockDepth::Infinity,
            _ => LockDepth::Zero,
        };
        let ttl = req
            .headers
            .get("timeout")
            .and_then(|t| t.strip_prefix("Second-"))
            .and_then(|s| s.parse().ok())
            .map(SimDuration::from_secs)
            .unwrap_or(SimDuration::from_secs(600));
        match self.locks.lock(path, owner, scope, depth, ttl, now) {
            Ok(token) => Response::new(StatusCode::OK).with_header("lock-token", token.to_string()),
            Err(LockError::Locked { holder }) => {
                Response::new(StatusCode::LOCKED).with_header("x-lock-holder", holder)
            }
            Err(LockError::BadToken) => Response::new(StatusCode::BAD_REQUEST),
        }
    }

    fn unlock(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        match parse_lock_token(req.headers.get("lock-token")) {
            Some(token) => match self.locks.unlock(path, token, now) {
                Ok(()) => Response::new(StatusCode::NO_CONTENT),
                Err(_) => Response::new(StatusCode::CONFLICT),
            },
            None => Response::new(StatusCode::BAD_REQUEST),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_core::auth::Permission;
    use hpop_http::url::Url;

    fn server() -> AtticServer {
        AtticServer::new(TokenVerifier::new([7u8; 32]))
    }

    fn url(p: &str) -> Url {
        Url::https("attic.home", p)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn put_get_cycle_local() {
        let mut s = server();
        let put = Request::put(url("/note.txt"), &b"hello attic"[..]);
        let r = s.handle_local(&put, t(0));
        assert_eq!(r.status, StatusCode::CREATED);
        let etag = r.headers.get("etag").unwrap().to_owned();
        let get = s.handle_local(&Request::get(url("/note.txt")), t(1));
        assert_eq!(get.status, StatusCode::OK);
        assert_eq!(&get.body[..], b"hello attic");
        // Conditional GET returns 304.
        let cond = Request::get(url("/note.txt")).with_header("if-none-match", etag);
        assert_eq!(s.handle_local(&cond, t(2)).status, StatusCode::NOT_MODIFIED);
        // Re-PUT is 204.
        assert_eq!(s.handle_local(&put, t(3)).status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn external_requires_valid_grant() {
        let verifier = TokenVerifier::new([7u8; 32]);
        let mut s = AtticServer::new(verifier.clone());
        s.store_mut().mkcol_recursive("/health/clinic").unwrap();
        let token = verifier.issue(
            "clinic",
            "/health/clinic",
            Permission::ReadWrite,
            t(1_000_000),
        );
        let auth = format!("Capability {}", token.encode());

        // No auth header → 401.
        let bare = Request::put(url("/health/clinic/r1.json"), &b"{}"[..]);
        assert_eq!(
            s.handle_external(&bare, t(0)).status,
            StatusCode::UNAUTHORIZED
        );

        // Valid grant → 201.
        let ok = bare.clone().with_header("authorization", auth.clone());
        assert_eq!(s.handle_external(&ok, t(0)).status, StatusCode::CREATED);

        // Out-of-scope path → 403.
        let outside = Request::put(url("/finance/tax.pdf"), &b"x"[..])
            .with_header("authorization", auth.clone());
        assert_eq!(
            s.handle_external(&outside, t(0)).status,
            StatusCode::FORBIDDEN
        );

        // Expired token → 401.
        assert_eq!(
            s.handle_external(&ok, t(2_000_000)).status,
            StatusCode::UNAUTHORIZED
        );
    }

    #[test]
    fn read_only_grant_cannot_write() {
        let verifier = TokenVerifier::new([7u8; 32]);
        let mut s = AtticServer::new(verifier.clone());
        s.store_mut().mkcol("/shared").unwrap();
        s.store_mut().put("/shared/doc", "v", t(0)).unwrap();
        let token = verifier.issue("viewer", "/shared", Permission::Read, t(1000));
        let auth = format!("Capability {}", token.encode());
        let get = Request::get(url("/shared/doc")).with_header("authorization", auth.clone());
        assert_eq!(s.handle_external(&get, t(1)).status, StatusCode::OK);
        let put = Request::put(url("/shared/doc"), &b"evil"[..]).with_header("authorization", auth);
        assert_eq!(s.handle_external(&put, t(1)).status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn locking_mediates_concurrent_writers() {
        let mut s = server();
        s.handle_local(&Request::put(url("/doc"), &b"v1"[..]), t(0));
        // Word processor locks the file.
        let lock = Request::new(Method::Lock, url("/doc"))
            .with_header("x-lock-owner", "word-proc")
            .with_header("timeout", "Second-300");
        let lr = s.handle_local(&lock, t(1));
        assert_eq!(lr.status, StatusCode::OK);
        let token = lr.headers.get("lock-token").unwrap().to_owned();

        // Another app's write bounces with 423.
        let other = Request::put(url("/doc"), &b"v2"[..]);
        let blocked = s.handle_local(&other, t(2));
        assert_eq!(blocked.status, StatusCode::LOCKED);
        assert_eq!(blocked.headers.get("x-lock-holder"), Some("word-proc"));

        // The holder writes fine.
        let own = Request::put(url("/doc"), &b"v2"[..]).with_header("lock-token", token.clone());
        assert_eq!(s.handle_local(&own, t(3)).status, StatusCode::NO_CONTENT);

        // Unlock; now anyone can write.
        let unlock = Request::new(Method::Unlock, url("/doc")).with_header("lock-token", token);
        assert_eq!(s.handle_local(&unlock, t(4)).status, StatusCode::NO_CONTENT);
        assert_eq!(s.handle_local(&other, t(5)).status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn if_match_prevents_lost_updates() {
        let mut s = server();
        let r = s.handle_local(&Request::put(url("/doc"), &b"v1"[..]), t(0));
        let etag = r.headers.get("etag").unwrap().to_owned();
        // Stale etag → 412.
        let stale = Request::put(url("/doc"), &b"v3"[..]).with_header("if-match", "\"bogus\"");
        assert_eq!(
            s.handle_local(&stale, t(1)).status,
            StatusCode::PRECONDITION_FAILED
        );
        let fresh = Request::put(url("/doc"), &b"v2"[..]).with_header("if-match", etag);
        assert_eq!(s.handle_local(&fresh, t(1)).status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn propfind_lists() {
        let mut s = server();
        s.store_mut().mkcol("/d").unwrap();
        s.store_mut().put("/d/a", "1", t(0)).unwrap();
        s.store_mut().put("/d/b", "2", t(0)).unwrap();
        let pf = Request::new(Method::PropFind, url("/d"));
        let r = s.handle_local(&pf, t(1));
        assert_eq!(r.status, StatusCode::MULTI_STATUS);
        let body = String::from_utf8(r.body.to_vec()).unwrap();
        assert!(body.contains("/d/a file"));
        assert!(body.contains("/d/b file"));
        let pf0 = Request::new(Method::PropFind, url("/d")).with_header("depth", "0");
        let r0 = s.handle_local(&pf0, t(1));
        assert_eq!(
            String::from_utf8(r0.body.to_vec()).unwrap(),
            "/d collection\n"
        );
    }

    #[test]
    fn copy_and_move_verbs() {
        let mut s = server();
        s.handle_local(&Request::put(url("/a"), &b"x"[..]), t(0));
        let cp = Request::new(Method::Copy, url("/a")).with_header("destination", "/b");
        assert_eq!(s.handle_local(&cp, t(1)).status, StatusCode::CREATED);
        let mv = Request::new(Method::Move, url("/a")).with_header("destination", "/c");
        assert_eq!(s.handle_local(&mv, t(2)).status, StatusCode::CREATED);
        assert_eq!(
            s.handle_local(&Request::get(url("/a")), t(3)).status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(
            s.handle_local(&Request::get(url("/c")), t(3)).status,
            StatusCode::OK
        );
    }

    #[test]
    fn options_advertises_dav() {
        let mut s = server();
        let r = s.handle_local(&Request::new(Method::Options, url("/")), t(0));
        assert_eq!(r.headers.get("dav"), Some("1, 2"));
    }

    #[test]
    fn write_events_published() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.subscribe("attic.write", move |e| {
            assert_eq!(e.payload, "/doc");
            h.fetch_add(1, Ordering::SeqCst);
        });
        let mut s = server().with_bus(bus);
        s.handle_local(&Request::put(url("/doc"), &b"v"[..]), t(0));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
