//! The netsim adapter: the attic as the simulator drives it.
//!
//! The paper's prototype "implements a data attic as a WebDAV server"
//! reachable over HTTP(S) for "decoupled communication between the
//! external applications and the attic and ease of firewall traversal"
//! (§IV-A). [`AtticServer`] is the *deterministic* driving adapter of
//! the hexagonal core (see [`ports`](crate::ports)): it wraps
//! [`DavCore`] over the in-memory [`VolatileBackend`] and exposes the
//! call-style interface the simulated home network uses. The
//! `attic-daemon` binary drives the identical engine over real sockets
//! — the conformance suite holds the two byte-identical.

use crate::ports::{Origin, VolatileBackend};
use crate::store::ObjectStore;
use crate::webdav::DavCore;
use hpop_core::auth::TokenVerifier;
use hpop_core::events::EventBus;
use hpop_http::message::{Request, Response};
use hpop_netsim::time::SimTime;

/// The data attic server: store + locks + access control.
///
/// ```
/// use hpop_attic::server::AtticServer;
/// use hpop_core::auth::TokenVerifier;
/// use hpop_http::message::Request;
/// use hpop_http::url::Url;
/// use hpop_netsim::time::SimTime;
///
/// let mut attic = AtticServer::new(TokenVerifier::new([7u8; 32]));
/// let put = Request::put(Url::https("attic.home", "/note.txt"), &b"hi"[..]);
/// let resp = attic.handle_local(&put, SimTime::ZERO);
/// assert!(resp.status.is_success());
/// ```
pub struct AtticServer {
    core: DavCore<VolatileBackend>,
}

impl std::fmt::Debug for AtticServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtticServer")
            .field("files", &self.store().files_under("/").len())
            .finish()
    }
}

impl AtticServer {
    /// Creates an attic bound to the appliance's token verifier.
    pub fn new(verifier: TokenVerifier) -> AtticServer {
        AtticServer {
            core: DavCore::new(VolatileBackend::new(), verifier),
        }
    }

    /// Attaches the appliance event bus; writes publish `attic.write`.
    pub fn with_bus(mut self, bus: EventBus) -> AtticServer {
        self.core = self.core.with_bus(bus);
        self
    }

    /// Direct store access for in-home (trusted) tooling and tests.
    pub fn store(&self) -> &ObjectStore {
        &self.core.backend().store
    }

    /// Mutable direct store access (trusted local tooling).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.core.backend_mut().store
    }

    /// The protocol engine itself, for adapters layered on top.
    pub fn core_mut(&mut self) -> &mut DavCore<VolatileBackend> {
        &mut self.core
    }

    /// Handles a request from inside the home (trusted; no grant needed).
    pub fn handle_local(&mut self, req: &Request, now: SimTime) -> Response {
        self.core.serve(req, Origin::Local, now)
    }

    /// Handles a request from an external application: the request must
    /// carry `Authorization: Capability <wire>` with a valid, unexpired
    /// token whose scope covers the path and whose permission matches
    /// the method.
    pub fn handle_external(&mut self, req: &Request, now: SimTime) -> Response {
        self.core.serve(req, Origin::External, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dav::{MultiStatus, PropValue};
    use hpop_core::auth::Permission;
    use hpop_http::message::{Method, StatusCode};
    use hpop_http::url::Url;

    fn server() -> AtticServer {
        AtticServer::new(TokenVerifier::new([7u8; 32]))
    }

    fn url(p: &str) -> Url {
        Url::https("attic.home", p)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn put_get_cycle_local() {
        let mut s = server();
        let put = Request::put(url("/note.txt"), &b"hello attic"[..]);
        let r = s.handle_local(&put, t(0));
        assert_eq!(r.status, StatusCode::CREATED);
        let etag = r.headers.get("etag").unwrap().to_owned();
        let get = s.handle_local(&Request::get(url("/note.txt")), t(1));
        assert_eq!(get.status, StatusCode::OK);
        assert_eq!(&get.body[..], b"hello attic");
        // Conditional GET returns 304.
        let cond = Request::get(url("/note.txt")).with_header("if-none-match", etag);
        assert_eq!(s.handle_local(&cond, t(2)).status, StatusCode::NOT_MODIFIED);
        // Re-PUT is 204.
        assert_eq!(s.handle_local(&put, t(3)).status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn external_requires_valid_grant() {
        let verifier = TokenVerifier::new([7u8; 32]);
        let mut s = AtticServer::new(verifier.clone());
        s.store_mut().mkcol_recursive("/health/clinic").unwrap();
        let token = verifier.issue(
            "clinic",
            "/health/clinic",
            Permission::ReadWrite,
            t(1_000_000),
        );
        let auth = format!("Capability {}", token.encode());

        // No auth header → 401.
        let bare = Request::put(url("/health/clinic/r1.json"), &b"{}"[..]);
        assert_eq!(
            s.handle_external(&bare, t(0)).status,
            StatusCode::UNAUTHORIZED
        );

        // Valid grant → 201.
        let ok = bare.clone().with_header("authorization", auth.clone());
        assert_eq!(s.handle_external(&ok, t(0)).status, StatusCode::CREATED);

        // Out-of-scope path → 403.
        let outside = Request::put(url("/finance/tax.pdf"), &b"x"[..])
            .with_header("authorization", auth.clone());
        assert_eq!(
            s.handle_external(&outside, t(0)).status,
            StatusCode::FORBIDDEN
        );

        // Expired token → 401.
        assert_eq!(
            s.handle_external(&ok, t(2_000_000)).status,
            StatusCode::UNAUTHORIZED
        );
    }

    #[test]
    fn read_only_grant_cannot_write() {
        let verifier = TokenVerifier::new([7u8; 32]);
        let mut s = AtticServer::new(verifier.clone());
        s.store_mut().mkcol("/shared").unwrap();
        s.store_mut().put("/shared/doc", "v", t(0)).unwrap();
        let token = verifier.issue("viewer", "/shared", Permission::Read, t(1000));
        let auth = format!("Capability {}", token.encode());
        let get = Request::get(url("/shared/doc")).with_header("authorization", auth.clone());
        assert_eq!(s.handle_external(&get, t(1)).status, StatusCode::OK);
        let put = Request::put(url("/shared/doc"), &b"evil"[..]).with_header("authorization", auth);
        assert_eq!(s.handle_external(&put, t(1)).status, StatusCode::FORBIDDEN);
    }

    #[test]
    fn locking_mediates_concurrent_writers() {
        let mut s = server();
        s.handle_local(&Request::put(url("/doc"), &b"v1"[..]), t(0));
        // Word processor locks the file.
        let lock = Request::new(Method::Lock, url("/doc"))
            .with_header("x-lock-owner", "word-proc")
            .with_header("timeout", "Second-300");
        let lr = s.handle_local(&lock, t(1));
        assert_eq!(lr.status, StatusCode::OK);
        let token = lr.headers.get("lock-token").unwrap().to_owned();

        // Another app's write bounces with 423.
        let other = Request::put(url("/doc"), &b"v2"[..]);
        let blocked = s.handle_local(&other, t(2));
        assert_eq!(blocked.status, StatusCode::LOCKED);
        assert_eq!(blocked.headers.get("x-lock-holder"), Some("word-proc"));

        // The holder writes fine.
        let own = Request::put(url("/doc"), &b"v2"[..]).with_header("lock-token", token.clone());
        assert_eq!(s.handle_local(&own, t(3)).status, StatusCode::NO_CONTENT);

        // Unlock; now anyone can write.
        let unlock = Request::new(Method::Unlock, url("/doc")).with_header("lock-token", token);
        assert_eq!(s.handle_local(&unlock, t(4)).status, StatusCode::NO_CONTENT);
        assert_eq!(s.handle_local(&other, t(5)).status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn if_match_prevents_lost_updates() {
        let mut s = server();
        let r = s.handle_local(&Request::put(url("/doc"), &b"v1"[..]), t(0));
        let etag = r.headers.get("etag").unwrap().to_owned();
        // Stale etag → 412.
        let stale = Request::put(url("/doc"), &b"v3"[..]).with_header("if-match", "\"bogus\"");
        assert_eq!(
            s.handle_local(&stale, t(1)).status,
            StatusCode::PRECONDITION_FAILED
        );
        let fresh = Request::put(url("/doc"), &b"v2"[..]).with_header("if-match", etag);
        assert_eq!(s.handle_local(&fresh, t(1)).status, StatusCode::NO_CONTENT);
    }

    #[test]
    fn propfind_lists_as_multistatus_xml() {
        let mut s = server();
        s.store_mut().mkcol("/d").unwrap();
        s.store_mut().put("/d/a", "1", t(0)).unwrap();
        s.store_mut().put("/d/b", "2", t(0)).unwrap();
        let pf = Request::new(Method::PropFind, url("/d")).with_header("depth", "1");
        let r = s.handle_local(&pf, t(1));
        assert_eq!(r.status, StatusCode::MULTI_STATUS);
        let ms = MultiStatus::parse(std::str::from_utf8(&r.body).unwrap()).expect("valid XML");
        let hrefs: Vec<&str> = ms.responses.iter().map(|x| x.href.as_str()).collect();
        assert_eq!(hrefs, vec!["/d", "/d/a", "/d/b"]);
        // The collection is typed as one; files carry etags.
        assert!(ms.responses[0].propstats[0]
            .props
            .iter()
            .any(|(n, v)| n == "resourcetype" && *v == PropValue::Collection));
        assert!(ms.responses[1].propstats[0]
            .props
            .iter()
            .any(|(n, _)| n == "getetag"));

        let pf0 = Request::new(Method::PropFind, url("/d")).with_header("depth", "0");
        let r0 = s.handle_local(&pf0, t(1));
        let ms0 = MultiStatus::parse(std::str::from_utf8(&r0.body).unwrap()).unwrap();
        assert_eq!(ms0.responses.len(), 1);
        assert_eq!(ms0.responses[0].href, "/d");
    }

    #[test]
    fn copy_and_move_verbs() {
        let mut s = server();
        s.handle_local(&Request::put(url("/a"), &b"x"[..]), t(0));
        let cp = Request::new(Method::Copy, url("/a")).with_header("destination", "/b");
        assert_eq!(s.handle_local(&cp, t(1)).status, StatusCode::CREATED);
        let mv = Request::new(Method::Move, url("/a")).with_header("destination", "/c");
        assert_eq!(s.handle_local(&mv, t(2)).status, StatusCode::CREATED);
        assert_eq!(
            s.handle_local(&Request::get(url("/a")), t(3)).status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(
            s.handle_local(&Request::get(url("/c")), t(3)).status,
            StatusCode::OK
        );
    }

    #[test]
    fn options_advertises_dav() {
        let mut s = server();
        let r = s.handle_local(&Request::new(Method::Options, url("/")), t(0));
        assert_eq!(r.headers.get("dav"), Some("1, 2"));
        let allow = r.headers.get("allow").unwrap();
        for verb in ["OPTIONS", "HEAD", "PROPPATCH", "LOCK"] {
            assert!(allow.contains(verb), "{verb} in Allow");
        }
    }

    #[test]
    fn write_events_published() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let bus = EventBus::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        bus.subscribe("attic.write", move |e| {
            assert_eq!(e.payload, "/doc");
            h.fetch_add(1, Ordering::SeqCst);
        });
        let mut s = server().with_bus(bus);
        s.handle_local(&Request::put(url("/doc"), &b"v"[..]), t(0));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
