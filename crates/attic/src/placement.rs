//! Churn-aware shard placement over the fabric's [`PeerView`].
//!
//! §IV-A's availability story depends on *which* peers hold the shards:
//! "storing pieces with a variety of peers" only helps if those peers
//! are actually reachable when the restore happens. This module selects
//! backup peers through the gossip membership layer — ranked by observed
//! uptime and reputation, never placing two shards on one peer — and
//! re-places shards away from peers the failure detector has declared
//! dead ([`PlacedBackup::repair`]).

use crate::backup::{BackupError, BackupPlan, BackupSet};
use hpop_erasure::availability::heterogeneous_availability;
use hpop_fabric::{PeerId, PeerView, RankBy};
use hpop_netsim::time::SimTime;
use hpop_obs::SpanScope;
use hpop_resilience::{Deadline, RetryError, RetryPolicy};
use std::collections::BTreeSet;

/// Placement errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// The view has fewer alive peers than the plan needs shards.
    NotEnoughPeers {
        /// Shards the plan requires.
        needed: usize,
        /// Alive peers available.
        alive: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughPeers { needed, alive } => {
                write!(f, "plan needs {needed} peers but only {alive} are alive")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A backup plus the fabric peers assigned to hold each shard.
#[derive(Clone, Debug)]
pub struct PlacedBackup {
    /// `holders[i]` stores `set.shards[i]`.
    pub holders: Vec<PeerId>,
    plan: BackupPlan,
}

/// Picks one distinct alive peer per shard of `plan`, best
/// uptime-times-reputation first (the [`RankBy::Composite`] axis
/// already folds both in alongside capacity).
///
/// # Errors
///
/// [`PlacementError::NotEnoughPeers`] when the view's alive set is
/// smaller than the plan's shard count.
pub fn place_shards(view: &PeerView, plan: BackupPlan) -> Result<PlacedBackup, PlacementError> {
    let needed = plan.peers();
    let holders = view.select(needed, RankBy::Composite, &BTreeSet::new());
    if holders.len() < needed {
        return Err(PlacementError::NotEnoughPeers {
            needed,
            alive: holders.len(),
        });
    }
    Ok(PlacedBackup { holders, plan })
}

/// Places shards with budgeted retries: each attempt re-polls the
/// caller's `view_at` oracle (typically the fabric view after another
/// gossip round), so a placement blocked by transient churn succeeds
/// once enough peers are back — without ever sleeping past `deadline`.
/// `*now` advances by the backoff pauses taken.
///
/// # Errors
///
/// The last [`PlacementError`], wrapped in [`RetryError::Exhausted`]
/// or [`RetryError::DeadlineExceeded`] depending on what gave up first.
pub fn place_shards_with_retry(
    plan: BackupPlan,
    retry: &RetryPolicy,
    deadline: Deadline,
    now: &mut SimTime,
    mut view_at: impl FnMut(SimTime) -> PeerView,
) -> Result<PlacedBackup, RetryError<PlacementError>> {
    let spans = hpop_obs::spans();
    let root = spans.root();
    let scope = SpanScope::new(spans.clone(), root);
    let start_us = now.as_nanos() / 1_000;
    let out = retry
        .run_spanned(plan.peers() as u64, deadline, now, &scope, |_, at| {
            place_shards(&view_at(at), plan)
        })
        .result;
    spans.record(&root, "attic", "request", start_us, now.as_nanos() / 1_000);
    out
}

impl PlacedBackup {
    /// The plan this placement serves.
    pub fn plan(&self) -> BackupPlan {
        self.plan
    }

    /// Indices of shards whose holder the view no longer believes
    /// alive — the shards presumed lost to churn.
    pub fn lost_shards(&self, view: &PeerView) -> Vec<usize> {
        self.holders
            .iter()
            .enumerate()
            .filter(|(_, &p)| !view.is_alive(p))
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-places shards held by dead peers onto the best surviving
    /// peers not already holding a shard, and marks the old copies lost
    /// in `set`. Returns the repaired shard indices.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NotEnoughPeers`] when there are not enough
    /// alive non-holder peers to take over every lost shard; the
    /// placement is left unchanged so the caller can retry after the
    /// next gossip round.
    pub fn repair(
        &mut self,
        view: &PeerView,
        set: &mut BackupSet,
    ) -> Result<Vec<usize>, PlacementError> {
        let lost = self.lost_shards(view);
        if lost.is_empty() {
            return Ok(lost);
        }
        let exclude: BTreeSet<PeerId> = self.holders.iter().copied().collect();
        let replacements = view.select(lost.len(), RankBy::Composite, &exclude);
        if replacements.len() < lost.len() {
            return Err(PlacementError::NotEnoughPeers {
                needed: lost.len(),
                alive: replacements.len(),
            });
        }
        for (&shard, &peer) in lost.iter().zip(&replacements) {
            set.lose_peer(shard);
            self.holders[shard] = peer;
        }
        Ok(lost)
    }

    /// [`PlacedBackup::repair`] with budgeted retries: when too few
    /// spare peers are alive, back off and re-poll `view_at` instead of
    /// failing outright — churned peers often return within a gossip
    /// round or two. The placement is only mutated by the attempt that
    /// succeeds; `*now` advances by the backoff pauses taken.
    ///
    /// # Errors
    ///
    /// The last [`PlacementError`], wrapped by how the retry gave up.
    pub fn repair_with_retry(
        &mut self,
        set: &mut BackupSet,
        retry: &RetryPolicy,
        deadline: Deadline,
        now: &mut SimTime,
        mut view_at: impl FnMut(SimTime) -> PeerView,
    ) -> Result<Vec<usize>, RetryError<PlacementError>> {
        let spans = hpop_obs::spans();
        let root = spans.root();
        let scope = SpanScope::new(spans.clone(), root);
        let start_us = now.as_nanos() / 1_000;
        let out = retry
            .run_spanned(
                0x005e_9a12 ^ self.holders.len() as u64,
                deadline,
                now,
                &scope,
                |_, at| self.repair(&view_at(at), set),
            )
            .result;
        spans.record(&root, "attic", "request", start_us, now.as_nanos() / 1_000);
        out
    }

    /// A *degraded read*: restores the blob using only shards whose
    /// holders the view currently believes alive. With an RS(k, m)
    /// plan any k reachable holders suffice; neither the set nor the
    /// placement is mutated (marking shards lost is the repair path's
    /// job — a read must not amplify churn into data loss).
    ///
    /// # Errors
    ///
    /// The underlying [`BackupError`] when fewer than k holders are
    /// reachable or the surviving data fails its integrity check.
    pub fn restore_degraded(
        &self,
        view: &PeerView,
        set: &BackupSet,
        key: &[u8; 32],
        label: &str,
    ) -> Result<Vec<u8>, BackupError> {
        let mut reachable = set.clone();
        let mut masked = 0usize;
        for (i, &holder) in self.holders.iter().enumerate() {
            if !view.is_alive(holder) {
                reachable.lose_peer(i);
                masked += 1;
            }
        }
        let res = reachable.restore(key, label);
        if res.is_ok() && masked > 0 {
            hpop_obs::metrics().counter("attic.restore.degraded").incr();
        }
        res
    }

    /// Expected availability of this placement given each holder's
    /// fabric-observed uptime fraction — the churn-aware counterpart of
    /// [`BackupPlan::availability`], which assumes one homogeneous
    /// failure probability.
    pub fn availability(&self, view: &PeerView) -> f64 {
        let uptimes = view.uptimes_of(&self.holders);
        let k = match self.plan {
            BackupPlan::Replication { .. } => 1,
            BackupPlan::Erasure { data, .. } => data as usize,
        };
        heterogeneous_availability(&uptimes, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_fabric::{Advertisement, PeerEntry, PeerState};

    fn entry(id: u64, uptime: f64, state: PeerState) -> PeerEntry {
        PeerEntry {
            id: PeerId(id),
            state,
            advert: Advertisement::default(),
            uptime_fraction: uptime,
            reputation: 1.0,
        }
    }

    fn view_of(ups: &[(u64, f64, PeerState)]) -> PeerView {
        PeerView::new(
            ups.iter()
                .map(|&(id, up, state)| entry(id, up, state))
                .collect(),
        )
    }

    #[test]
    fn placement_prefers_high_uptime_distinct_peers() {
        let v = view_of(&[
            (0, 0.5, PeerState::Alive),
            (1, 0.99, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.99, PeerState::Dead),
        ]);
        let placed = place_shards(&v, BackupPlan::Replication { copies: 2 }).unwrap();
        assert_eq!(placed.holders, vec![PeerId(1), PeerId(2)]);
    }

    #[test]
    fn too_few_alive_peers_is_an_error() {
        let v = view_of(&[(0, 0.9, PeerState::Alive), (1, 0.9, PeerState::Dead)]);
        assert_eq!(
            place_shards(&v, BackupPlan::Erasure { data: 2, parity: 1 })
                .err()
                .unwrap(),
            PlacementError::NotEnoughPeers {
                needed: 3,
                alive: 1
            }
        );
    }

    #[test]
    fn repair_moves_dead_holders_to_survivors() {
        let key = [9u8; 32];
        let mut set = BackupSet::create(
            b"the archive",
            &key,
            "gen1",
            BackupPlan::Erasure { data: 2, parity: 2 },
        )
        .unwrap();
        let v0 = view_of(&[
            (0, 0.9, PeerState::Alive),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.9, PeerState::Alive),
            (4, 0.8, PeerState::Alive),
        ]);
        let mut placed = place_shards(&v0, set.plan()).unwrap();
        let dead = placed.holders[1];
        // The fabric later declares one holder dead.
        let v1 = view_of(&[
            (0, 0.9, PeerState::Alive),
            (
                1,
                0.9,
                if dead == PeerId(1) {
                    PeerState::Dead
                } else {
                    PeerState::Alive
                },
            ),
            (
                2,
                0.9,
                if dead == PeerId(2) {
                    PeerState::Dead
                } else {
                    PeerState::Alive
                },
            ),
            (
                3,
                0.9,
                if dead == PeerId(3) {
                    PeerState::Dead
                } else {
                    PeerState::Alive
                },
            ),
            (4, 0.8, PeerState::Alive),
        ]);
        let repaired = placed.repair(&v1, &mut set).unwrap();
        assert_eq!(repaired, vec![1]);
        assert!(!placed.holders.contains(&dead));
        assert_eq!(placed.lost_shards(&v1), Vec::<usize>::new());
        // RS(2,2) still restores with one shard re-placed (treated lost).
        assert_eq!(set.restore(&key, "gen1").unwrap(), b"the archive");
    }

    #[test]
    fn repair_fails_cleanly_without_spare_peers() {
        let key = [9u8; 32];
        let mut set =
            BackupSet::create(b"x", &key, "l", BackupPlan::Replication { copies: 2 }).unwrap();
        let v0 = view_of(&[(0, 0.9, PeerState::Alive), (1, 0.9, PeerState::Alive)]);
        let mut placed = place_shards(&v0, set.plan()).unwrap();
        let v1 = view_of(&[(0, 0.9, PeerState::Dead), (1, 0.9, PeerState::Alive)]);
        let before = placed.holders.clone();
        assert!(placed.repair(&v1, &mut set).is_err());
        assert_eq!(placed.holders, before);
    }

    #[test]
    fn placement_retry_recovers_when_peers_return() {
        // First poll: only 2 alive; later polls: all 4 back.
        let sparse = view_of(&[
            (0, 0.9, PeerState::Alive),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Dead),
            (3, 0.9, PeerState::Dead),
        ]);
        let full = view_of(&[
            (0, 0.9, PeerState::Alive),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.9, PeerState::Alive),
        ]);
        let mut polls = 0;
        let mut now = SimTime::ZERO;
        let placed = place_shards_with_retry(
            BackupPlan::Erasure { data: 2, parity: 1 },
            &RetryPolicy::default(),
            Deadline::UNBOUNDED,
            &mut now,
            |_| {
                polls += 1;
                if polls < 3 {
                    sparse.clone()
                } else {
                    full.clone()
                }
            },
        )
        .unwrap();
        assert_eq!(placed.holders.len(), 3);
        assert_eq!(polls, 3);
        // Two backoff pauses were actually waited.
        assert!(now > SimTime::ZERO);
    }

    #[test]
    fn placement_retry_respects_deadline() {
        let sparse = view_of(&[(0, 0.9, PeerState::Alive)]);
        let mut now = SimTime::ZERO;
        let deadline = Deadline::after(now, hpop_netsim::time::SimDuration::from_millis(10));
        let err = place_shards_with_retry(
            BackupPlan::Erasure { data: 2, parity: 1 },
            &RetryPolicy::default(),
            deadline,
            &mut now,
            |_| sparse.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, RetryError::DeadlineExceeded(_)));
        assert!(now.as_nanos() <= deadline.expires_at().as_nanos());
    }

    #[test]
    fn repair_retry_waits_out_transient_churn() {
        let key = [9u8; 32];
        let mut set = BackupSet::create(
            b"the archive",
            &key,
            "gen1",
            BackupPlan::Erasure { data: 2, parity: 1 },
        )
        .unwrap();
        let v0 = view_of(&[
            (0, 0.9, PeerState::Alive),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
        ]);
        let mut placed = place_shards(&v0, set.plan()).unwrap();
        // Holder 0 dies and no spare exists — until peer 3 joins on the
        // third poll.
        let degraded = view_of(&[
            (0, 0.9, PeerState::Dead),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
        ]);
        let recovered = view_of(&[
            (0, 0.9, PeerState::Dead),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.9, PeerState::Alive),
        ]);
        let mut polls = 0;
        let mut now = SimTime::ZERO;
        let repaired = placed
            .repair_with_retry(
                &mut set,
                &RetryPolicy::default(),
                Deadline::UNBOUNDED,
                &mut now,
                |_| {
                    polls += 1;
                    if polls < 3 {
                        degraded.clone()
                    } else {
                        recovered.clone()
                    }
                },
            )
            .unwrap();
        assert_eq!(repaired.len(), 1);
        assert!(placed.holders.contains(&PeerId(3)));
        assert_eq!(set.restore(&key, "gen1").unwrap(), b"the archive");
    }

    #[test]
    fn degraded_read_serves_from_any_k_of_n() {
        let key = [9u8; 32];
        let set = BackupSet::create(
            b"the archive",
            &key,
            "gen1",
            BackupPlan::Erasure { data: 2, parity: 2 },
        )
        .unwrap();
        let v0 = view_of(&[
            (0, 0.9, PeerState::Alive),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.9, PeerState::Alive),
        ]);
        let placed = place_shards(&v0, set.plan()).unwrap();
        // Two of the four holders churn away: k = 2 survivors suffice.
        let degraded = view_of(&[
            (0, 0.9, PeerState::Dead),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Dead),
            (3, 0.9, PeerState::Alive),
        ]);
        assert_eq!(
            placed
                .restore_degraded(&degraded, &set, &key, "gen1")
                .unwrap(),
            b"the archive"
        );
        // The read mutated nothing: every shard is still present.
        assert_eq!(set.surviving_peers(), 4);
        // Below k reachable holders the read fails cleanly.
        let dead = view_of(&[
            (0, 0.9, PeerState::Dead),
            (1, 0.9, PeerState::Dead),
            (2, 0.9, PeerState::Dead),
            (3, 0.9, PeerState::Alive),
        ]);
        assert!(placed.restore_degraded(&dead, &set, &key, "gen1").is_err());
        assert_eq!(set.surviving_peers(), 4);
    }

    #[test]
    fn availability_uses_per_holder_uptimes() {
        let v = view_of(&[(0, 0.9, PeerState::Alive), (1, 0.6, PeerState::Alive)]);
        let placed = place_shards(&v, BackupPlan::Replication { copies: 2 }).unwrap();
        // Replication: unavailable only if both are down.
        let expect = 1.0 - (1.0 - 0.9) * (1.0 - 0.6);
        assert!((placed.availability(&v) - expect).abs() < 1e-12);
    }
}
