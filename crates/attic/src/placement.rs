//! Churn-aware shard placement over the fabric's [`PeerView`].
//!
//! §IV-A's availability story depends on *which* peers hold the shards:
//! "storing pieces with a variety of peers" only helps if those peers
//! are actually reachable when the restore happens. This module selects
//! backup peers through the gossip membership layer — ranked by observed
//! uptime and reputation, never placing two shards on one peer — and
//! re-places shards away from peers the failure detector has declared
//! dead ([`PlacedBackup::repair`]).

use crate::backup::{BackupPlan, BackupSet};
use hpop_erasure::availability::heterogeneous_availability;
use hpop_fabric::{PeerId, PeerView, RankBy};
use std::collections::BTreeSet;

/// Placement errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// The view has fewer alive peers than the plan needs shards.
    NotEnoughPeers {
        /// Shards the plan requires.
        needed: usize,
        /// Alive peers available.
        alive: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughPeers { needed, alive } => {
                write!(f, "plan needs {needed} peers but only {alive} are alive")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A backup plus the fabric peers assigned to hold each shard.
#[derive(Clone, Debug)]
pub struct PlacedBackup {
    /// `holders[i]` stores `set.shards[i]`.
    pub holders: Vec<PeerId>,
    plan: BackupPlan,
}

/// Picks one distinct alive peer per shard of `plan`, best
/// uptime-times-reputation first (the [`RankBy::Composite`] axis
/// already folds both in alongside capacity).
///
/// # Errors
///
/// [`PlacementError::NotEnoughPeers`] when the view's alive set is
/// smaller than the plan's shard count.
pub fn place_shards(view: &PeerView, plan: BackupPlan) -> Result<PlacedBackup, PlacementError> {
    let needed = plan.peers();
    let holders = view.select(needed, RankBy::Composite, &BTreeSet::new());
    if holders.len() < needed {
        return Err(PlacementError::NotEnoughPeers {
            needed,
            alive: holders.len(),
        });
    }
    Ok(PlacedBackup { holders, plan })
}

impl PlacedBackup {
    /// The plan this placement serves.
    pub fn plan(&self) -> BackupPlan {
        self.plan
    }

    /// Indices of shards whose holder the view no longer believes
    /// alive — the shards presumed lost to churn.
    pub fn lost_shards(&self, view: &PeerView) -> Vec<usize> {
        self.holders
            .iter()
            .enumerate()
            .filter(|(_, &p)| !view.is_alive(p))
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-places shards held by dead peers onto the best surviving
    /// peers not already holding a shard, and marks the old copies lost
    /// in `set`. Returns the repaired shard indices.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NotEnoughPeers`] when there are not enough
    /// alive non-holder peers to take over every lost shard; the
    /// placement is left unchanged so the caller can retry after the
    /// next gossip round.
    pub fn repair(
        &mut self,
        view: &PeerView,
        set: &mut BackupSet,
    ) -> Result<Vec<usize>, PlacementError> {
        let lost = self.lost_shards(view);
        if lost.is_empty() {
            return Ok(lost);
        }
        let exclude: BTreeSet<PeerId> = self.holders.iter().copied().collect();
        let replacements = view.select(lost.len(), RankBy::Composite, &exclude);
        if replacements.len() < lost.len() {
            return Err(PlacementError::NotEnoughPeers {
                needed: lost.len(),
                alive: replacements.len(),
            });
        }
        for (&shard, &peer) in lost.iter().zip(&replacements) {
            set.lose_peer(shard);
            self.holders[shard] = peer;
        }
        Ok(lost)
    }

    /// Expected availability of this placement given each holder's
    /// fabric-observed uptime fraction — the churn-aware counterpart of
    /// [`BackupPlan::availability`], which assumes one homogeneous
    /// failure probability.
    pub fn availability(&self, view: &PeerView) -> f64 {
        let uptimes = view.uptimes_of(&self.holders);
        let k = match self.plan {
            BackupPlan::Replication { .. } => 1,
            BackupPlan::Erasure { data, .. } => data as usize,
        };
        heterogeneous_availability(&uptimes, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_fabric::{Advertisement, PeerEntry, PeerState};

    fn entry(id: u64, uptime: f64, state: PeerState) -> PeerEntry {
        PeerEntry {
            id: PeerId(id),
            state,
            advert: Advertisement::default(),
            uptime_fraction: uptime,
            reputation: 1.0,
        }
    }

    fn view_of(ups: &[(u64, f64, PeerState)]) -> PeerView {
        PeerView::new(
            ups.iter()
                .map(|&(id, up, state)| entry(id, up, state))
                .collect(),
        )
    }

    #[test]
    fn placement_prefers_high_uptime_distinct_peers() {
        let v = view_of(&[
            (0, 0.5, PeerState::Alive),
            (1, 0.99, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.99, PeerState::Dead),
        ]);
        let placed = place_shards(&v, BackupPlan::Replication { copies: 2 }).unwrap();
        assert_eq!(placed.holders, vec![PeerId(1), PeerId(2)]);
    }

    #[test]
    fn too_few_alive_peers_is_an_error() {
        let v = view_of(&[(0, 0.9, PeerState::Alive), (1, 0.9, PeerState::Dead)]);
        assert_eq!(
            place_shards(&v, BackupPlan::Erasure { data: 2, parity: 1 })
                .err()
                .unwrap(),
            PlacementError::NotEnoughPeers {
                needed: 3,
                alive: 1
            }
        );
    }

    #[test]
    fn repair_moves_dead_holders_to_survivors() {
        let key = [9u8; 32];
        let mut set = BackupSet::create(
            b"the archive",
            &key,
            "gen1",
            BackupPlan::Erasure { data: 2, parity: 2 },
        )
        .unwrap();
        let v0 = view_of(&[
            (0, 0.9, PeerState::Alive),
            (1, 0.9, PeerState::Alive),
            (2, 0.9, PeerState::Alive),
            (3, 0.9, PeerState::Alive),
            (4, 0.8, PeerState::Alive),
        ]);
        let mut placed = place_shards(&v0, set.plan()).unwrap();
        let dead = placed.holders[1];
        // The fabric later declares one holder dead.
        let v1 = view_of(&[
            (0, 0.9, PeerState::Alive),
            (
                1,
                0.9,
                if dead == PeerId(1) {
                    PeerState::Dead
                } else {
                    PeerState::Alive
                },
            ),
            (
                2,
                0.9,
                if dead == PeerId(2) {
                    PeerState::Dead
                } else {
                    PeerState::Alive
                },
            ),
            (
                3,
                0.9,
                if dead == PeerId(3) {
                    PeerState::Dead
                } else {
                    PeerState::Alive
                },
            ),
            (4, 0.8, PeerState::Alive),
        ]);
        let repaired = placed.repair(&v1, &mut set).unwrap();
        assert_eq!(repaired, vec![1]);
        assert!(!placed.holders.contains(&dead));
        assert_eq!(placed.lost_shards(&v1), Vec::<usize>::new());
        // RS(2,2) still restores with one shard re-placed (treated lost).
        assert_eq!(set.restore(&key, "gen1").unwrap(), b"the archive");
    }

    #[test]
    fn repair_fails_cleanly_without_spare_peers() {
        let key = [9u8; 32];
        let mut set =
            BackupSet::create(b"x", &key, "l", BackupPlan::Replication { copies: 2 }).unwrap();
        let v0 = view_of(&[(0, 0.9, PeerState::Alive), (1, 0.9, PeerState::Alive)]);
        let mut placed = place_shards(&v0, set.plan()).unwrap();
        let v1 = view_of(&[(0, 0.9, PeerState::Dead), (1, 0.9, PeerState::Alive)]);
        let before = placed.holders.clone();
        assert!(placed.repair(&v1, &mut set).is_err());
        assert_eq!(placed.holders, before);
    }

    #[test]
    fn availability_uses_per_holder_uptimes() {
        let v = view_of(&[(0, 0.9, PeerState::Alive), (1, 0.6, PeerState::Alive)]);
        let placed = place_shards(&v, BackupPlan::Replication { copies: 2 }).unwrap();
        // Replication: unavailable only if both are down.
        let expect = 1.0 - (1.0 - 0.9) * (1.0 - 0.6);
        assert!((placed.availability(&v) - expect).abs() < 1e-12);
    }
}
