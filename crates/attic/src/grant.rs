//! The provider-bootstrap grant (the QR-code payload).
//!
//! §IV-A: "the data attic will issue a QR code that includes all
//! information needed to access the correct portion of the user's data
//! attic — i.e., everything from the IP address of the data attic to the
//! proper initial credentials to the location of the files within the
//! attic. The QR code is then furnished to the medical provider."
//!
//! [`AccessGrant`] is exactly that tuple; [`AccessGrant::encode`]
//! produces the string a QR code would carry.

use hpop_core::auth::CapabilityToken;
use hpop_http::url::Url;

/// Everything a provider needs to reach its slice of a user's attic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessGrant {
    /// The attic's public endpoint (resolved via the HPoP's reachability
    /// plan — §III).
    pub endpoint: Url,
    /// The scoped, expiring credential.
    pub token: CapabilityToken,
}

impl AccessGrant {
    /// Bundles an endpoint and token into a grant.
    pub fn new(endpoint: Url, token: CapabilityToken) -> AccessGrant {
        AccessGrant { endpoint, token }
    }

    /// The attic path this grant covers (the token's scope).
    pub fn path(&self) -> &str {
        &self.token.scope
    }

    /// Serializes the grant to the QR payload string.
    pub fn encode(&self) -> String {
        format!("hpop-grant:v1|{}|{}", self.endpoint, self.token.encode())
    }

    /// Parses a QR payload back into a grant.
    pub fn decode(payload: &str) -> Option<AccessGrant> {
        let rest = payload.strip_prefix("hpop-grant:v1|")?;
        let (endpoint_s, token_s) = rest.split_once('|')?;
        let endpoint: Url = endpoint_s.parse().ok()?;
        let token = CapabilityToken::decode(token_s)?;
        Some(AccessGrant { endpoint, token })
    }

    /// The `Authorization` header value the provider sends.
    pub fn authorization_header(&self) -> String {
        format!("Capability {}", self.token.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_core::auth::{Permission, TokenVerifier};
    use hpop_netsim::time::SimTime;

    fn grant() -> (AccessGrant, TokenVerifier) {
        let verifier = TokenVerifier::new([3u8; 32]);
        let token = verifier.issue(
            "st-marys-clinic",
            "/health/st-marys",
            Permission::ReadWrite,
            SimTime::from_secs(86_400 * 30),
        );
        (
            AccessGrant::new(
                Url::https("doe-family.hpop.example", "/dav").with_port(8443),
                token,
            ),
            verifier,
        )
    }

    #[test]
    fn qr_payload_roundtrip() {
        let (g, verifier) = grant();
        let payload = g.encode();
        assert!(payload.starts_with("hpop-grant:v1|https://doe-family.hpop.example:8443"));
        let back = AccessGrant::decode(&payload).unwrap();
        assert_eq!(back, g);
        assert!(verifier.verify(&back.token, SimTime::from_secs(1)));
        assert_eq!(back.path(), "/health/st-marys");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AccessGrant::decode("").is_none());
        assert!(AccessGrant::decode("hpop-grant:v1|").is_none());
        assert!(AccessGrant::decode("hpop-grant:v1|notaurl|a|b|r|1|ff").is_none());
        assert!(AccessGrant::decode("hpop-grant:v2|https://h/|x").is_none());
    }

    #[test]
    fn authorization_header_shape() {
        let (g, _) = grant();
        let h = g.authorization_header();
        assert!(h.starts_with("Capability st-marys-clinic|/health/st-marys|rw|"));
    }
}
