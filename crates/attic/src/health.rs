//! The health-records exemplar (§IV-A "Case Study: Health Records").
//!
//! "The health record system at each provider would interact with each
//! person's data attic … each provider would retain a copy of the data
//! to satisfy regulatory requirements. Therefore, the storage driver at
//! the provider's site would duplicate writes to both local copy and the
//! patient's remote attic."
//!
//! [`MedicalProvider`] is that provider-side system: enrollment consumes
//! the QR grant, and every record write is duplicated — local (for
//! regulation) and remote (to the patient's attic). [`aggregate_history`]
//! is the patient-side view: the complete cross-provider history in one
//! place, the capability the paper says today's siloed records deny.

use crate::grant::AccessGrant;
use crate::server::AtticServer;
use hpop_http::message::{Method, Request, StatusCode};
use hpop_netsim::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A medical record as the provider generates it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthRecord {
    /// Record id within the provider (`"visit-2026-07-06"`).
    pub id: String,
    /// Record body (the paper's records are opaque documents).
    pub body: String,
}

/// Errors surfacing from the provider's attic interactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProviderError {
    /// The patient's attic rejected the write (expired/revoked grant …).
    AtticRejected(u16),
    /// The patient is not enrolled.
    NotEnrolled,
}

impl std::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProviderError::AtticRejected(s) => write!(f, "patient attic rejected write ({s})"),
            ProviderError::NotEnrolled => write!(f, "patient not enrolled"),
        }
    }
}

impl std::error::Error for ProviderError {}

struct Enrollment {
    grant: AccessGrant,
    attic: Rc<RefCell<AtticServer>>,
}

/// A provider's record system, dual-writing to patients' attics.
pub struct MedicalProvider {
    name: String,
    /// Regulatory local copies: patient → records.
    local_records: BTreeMap<String, Vec<HealthRecord>>,
    enrollments: BTreeMap<String, Enrollment>,
}

impl std::fmt::Debug for MedicalProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MedicalProvider")
            .field("name", &self.name)
            .field("patients", &self.enrollments.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MedicalProvider {
    /// Creates a provider.
    pub fn new(name: impl Into<String>) -> MedicalProvider {
        MedicalProvider {
            name: name.into(),
            local_records: BTreeMap::new(),
            enrollments: BTreeMap::new(),
        }
    }

    /// The provider's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enrolls a patient by scanning their QR grant. In the simulation
    /// the attic handle stands in for the network connection the
    /// endpoint URL names; the grant still authorizes every request.
    pub fn enroll(
        &mut self,
        patient: &str,
        grant_payload: &str,
        attic: Rc<RefCell<AtticServer>>,
        now: SimTime,
    ) -> Result<(), ProviderError> {
        let grant = AccessGrant::decode(grant_payload).ok_or(ProviderError::AtticRejected(400))?;
        // Create the provider's collection in the patient's attic.
        let mkcol = Request::new(Method::MkCol, grant.endpoint.with_path(grant.path()))
            .with_header("authorization", grant.authorization_header());
        let resp = attic.borrow_mut().handle_external(&mkcol, now);
        if !(resp.status == StatusCode::CREATED || resp.status == StatusCode::CONFLICT) {
            return Err(ProviderError::AtticRejected(resp.status.0));
        }
        self.enrollments
            .insert(patient.to_owned(), Enrollment { grant, attic });
        Ok(())
    }

    /// Writes a record: duplicated to the provider's regulatory copy and
    /// pushed to the patient's attic (the §IV-A dual-write driver).
    ///
    /// # Errors
    ///
    /// [`ProviderError::NotEnrolled`] or the attic's rejection. The local
    /// regulatory copy is kept even when the attic push fails (the
    /// provider retries out of band).
    pub fn add_record(
        &mut self,
        patient: &str,
        record: HealthRecord,
        now: SimTime,
    ) -> Result<(), ProviderError> {
        self.local_records
            .entry(patient.to_owned())
            .or_default()
            .push(record.clone());
        let enr = self
            .enrollments
            .get(patient)
            .ok_or(ProviderError::NotEnrolled)?;
        let path = format!("{}/{}.json", enr.grant.path(), record.id);
        let put = Request::put(enr.grant.endpoint.with_path(&path), record.body.clone())
            .with_header("authorization", enr.grant.authorization_header());
        let resp = enr.attic.borrow_mut().handle_external(&put, now);
        if resp.status.is_success() {
            Ok(())
        } else {
            Err(ProviderError::AtticRejected(resp.status.0))
        }
    }

    /// The provider's regulatory copies for a patient.
    pub fn local_copies(&self, patient: &str) -> &[HealthRecord] {
        self.local_records
            .get(patient)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Patient-side aggregation: every record from every provider, read out
/// of the attic's `/health` tree — "the patient can provide immediate
/// access to their complete records as they see fit".
pub fn aggregate_history(attic: &AtticServer, root: &str) -> Vec<(String, String)> {
    let store = attic.store();
    let mut out = Vec::new();
    for path in store.files_under(root) {
        if let Ok(v) = store.get(&path) {
            out.push((path, String::from_utf8_lossy(&v.body).into_owned()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_core::auth::{Permission, TokenVerifier};
    use hpop_http::url::Url;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Builds a patient attic plus a grant payload for one provider.
    fn patient_setup(provider_slug: &str, expire_s: u64) -> (Rc<RefCell<AtticServer>>, String) {
        let verifier = TokenVerifier::new([11u8; 32]);
        let mut server = AtticServer::new(verifier.clone());
        server.store_mut().mkcol("/health").unwrap();
        let token = verifier.issue(
            provider_slug,
            &format!("/health/{provider_slug}"),
            Permission::ReadWrite,
            t(expire_s),
        );
        let grant = AccessGrant::new(Url::https("patient.hpop.example", "/"), token);
        (Rc::new(RefCell::new(server)), grant.encode())
    }

    #[test]
    fn enroll_and_dual_write() {
        let (attic, payload) = patient_setup("st-marys", 10_000);
        let mut provider = MedicalProvider::new("St. Mary's Clinic");
        provider
            .enroll("jane", &payload, attic.clone(), t(1))
            .unwrap();
        provider
            .add_record(
                "jane",
                HealthRecord {
                    id: "visit-001".into(),
                    body: "{\"bp\":\"120/80\"}".into(),
                },
                t(2),
            )
            .unwrap();
        // Local regulatory copy exists…
        assert_eq!(provider.local_copies("jane").len(), 1);
        // …and the patient's attic has the record.
        let attic = attic.borrow();
        let v = attic
            .store()
            .get("/health/st-marys/visit-001.json")
            .unwrap();
        assert_eq!(&v.body[..], br#"{"bp":"120/80"}"#);
    }

    #[test]
    fn aggregation_spans_providers() {
        let verifier = TokenVerifier::new([11u8; 32]);
        let mut server = AtticServer::new(verifier.clone());
        server.store_mut().mkcol("/health").unwrap();
        let attic = Rc::new(RefCell::new(server));
        for slug in ["clinic-a", "clinic-b"] {
            let token = verifier.issue(
                slug,
                &format!("/health/{slug}"),
                Permission::ReadWrite,
                t(10_000),
            );
            let grant = AccessGrant::new(Url::https("patient.hpop.example", "/"), token).encode();
            let mut p = MedicalProvider::new(slug);
            p.enroll("jane", &grant, attic.clone(), t(1)).unwrap();
            p.add_record(
                "jane",
                HealthRecord {
                    id: "r1".into(),
                    body: format!("record from {slug}"),
                },
                t(2),
            )
            .unwrap();
        }
        let history = aggregate_history(&attic.borrow(), "/health");
        assert_eq!(history.len(), 2);
        assert!(history.iter().any(|(p, _)| p.contains("clinic-a")));
        assert!(history.iter().any(|(p, _)| p.contains("clinic-b")));
    }

    #[test]
    fn revoked_grant_stops_pushes_but_keeps_local_copy() {
        let (attic, payload) = patient_setup("st-marys", 5);
        let mut provider = MedicalProvider::new("St. Mary's");
        provider
            .enroll("jane", &payload, attic.clone(), t(1))
            .unwrap();
        // The grant expires at t=5; a later write is rejected…
        let err = provider
            .add_record(
                "jane",
                HealthRecord {
                    id: "late".into(),
                    body: "x".into(),
                },
                t(10),
            )
            .unwrap_err();
        assert_eq!(err, ProviderError::AtticRejected(401));
        // …but the regulatory copy was still made.
        assert_eq!(provider.local_copies("jane").len(), 1);
    }

    #[test]
    fn unenrolled_patient_rejected() {
        let mut provider = MedicalProvider::new("St. Mary's");
        let err = provider
            .add_record(
                "ghost",
                HealthRecord {
                    id: "r".into(),
                    body: "x".into(),
                },
                t(0),
            )
            .unwrap_err();
        assert_eq!(err, ProviderError::NotEnrolled);
    }

    #[test]
    fn provider_cannot_touch_other_trees() {
        let (attic, payload) = patient_setup("st-marys", 10_000);
        let grant = AccessGrant::decode(&payload).unwrap();
        let put = Request::put(grant.endpoint.with_path("/finance/tax.pdf"), &b"snoop"[..])
            .with_header("authorization", grant.authorization_header());
        let resp = attic.borrow_mut().handle_external(&put, t(1));
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
    }
}
