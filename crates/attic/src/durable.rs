//! Crash-consistent attic: the object store and lock table behind a
//! write-ahead log.
//!
//! The paper's data attic is the *single source of truth* for a user's
//! files — which makes restart amnesia unacceptable: a power cut must
//! not forget acknowledged PUTs, and a WebDAV lock held at crash time
//! must still be held (and still expire on its original deadline) after
//! the attic comes back. [`DurableAttic`] wraps [`ObjectStore`] +
//! [`LockManager`] in a [`Persistent`] machine: every mutating call is
//! WAL-logged before it is applied, and recovery replays the committed
//! prefix.
//!
//! Two design points worth noting:
//!
//! - **Ops record the original call arguments**, not derived results.
//!   `Lock` logs `(ttl, now)` rather than the absolute expiry, and the
//!   token is *not* logged at all — replaying `lock()` through the real
//!   [`LockManager`] regenerates the identical token from the
//!   deterministic counter. Replay is re-execution, so the recovered
//!   state is byte-identical to the pre-crash state by construction.
//! - **Failed ops are logged too.** A denied lock still purges expired
//!   locks as a side effect; logging the attempt keeps the replayed
//!   state in lockstep with what the live process saw.

use crate::lock::{LockDepth, LockError, LockManager, LockScope, LockToken};
use crate::store::{ObjectStore, PruneReport, StoreError};
use hpop_durability::codec::{ByteReader, ByteWriter};
use hpop_durability::{DurabilityConfig, Durable, Persistent, RecoveryReport};
use hpop_netsim::storage::{DiskError, SimDisk};
use hpop_netsim::time::{SimDuration, SimTime};

/// One logged attic mutation — the original call, argument for
/// argument, so replay is re-execution.
#[derive(Clone, Debug, PartialEq)]
enum AtticOp {
    Mkcol {
        path: String,
    },
    MkcolRecursive {
        path: String,
    },
    Put {
        path: String,
        body: Vec<u8>,
        now: SimTime,
    },
    Delete {
        path: String,
    },
    Copy {
        src: String,
        dst: String,
        now: SimTime,
    },
    Rename {
        src: String,
        dst: String,
        now: SimTime,
    },
    Lock {
        path: String,
        owner: String,
        scope: LockScope,
        depth: LockDepth,
        ttl: SimDuration,
        now: SimTime,
    },
    Unlock {
        path: String,
        token: LockToken,
        now: SimTime,
    },
    Refresh {
        path: String,
        token: LockToken,
        ttl: SimDuration,
        now: SimTime,
    },
    Prune {
        path: String,
        keep: u64,
        min_modified: SimTime,
    },
}

fn scope_to_u8(s: LockScope) -> u8 {
    match s {
        LockScope::Exclusive => 0,
        LockScope::Shared => 1,
    }
}

fn scope_from_u8(v: u8) -> Option<LockScope> {
    match v {
        0 => Some(LockScope::Exclusive),
        1 => Some(LockScope::Shared),
        _ => None,
    }
}

fn depth_to_u8(d: LockDepth) -> u8 {
    match d {
        LockDepth::Zero => 0,
        LockDepth::Infinity => 1,
    }
}

fn depth_from_u8(v: u8) -> Option<LockDepth> {
    match v {
        0 => Some(LockDepth::Zero),
        1 => Some(LockDepth::Infinity),
        _ => None,
    }
}

impl AtticOp {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            AtticOp::Mkcol { path } => {
                w.u8(1).str(path);
            }
            AtticOp::MkcolRecursive { path } => {
                w.u8(2).str(path);
            }
            AtticOp::Put { path, body, now } => {
                w.u8(3).str(path).bytes(body).u64(now.as_nanos());
            }
            AtticOp::Delete { path } => {
                w.u8(4).str(path);
            }
            AtticOp::Copy { src, dst, now } => {
                w.u8(5).str(src).str(dst).u64(now.as_nanos());
            }
            AtticOp::Rename { src, dst, now } => {
                w.u8(6).str(src).str(dst).u64(now.as_nanos());
            }
            AtticOp::Lock {
                path,
                owner,
                scope,
                depth,
                ttl,
                now,
            } => {
                w.u8(7)
                    .str(path)
                    .str(owner)
                    .u8(scope_to_u8(*scope))
                    .u8(depth_to_u8(*depth))
                    .u64(ttl.as_nanos())
                    .u64(now.as_nanos());
            }
            AtticOp::Unlock { path, token, now } => {
                w.u8(8).str(path).u64(token.value()).u64(now.as_nanos());
            }
            AtticOp::Refresh {
                path,
                token,
                ttl,
                now,
            } => {
                w.u8(9)
                    .str(path)
                    .u64(token.value())
                    .u64(ttl.as_nanos())
                    .u64(now.as_nanos());
            }
            AtticOp::Prune {
                path,
                keep,
                min_modified,
            } => {
                w.u8(10).str(path).u64(*keep).u64(min_modified.as_nanos());
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<AtticOp> {
        let mut r = ByteReader::new(bytes);
        let op = match r.u8()? {
            1 => AtticOp::Mkcol { path: r.str()? },
            2 => AtticOp::MkcolRecursive { path: r.str()? },
            3 => AtticOp::Put {
                path: r.str()?,
                body: r.bytes()?.to_vec(),
                now: SimTime::from_nanos(r.u64()?),
            },
            4 => AtticOp::Delete { path: r.str()? },
            5 => AtticOp::Copy {
                src: r.str()?,
                dst: r.str()?,
                now: SimTime::from_nanos(r.u64()?),
            },
            6 => AtticOp::Rename {
                src: r.str()?,
                dst: r.str()?,
                now: SimTime::from_nanos(r.u64()?),
            },
            7 => AtticOp::Lock {
                path: r.str()?,
                owner: r.str()?,
                scope: scope_from_u8(r.u8()?)?,
                depth: depth_from_u8(r.u8()?)?,
                ttl: SimDuration::from_nanos(r.u64()?),
                now: SimTime::from_nanos(r.u64()?),
            },
            8 => AtticOp::Unlock {
                path: r.str()?,
                token: LockToken::from_value(r.u64()?),
                now: SimTime::from_nanos(r.u64()?),
            },
            9 => AtticOp::Refresh {
                path: r.str()?,
                token: LockToken::from_value(r.u64()?),
                ttl: SimDuration::from_nanos(r.u64()?),
                now: SimTime::from_nanos(r.u64()?),
            },
            10 => AtticOp::Prune {
                path: r.str()?,
                keep: r.u64()?,
                min_modified: SimTime::from_nanos(r.u64()?),
            },
            _ => return None,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(op)
    }
}

/// The service-level result of one attic op, captured during `apply`.
#[derive(Clone, Debug, PartialEq)]
pub enum AtticOutcome {
    /// `mkcol` / `mkcol_recursive` / `copy` / `rename` result.
    Unit(Result<(), StoreError>),
    /// `put` result (the new ETag).
    Put(Result<String, StoreError>),
    /// `delete` result (nodes removed).
    Removed(Result<usize, StoreError>),
    /// `lock` result (the token).
    Lock(Result<LockToken, LockError>),
    /// `unlock` / `refresh` result.
    LockUnit(Result<(), LockError>),
    /// `prune` result (lifecycle compaction tally).
    Pruned(Result<PruneReport, StoreError>),
}

/// The attic's durable state: object store + lock table.
///
/// `last` is the transient outcome of the most recent `apply` — it is
/// *not* part of [`Durable::encode_state`], because it is call-result
/// plumbing, not state.
#[derive(Clone, Debug)]
pub struct AtticState {
    /// The versioned object store.
    pub store: ObjectStore,
    /// The WebDAV lock table.
    pub locks: LockManager,
    last: Option<AtticOutcome>,
}

impl AtticState {
    fn run(&mut self, op: &AtticOp) -> AtticOutcome {
        match op {
            AtticOp::Mkcol { path } => AtticOutcome::Unit(self.store.mkcol(path)),
            AtticOp::MkcolRecursive { path } => {
                AtticOutcome::Unit(self.store.mkcol_recursive(path))
            }
            AtticOp::Put { path, body, now } => {
                AtticOutcome::Put(self.store.put(path, body.clone(), *now))
            }
            AtticOp::Delete { path } => AtticOutcome::Removed(self.store.delete(path)),
            AtticOp::Copy { src, dst, now } => AtticOutcome::Unit(self.store.copy(src, dst, *now)),
            AtticOp::Rename { src, dst, now } => {
                AtticOutcome::Unit(self.store.rename(src, dst, *now))
            }
            AtticOp::Lock {
                path,
                owner,
                scope,
                depth,
                ttl,
                now,
            } => AtticOutcome::Lock(self.locks.lock(path, owner, *scope, *depth, *ttl, *now)),
            AtticOp::Unlock { path, token, now } => {
                AtticOutcome::LockUnit(self.locks.unlock(path, *token, *now))
            }
            AtticOp::Refresh {
                path,
                token,
                ttl,
                now,
            } => AtticOutcome::LockUnit(self.locks.refresh(path, *token, *ttl, *now)),
            AtticOp::Prune {
                path,
                keep,
                min_modified,
            } => AtticOutcome::Pruned(self.store.prune_noncurrent(
                path,
                usize::try_from(*keep).unwrap_or(usize::MAX),
                *min_modified,
            )),
        }
    }
}

impl Durable for AtticState {
    fn fresh() -> AtticState {
        AtticState {
            store: ObjectStore::new(),
            locks: LockManager::new(),
            last: None,
        }
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        // Store: writes counter, then every node in path order. ETags
        // are content-derived, so they are recomputed on decode rather
        // than stored.
        let nodes = self.store.nodes();
        w.u64(self.store.write_count()).u64(nodes.len() as u64);
        for (path, node) in nodes {
            w.str(path);
            match node {
                crate::store::Node::Collection => {
                    w.u8(0);
                }
                crate::store::Node::File { versions } => {
                    w.u8(1).u64(versions.len() as u64);
                    for v in versions {
                        w.bytes(&v.body).u64(v.modified_at.as_nanos());
                    }
                }
            }
        }
        // Locks: counter, then every entry with its absolute deadline
        // (expiry is lazy, so expired-but-unpurged entries are state).
        let (locks, next_token) = self.locks.table();
        w.u64(next_token).u64(locks.len() as u64);
        for (path, ls) in locks {
            w.str(path).u64(ls.len() as u64);
            for l in ls {
                w.u64(l.token.value())
                    .str(&l.owner)
                    .u8(scope_to_u8(l.scope))
                    .u8(depth_to_u8(l.depth))
                    .u64(l.expires_at.as_nanos());
            }
        }
        w.into_bytes()
    }

    fn decode_state(bytes: &[u8]) -> Option<AtticState> {
        let mut r = ByteReader::new(bytes);
        let writes = r.u64()?;
        let n_nodes = r.u64()?;
        let mut nodes = std::collections::BTreeMap::new();
        for _ in 0..n_nodes {
            let path = r.str()?;
            let node = match r.u8()? {
                0 => crate::store::Node::Collection,
                1 => {
                    let n_versions = r.u64()?;
                    let mut versions = Vec::with_capacity(n_versions.min(1 << 16) as usize);
                    for _ in 0..n_versions {
                        let body = r.bytes()?.to_vec();
                        let modified_at = SimTime::from_nanos(r.u64()?);
                        versions.push(crate::store::Version {
                            etag: crate::store::etag_of(&body),
                            body: body.into(),
                            modified_at,
                        });
                    }
                    crate::store::Node::File { versions }
                }
                _ => return None,
            };
            nodes.insert(path, node);
        }
        let next_token = r.u64()?;
        let n_paths = r.u64()?;
        let mut locks = std::collections::BTreeMap::new();
        for _ in 0..n_paths {
            let path = r.str()?;
            let n_locks = r.u64()?;
            let mut ls = Vec::with_capacity(n_locks.min(1 << 16) as usize);
            for _ in 0..n_locks {
                ls.push(crate::lock::Lock {
                    token: LockToken::from_value(r.u64()?),
                    owner: r.str()?,
                    scope: scope_from_u8(r.u8()?)?,
                    depth: depth_from_u8(r.u8()?)?,
                    expires_at: SimTime::from_nanos(r.u64()?),
                });
            }
            locks.insert(path, ls);
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(AtticState {
            store: ObjectStore::restore(nodes, writes),
            locks: LockManager::restore(locks, next_token),
            last: None,
        })
    }

    fn apply(&mut self, op: &[u8]) {
        if let Some(op) = AtticOp::decode(op) {
            let outcome = self.run(&op);
            self.last = Some(outcome);
        }
    }
}

/// A crash-consistent attic: every mutating call is durable before it
/// returns, and [`DurableAttic::open`] recovers the full store + lock
/// table after a crash.
///
/// Each mutator returns `Result<service result, DiskError>` — the outer
/// error is the device (power loss mid-call), the inner one the normal
/// WebDAV semantics.
#[derive(Clone, Debug)]
pub struct DurableAttic {
    inner: Persistent<AtticState>,
}

impl DurableAttic {
    /// Opens (recovers or initializes) an attic stored under `dir`.
    pub fn open(disk: SimDisk, dir: &str, cfg: DurabilityConfig) -> Result<Self, DiskError> {
        Ok(DurableAttic {
            inner: Persistent::open(disk, dir, cfg)?,
        })
    }

    fn run(&mut self, op: AtticOp) -> Result<AtticOutcome, DiskError> {
        self.inner.execute(&op.encode())?;
        Ok(self
            .inner
            .state()
            .last
            .clone()
            .expect("apply always records an outcome"))
    }

    /// Durable `MKCOL`.
    pub fn mkcol(&mut self, path: &str) -> Result<Result<(), StoreError>, DiskError> {
        match self.run(AtticOp::Mkcol { path: path.into() })? {
            AtticOutcome::Unit(r) => Ok(r),
            _ => unreachable!("mkcol yields a unit outcome"),
        }
    }

    /// Durable recursive `MKCOL`.
    pub fn mkcol_recursive(&mut self, path: &str) -> Result<Result<(), StoreError>, DiskError> {
        match self.run(AtticOp::MkcolRecursive { path: path.into() })? {
            AtticOutcome::Unit(r) => Ok(r),
            _ => unreachable!("mkcol_recursive yields a unit outcome"),
        }
    }

    /// Durable `PUT`; inner `Ok` is the new ETag.
    pub fn put(
        &mut self,
        path: &str,
        body: &[u8],
        now: SimTime,
    ) -> Result<Result<String, StoreError>, DiskError> {
        match self.run(AtticOp::Put {
            path: path.into(),
            body: body.to_vec(),
            now,
        })? {
            AtticOutcome::Put(r) => Ok(r),
            _ => unreachable!("put yields a put outcome"),
        }
    }

    /// Durable `DELETE`; inner `Ok` is nodes removed.
    pub fn delete(&mut self, path: &str) -> Result<Result<usize, StoreError>, DiskError> {
        match self.run(AtticOp::Delete { path: path.into() })? {
            AtticOutcome::Removed(r) => Ok(r),
            _ => unreachable!("delete yields a removed outcome"),
        }
    }

    /// Durable `COPY`.
    pub fn copy(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, DiskError> {
        match self.run(AtticOp::Copy {
            src: src.into(),
            dst: dst.into(),
            now,
        })? {
            AtticOutcome::Unit(r) => Ok(r),
            _ => unreachable!("copy yields a unit outcome"),
        }
    }

    /// Durable `MOVE`.
    pub fn rename(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, DiskError> {
        match self.run(AtticOp::Rename {
            src: src.into(),
            dst: dst.into(),
            now,
        })? {
            AtticOutcome::Unit(r) => Ok(r),
            _ => unreachable!("rename yields a unit outcome"),
        }
    }

    /// Durable `LOCK`; inner `Ok` is the token — regenerated
    /// identically on replay, so a token handed to a client before a
    /// crash still names the same lock after recovery.
    pub fn lock(
        &mut self,
        path: &str,
        owner: &str,
        scope: LockScope,
        depth: LockDepth,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<LockToken, LockError>, DiskError> {
        match self.run(AtticOp::Lock {
            path: path.into(),
            owner: owner.into(),
            scope,
            depth,
            ttl,
            now,
        })? {
            AtticOutcome::Lock(r) => Ok(r),
            _ => unreachable!("lock yields a lock outcome"),
        }
    }

    /// Durable `UNLOCK`.
    pub fn unlock(
        &mut self,
        path: &str,
        token: LockToken,
        now: SimTime,
    ) -> Result<Result<(), LockError>, DiskError> {
        match self.run(AtticOp::Unlock {
            path: path.into(),
            token,
            now,
        })? {
            AtticOutcome::LockUnit(r) => Ok(r),
            _ => unreachable!("unlock yields a lock-unit outcome"),
        }
    }

    /// Durable `LOCK` refresh.
    pub fn refresh(
        &mut self,
        path: &str,
        token: LockToken,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<(), LockError>, DiskError> {
        match self.run(AtticOp::Refresh {
            path: path.into(),
            token,
            ttl,
            now,
        })? {
            AtticOutcome::LockUnit(r) => Ok(r),
            _ => unreachable!("refresh yields a lock-unit outcome"),
        }
    }

    /// Durable lifecycle compaction: removes noncurrent versions of
    /// `path` beyond the `keep` newest or older than `min_modified`.
    /// Journaled like every other mutation, so a crash mid-compaction
    /// replays to the same post-compaction state — and the current
    /// version is never part of the op by construction.
    pub fn prune(
        &mut self,
        path: &str,
        keep: usize,
        min_modified: SimTime,
    ) -> Result<Result<PruneReport, StoreError>, DiskError> {
        match self.run(AtticOp::Prune {
            path: path.into(),
            keep: keep as u64,
            min_modified,
        })? {
            AtticOutcome::Pruned(r) => Ok(r),
            _ => unreachable!("prune yields a pruned outcome"),
        }
    }

    /// Read-only write admissibility (lock mediation) — not journaled:
    /// lock expiry is lazy, so a pure check never changes durable state.
    ///
    /// # Errors
    ///
    /// As [`LockManager::check_write_at`].
    pub fn check_write(
        &self,
        path: &str,
        token: Option<LockToken>,
        now: SimTime,
    ) -> Result<(), LockError> {
        self.inner.state().locks.check_write_at(path, token, now)
    }

    /// Read-only view of the recovered/live object store.
    pub fn store(&self) -> &ObjectStore {
        &self.inner.state().store
    }

    /// Read-only view of the recovered/live lock table (use
    /// [`LockManager::find`] for post-recovery lock discovery).
    pub fn locks(&self) -> &LockManager {
        &self.inner.state().locks
    }

    /// How the last open recovered.
    pub fn last_recovery(&self) -> &RecoveryReport {
        self.inner.last_recovery()
    }

    /// Highest committed op sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.inner.committed_seq()
    }

    /// The underlying device.
    pub fn disk(&self) -> &SimDisk {
        self.inner.disk()
    }

    /// Mutable device access (crash injection in tests).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        self.inner.disk_mut()
    }

    /// Tears down the process, keeping the platters.
    pub fn into_disk(self) -> SimDisk {
        self.inner.into_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_durability::crash_matrix;
    use hpop_netsim::storage::StorageFaults;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    const TTL: SimDuration = SimDuration::from_secs(300);

    fn cfg() -> DurabilityConfig {
        DurabilityConfig {
            max_segment_bytes: 512,
            snapshot_every_ops: 5,
            keep_snapshots: 2,
        }
    }

    #[test]
    fn ops_round_trip_through_the_codec() {
        let ops = vec![
            AtticOp::Mkcol { path: "/d".into() },
            AtticOp::MkcolRecursive {
                path: "/a/b/c".into(),
            },
            AtticOp::Put {
                path: "/d/f".into(),
                body: b"hello".to_vec(),
                now: t(3),
            },
            AtticOp::Delete {
                path: "/d/f".into(),
            },
            AtticOp::Copy {
                src: "/x".into(),
                dst: "/y".into(),
                now: t(4),
            },
            AtticOp::Rename {
                src: "/y".into(),
                dst: "/z".into(),
                now: t(5),
            },
            AtticOp::Lock {
                path: "/d/f".into(),
                owner: "word-proc".into(),
                scope: LockScope::Exclusive,
                depth: LockDepth::Infinity,
                ttl: TTL,
                now: t(6),
            },
            AtticOp::Unlock {
                path: "/d/f".into(),
                token: LockToken::from_value(7),
                now: t(7),
            },
            AtticOp::Refresh {
                path: "/d/f".into(),
                token: LockToken::from_value(7),
                ttl: TTL,
                now: t(8),
            },
            AtticOp::Prune {
                path: "/d/f".into(),
                keep: 3,
                min_modified: t(2),
            },
        ];
        for op in ops {
            assert_eq!(AtticOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn state_snapshot_round_trips() {
        let mut st = AtticState::fresh();
        st.store.mkcol("/docs").unwrap();
        st.store.put("/docs/a.txt", "v1", t(1)).unwrap();
        st.store.put("/docs/a.txt", "v2", t(2)).unwrap();
        st.locks
            .lock(
                "/docs/a.txt",
                "app",
                LockScope::Exclusive,
                LockDepth::Zero,
                TTL,
                t(2),
            )
            .unwrap();
        let bytes = st.encode_state();
        let back = AtticState::decode_state(&bytes).unwrap();
        assert_eq!(back.encode_state(), bytes);
        assert_eq!(back.store.get("/docs/a.txt").unwrap().etag, {
            st.store.get("/docs/a.txt").unwrap().etag.clone()
        });
    }

    #[test]
    fn restart_recovers_files_and_locks() {
        let mut attic =
            DurableAttic::open(SimDisk::new(11), "attic", DurabilityConfig::default()).unwrap();
        attic.mkcol("/docs").unwrap().unwrap();
        let etag = attic
            .put("/docs/a.txt", b"contents", t(1))
            .unwrap()
            .unwrap();
        let token = attic
            .lock(
                "/docs/a.txt",
                "word-proc",
                LockScope::Exclusive,
                LockDepth::Zero,
                TTL,
                t(2),
            )
            .unwrap()
            .unwrap();

        let mut disk = attic.into_disk();
        disk.restart();
        let attic = DurableAttic::open(disk, "attic", DurabilityConfig::default()).unwrap();
        assert_eq!(attic.store().get("/docs/a.txt").unwrap().etag, etag);
        let (owner, expires_at) = attic
            .locks()
            .find("/docs/a.txt", token, t(3))
            .expect("lock survives the restart");
        assert_eq!(owner, "word-proc");
        assert_eq!(expires_at, t(2) + TTL);
    }

    /// Satellite: a WebDAV lock held at crash time must be discoverable
    /// after WAL replay and must expire on its *original* deadline —
    /// recovery must not grant the holder extra time.
    #[test]
    fn lock_held_at_crash_expires_on_original_deadline() {
        let faults = StorageFaults {
            torn_write_fraction: 1.0,
            bitrot_flips_per_restart: 0.0,
        };
        let mut attic =
            DurableAttic::open(SimDisk::with_faults(23, faults), "attic", cfg()).unwrap();
        attic.put("/report.txt", b"draft", t(0)).unwrap().unwrap();
        let token = attic
            .lock(
                "/report.txt",
                "editor",
                LockScope::Exclusive,
                LockDepth::Zero,
                TTL,
                t(10),
            )
            .unwrap()
            .unwrap();

        // Crash mid-way through the *next* op's WAL append: the lock is
        // committed, the in-flight put is not.
        let crash_at = attic.disk().steps() + 1;
        attic.disk_mut().arm_crash(crash_at);
        assert!(attic.put("/report.txt", b"final", t(20)).is_err());

        let mut disk = attic.into_disk();
        disk.restart();
        let attic = DurableAttic::open(disk, "attic", cfg()).unwrap();
        // Discoverable after replay, same owner, same absolute deadline.
        let (owner, expires_at) = attic
            .locks()
            .find("/report.txt", token, t(20))
            .expect("committed lock survives the crash");
        assert_eq!(owner, "editor");
        assert_eq!(expires_at, t(10) + TTL);
        // And it expires exactly then — no post-recovery extension.
        assert!(attic
            .locks()
            .find("/report.txt", token, t(10) + TTL)
            .is_none());
        // The torn put never happened.
        assert_eq!(
            &attic.store().get("/report.txt").unwrap().body[..],
            b"draft"
        );
    }

    /// The exhaustive crash matrix over a mixed store + lock workload:
    /// crash at every I/O step, recover, and require the committed
    /// prefix — including regenerated lock tokens — byte for byte.
    #[test]
    fn crash_matrix_over_mixed_attic_workload() {
        let mut ops: Vec<Vec<u8>> = Vec::new();
        ops.push(
            AtticOp::MkcolRecursive {
                path: "/h/c".into(),
            }
            .encode(),
        );
        for i in 0..4u64 {
            ops.push(
                AtticOp::Put {
                    path: "/h/c/r.json".into(),
                    body: vec![b'a' + i as u8; 40 * (i as usize + 1)],
                    now: t(i),
                }
                .encode(),
            );
        }
        ops.push(
            AtticOp::Lock {
                path: "/h/c/r.json".into(),
                owner: "clinic".into(),
                scope: LockScope::Exclusive,
                depth: LockDepth::Infinity,
                ttl: TTL,
                now: t(4),
            }
            .encode(),
        );
        // A denied lock (conflict) — failed ops replay too.
        ops.push(
            AtticOp::Lock {
                path: "/h/c/r.json".into(),
                owner: "intruder".into(),
                scope: LockScope::Exclusive,
                depth: LockDepth::Zero,
                ttl: TTL,
                now: t(5),
            }
            .encode(),
        );
        ops.push(
            AtticOp::Copy {
                src: "/h/c/r.json".into(),
                dst: "/h/c/copy.json".into(),
                now: t(6),
            }
            .encode(),
        );
        ops.push(
            AtticOp::Unlock {
                path: "/h/c/r.json".into(),
                token: LockToken::from_value(1),
                now: t(7),
            }
            .encode(),
        );
        ops.push(
            AtticOp::Prune {
                path: "/h/c/r.json".into(),
                keep: 1,
                min_modified: SimTime::ZERO,
            }
            .encode(),
        );
        ops.push(
            AtticOp::Delete {
                path: "/h/c/copy.json".into(),
            }
            .encode(),
        );
        let outcome = crash_matrix::<AtticState>(41, cfg(), &ops);
        assert!(outcome.baseline_steps > ops.len() as u64);
        assert!(outcome.torn_tails > 0, "some crash points tear the tail");
    }
}
