//! WebDAV locking (RFC 4918 subset).
//!
//! §IV-A: "WebDAV further mediates access from multiple clients through
//! file locking" — the mechanism that lets several applications (the
//! clinic's records system, the user's word processor, a cloud app) share
//! one source of truth without clobbering each other. Exclusive and
//! shared locks, lock timeouts, and depth-infinity collection locks.

use hpop_netsim::time::{SimDuration, SimTime};
use hpop_obs::event;
use std::collections::BTreeMap;
use std::fmt;

/// An opaque lock token returned by LOCK and presented on writes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockToken(u64);

impl fmt::Display for LockToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "opaquelocktoken:{:016x}", self.0)
    }
}

impl LockToken {
    /// Parses the `opaquelocktoken:…` form produced by [`Display`].
    ///
    /// [`Display`]: std::fmt::Display
    pub fn parse(s: &str) -> Option<LockToken> {
        let hex = s.strip_prefix("opaquelocktoken:")?;
        u64::from_str_radix(hex, 16).ok().map(LockToken)
    }

    /// Raw value, for the durability adapter's wire encoding.
    pub(crate) fn value(self) -> u64 {
        self.0
    }

    /// Rebuilds a token from its raw value (durability adapter only).
    pub(crate) fn from_value(v: u64) -> LockToken {
        LockToken(v)
    }
}

/// Lock acquisition/verification errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockError {
    /// The resource (or an ancestor, via depth-infinity) is locked by
    /// someone else — WebDAV `423 Locked`.
    Locked {
        /// The conflicting lock's owner.
        holder: String,
    },
    /// The presented token doesn't match any live lock on the path.
    BadToken,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Locked { holder } => write!(f, "resource locked by {holder}"),
            LockError::BadToken => write!(f, "lock token does not match"),
        }
    }
}

impl std::error::Error for LockError {}

/// Exclusive vs shared locking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockScope {
    /// Only the holder may write.
    Exclusive,
    /// Multiple readers may hold simultaneously; excludes exclusive.
    Shared,
}

/// Lock depth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockDepth {
    /// The resource itself.
    Zero,
    /// The resource and everything beneath it.
    Infinity,
}

#[derive(Clone, Debug)]
pub(crate) struct Lock {
    pub(crate) token: LockToken,
    pub(crate) owner: String,
    pub(crate) scope: LockScope,
    pub(crate) depth: LockDepth,
    pub(crate) expires_at: SimTime,
}

/// The attic's lock table.
#[derive(Clone, Debug, Default)]
pub struct LockManager {
    locks: BTreeMap<String, Vec<Lock>>,
    next_token: u64,
}

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    fn purge(&mut self, now: SimTime) {
        for locks in self.locks.values_mut() {
            locks.retain(|l| l.expires_at > now);
        }
        self.locks.retain(|_, v| !v.is_empty());
    }

    /// Acquires a lock on `path`.
    ///
    /// # Errors
    ///
    /// [`LockError::Locked`] when an exclusive lock (or any lock, if
    /// requesting exclusive) covers the path.
    pub fn lock(
        &mut self,
        path: &str,
        owner: &str,
        scope: LockScope,
        depth: LockDepth,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<LockToken, LockError> {
        self.purge(now);
        let mediate_hist = hpop_obs::metrics().histogram("attic.lock.mediate_ns");
        let _mediate = hpop_obs::span!(mediate_hist);
        let conflict = self
            .covering_vec(path, now)
            .into_iter()
            .find(|l| scope == LockScope::Exclusive || l.scope == LockScope::Exclusive);
        if let Some(c) = conflict {
            self.note_denied(path, &c.owner, now);
            return Err(LockError::Locked {
                holder: c.owner.clone(),
            });
        }
        // An infinity lock also conflicts with existing locks *below* it.
        if depth == LockDepth::Infinity {
            let prefix = if path == "/" {
                "/".to_owned()
            } else {
                format!("{path}/")
            };
            let below = self
                .locks
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .flat_map(|(_, ls)| ls.iter())
                .find(|l| {
                    l.expires_at > now
                        && (scope == LockScope::Exclusive || l.scope == LockScope::Exclusive)
                });
            if let Some(c) = below {
                let holder = c.owner.clone();
                self.note_denied(path, &holder, now);
                return Err(LockError::Locked { holder });
            }
        }
        hpop_obs::metrics().counter("attic.lock.acquired").incr();
        self.next_token += 1;
        let token = LockToken(self.next_token);
        self.locks.entry(path.to_owned()).or_default().push(Lock {
            token,
            owner: owner.to_owned(),
            scope,
            depth,
            expires_at: now + ttl,
        });
        Ok(token)
    }

    fn note_denied(&self, path: &str, holder: &str, now: SimTime) {
        hpop_obs::metrics().counter("attic.lock.denied").incr();
        event!(
            hpop_obs::tracer(),
            now.as_nanos() / 1_000,
            "attic",
            "lock.denied",
            path = path,
            holder = holder
        );
    }

    fn covering_vec(&self, path: &str, now: SimTime) -> Vec<Lock> {
        let mut out = Vec::new();
        let mut ancestors = vec![path.to_owned()];
        let mut p = path.to_owned();
        while let Some(i) = p.rfind('/') {
            let parent = if i == 0 {
                "/".to_owned()
            } else {
                p[..i].to_owned()
            };
            ancestors.push(parent.clone());
            if parent == "/" {
                break;
            }
            p = parent;
        }
        for a in ancestors {
            if let Some(ls) = self.locks.get(&a) {
                for l in ls {
                    if l.expires_at > now && (a == path || l.depth == LockDepth::Infinity) {
                        out.push(l.clone());
                    }
                }
            }
        }
        out
    }

    /// Releases a lock by token.
    ///
    /// # Errors
    ///
    /// [`LockError::BadToken`] if no live lock on `path` has this token.
    pub fn unlock(&mut self, path: &str, token: LockToken, now: SimTime) -> Result<(), LockError> {
        self.purge(now);
        let locks = self.locks.get_mut(path).ok_or(LockError::BadToken)?;
        let before = locks.len();
        locks.retain(|l| l.token != token);
        if locks.len() == before {
            return Err(LockError::BadToken);
        }
        Ok(())
    }

    /// Extends a lock's lifetime (LOCK refresh).
    ///
    /// # Errors
    ///
    /// [`LockError::BadToken`] if the token doesn't match a live lock.
    pub fn refresh(
        &mut self,
        path: &str,
        token: LockToken,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<(), LockError> {
        self.purge(now);
        let lock = self
            .locks
            .get_mut(path)
            .and_then(|ls| ls.iter_mut().find(|l| l.token == token))
            .ok_or(LockError::BadToken)?;
        lock.expires_at = now + ttl;
        Ok(())
    }

    /// Verifies that a write to `path` is admissible: either no covering
    /// exclusive lock, or the presented token matches one.
    ///
    /// # Errors
    ///
    /// [`LockError::Locked`] when an exclusive lock covers the path and
    /// the token (if any) doesn't match it.
    pub fn check_write(
        &mut self,
        path: &str,
        token: Option<LockToken>,
        now: SimTime,
    ) -> Result<(), LockError> {
        self.purge(now);
        self.check_write_at(path, token, now)
    }

    /// [`LockManager::check_write`] without the purge — a read-only
    /// admissibility check. Expiry is evaluated lazily against `now`,
    /// so skipping the purge never changes the verdict; this variant is
    /// what backends without interior mutability (the durable attic,
    /// whose lock table is only mutated through the journal) use.
    ///
    /// # Errors
    ///
    /// As [`LockManager::check_write`].
    pub fn check_write_at(
        &self,
        path: &str,
        token: Option<LockToken>,
        now: SimTime,
    ) -> Result<(), LockError> {
        let mediate_hist = hpop_obs::metrics().histogram("attic.lock.mediate_ns");
        let _mediate = hpop_obs::span!(mediate_hist);
        let covering = self.covering_vec(path, now);
        let exclusive: Vec<&Lock> = covering
            .iter()
            .filter(|l| l.scope == LockScope::Exclusive)
            .collect();
        if exclusive.is_empty() {
            hpop_obs::metrics().counter("attic.write.allowed").incr();
            return Ok(());
        }
        match token {
            Some(t) if exclusive.iter().any(|l| l.token == t) => {
                hpop_obs::metrics().counter("attic.write.allowed").incr();
                Ok(())
            }
            _ => {
                hpop_obs::metrics().counter("attic.write.denied").incr();
                event!(
                    hpop_obs::tracer(),
                    now.as_nanos() / 1_000,
                    "attic",
                    "write.denied",
                    path = path,
                    holder = exclusive[0].owner.as_str()
                );
                Err(LockError::Locked {
                    holder: exclusive[0].owner.clone(),
                })
            }
        }
    }

    /// Number of live locks at `now`.
    pub fn live_count(&mut self, now: SimTime) -> usize {
        self.purge(now);
        self.locks.values().map(Vec::len).sum()
    }

    /// All locks (live and expired — expiry is evaluated lazily
    /// against `now`, so absolute deadlines survive a snapshot), plus
    /// the token counter. Durability adapter only.
    pub(crate) fn table(&self) -> (&BTreeMap<String, Vec<Lock>>, u64) {
        (&self.locks, self.next_token)
    }

    /// Rebuilds the lock table from snapshot-decoded parts
    /// (durability adapter only).
    pub(crate) fn restore(locks: BTreeMap<String, Vec<Lock>>, next_token: u64) -> LockManager {
        LockManager { locks, next_token }
    }

    /// The lock covering `path` with this token, if it is still live
    /// at `now` — lock discovery after crash recovery.
    pub fn find(&self, path: &str, token: LockToken, now: SimTime) -> Option<(String, SimTime)> {
        self.locks.get(path).and_then(|ls| {
            ls.iter()
                .find(|l| l.token == token && l.expires_at > now)
                .map(|l| (l.owner.clone(), l.expires_at))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    const TTL: SimDuration = SimDuration::from_secs(60);

    #[test]
    fn exclusive_lock_blocks_others() {
        let mut lm = LockManager::new();
        let tok = lm
            .lock(
                "/f",
                "word-proc",
                LockScope::Exclusive,
                LockDepth::Zero,
                TTL,
                t(0),
            )
            .unwrap();
        let err = lm
            .lock(
                "/f",
                "cloud-app",
                LockScope::Exclusive,
                LockDepth::Zero,
                TTL,
                t(1),
            )
            .unwrap_err();
        assert_eq!(
            err,
            LockError::Locked {
                holder: "word-proc".into()
            }
        );
        // Writes without the token are refused; with it they pass.
        assert!(lm.check_write("/f", None, t(1)).is_err());
        assert!(lm.check_write("/f", Some(tok), t(1)).is_ok());
    }

    #[test]
    fn shared_locks_coexist_but_exclude_exclusive() {
        let mut lm = LockManager::new();
        lm.lock("/f", "r1", LockScope::Shared, LockDepth::Zero, TTL, t(0))
            .unwrap();
        lm.lock("/f", "r2", LockScope::Shared, LockDepth::Zero, TTL, t(0))
            .unwrap();
        assert!(lm
            .lock("/f", "w", LockScope::Exclusive, LockDepth::Zero, TTL, t(0))
            .is_err());
        assert_eq!(lm.live_count(t(0)), 2);
        // Shared locks don't block writes in this model (they guard reads).
        assert!(lm.check_write("/f", None, t(0)).is_ok());
    }

    #[test]
    fn locks_expire() {
        let mut lm = LockManager::new();
        lm.lock("/f", "a", LockScope::Exclusive, LockDepth::Zero, TTL, t(0))
            .unwrap();
        assert!(lm.check_write("/f", None, t(59)).is_err());
        assert!(lm.check_write("/f", None, t(61)).is_ok());
        assert_eq!(lm.live_count(t(61)), 0);
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut lm = LockManager::new();
        let tok = lm
            .lock("/f", "a", LockScope::Exclusive, LockDepth::Zero, TTL, t(0))
            .unwrap();
        lm.refresh("/f", tok, TTL, t(50)).unwrap();
        assert!(lm.check_write("/f", None, t(100)).is_err());
        assert!(lm.refresh("/f", LockToken(999), TTL, t(50)).is_err());
    }

    #[test]
    fn unlock_releases() {
        let mut lm = LockManager::new();
        let tok = lm
            .lock("/f", "a", LockScope::Exclusive, LockDepth::Zero, TTL, t(0))
            .unwrap();
        assert_eq!(
            lm.unlock("/f", LockToken(999), t(1)),
            Err(LockError::BadToken)
        );
        lm.unlock("/f", tok, t(1)).unwrap();
        assert!(lm.check_write("/f", None, t(1)).is_ok());
        assert_eq!(lm.unlock("/f", tok, t(1)), Err(LockError::BadToken));
    }

    #[test]
    fn depth_infinity_covers_descendants() {
        let mut lm = LockManager::new();
        let tok = lm
            .lock(
                "/records",
                "clinic",
                LockScope::Exclusive,
                LockDepth::Infinity,
                TTL,
                t(0),
            )
            .unwrap();
        assert!(lm
            .check_write("/records/2026/visit.json", None, t(1))
            .is_err());
        assert!(lm
            .check_write("/records/2026/visit.json", Some(tok), t(1))
            .is_ok());
        // Sibling trees unaffected.
        assert!(lm.check_write("/photos/x.jpg", None, t(1)).is_ok());
        // And a new lock below the locked tree is refused.
        assert!(lm
            .lock(
                "/records/2026",
                "other",
                LockScope::Exclusive,
                LockDepth::Zero,
                TTL,
                t(1)
            )
            .is_err());
    }

    #[test]
    fn infinity_lock_conflicts_with_existing_descendant_lock() {
        let mut lm = LockManager::new();
        lm.lock(
            "/d/f",
            "a",
            LockScope::Exclusive,
            LockDepth::Zero,
            TTL,
            t(0),
        )
        .unwrap();
        assert!(lm
            .lock(
                "/d",
                "b",
                LockScope::Exclusive,
                LockDepth::Infinity,
                TTL,
                t(0)
            )
            .is_err());
    }

    #[test]
    fn depth_zero_does_not_cover_children() {
        let mut lm = LockManager::new();
        lm.lock("/d", "a", LockScope::Exclusive, LockDepth::Zero, TTL, t(0))
            .unwrap();
        assert!(lm.check_write("/d/child", None, t(0)).is_ok());
    }

    #[test]
    fn token_display() {
        let mut lm = LockManager::new();
        let tok = lm
            .lock("/f", "a", LockScope::Exclusive, LockDepth::Zero, TTL, t(0))
            .unwrap();
        assert!(tok.to_string().starts_with("opaquelocktoken:"));
    }
}
