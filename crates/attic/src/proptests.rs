//! Property-based tests of the attic's storage and locking invariants.

use crate::backup::{BackupPlan, BackupSet};
use crate::lock::{LockDepth, LockManager, LockScope};
use crate::store::ObjectStore;
use hpop_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn valid_segment() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,8}".prop_map(|s| s)
}

fn valid_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(valid_segment(), 1..4).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// The last PUT always wins; history length equals the number of
    /// PUTs; the ETag identifies content, not time.
    #[test]
    fn store_last_write_wins(
        path in valid_path(),
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..10),
    ) {
        let mut store = ObjectStore::new();
        // Ensure parents exist (put requires the parent collection).
        if let Some(idx) = path.rfind('/') {
            if idx > 0 {
                store.mkcol_recursive(&path[..idx]).expect("parents");
            }
        }
        for (i, b) in bodies.iter().enumerate() {
            store.put(&path, b.clone(), SimTime::from_secs(i as u64)).expect("put");
        }
        let latest = store.get(&path).expect("exists");
        prop_assert_eq!(&latest.body[..], bodies.last().expect("non-empty").as_slice());
        prop_assert_eq!(store.history(&path).expect("exists").len(), bodies.len());
        // Same content ⇒ same etag (content addressing).
        prop_assert_eq!(&latest.etag, &crate::store::etag_of(bodies.last().expect("non-empty")));
    }

    /// Deleting a collection removes exactly its subtree, nothing else.
    #[test]
    fn delete_is_subtree_exact(
        keep in valid_path(),
        doomed_children in proptest::collection::vec(valid_segment(), 1..6),
    ) {
        prop_assume!(!keep.starts_with("/doomed"));
        let mut store = ObjectStore::new();
        if let Some(idx) = keep.rfind('/') {
            if idx > 0 {
                store.mkcol_recursive(&keep[..idx]).expect("parents");
            }
        }
        store.put(&keep, "keep", SimTime::ZERO).expect("keep path");
        store.mkcol("/doomed").expect("mkcol");
        for c in &doomed_children {
            store.put(&format!("/doomed/{c}"), "x", SimTime::ZERO).expect("child");
        }
        store.delete("/doomed").expect("delete");
        prop_assert!(store.exists(&keep));
        prop_assert!(!store.exists("/doomed"));
        for c in &doomed_children {
            let child = format!("/doomed/{c}");
            prop_assert!(!store.exists(&child));
        }
    }

    /// An exclusive lock blocks all tokenless writes until expiry or
    /// unlock, and never blocks its holder.
    #[test]
    fn exclusive_lock_gate(path in valid_path(), ttl_s in 1u64..1_000) {
        let mut lm = LockManager::new();
        let t0 = SimTime::ZERO;
        let tok = lm
            .lock(&path, "owner", LockScope::Exclusive, LockDepth::Zero, SimDuration::from_secs(ttl_s), t0)
            .expect("first lock");
        let mid = SimTime::from_secs(ttl_s / 2);
        prop_assert!(lm.check_write(&path, None, mid).is_err());
        prop_assert!(lm.check_write(&path, Some(tok), mid).is_ok());
        let after = SimTime::from_secs(ttl_s + 1);
        prop_assert!(lm.check_write(&path, None, after).is_ok());
    }

    /// Erasure backups restore exactly when at least `k` shards survive.
    #[test]
    fn backup_threshold_is_sharp(
        blob in proptest::collection::vec(any::<u8>(), 0..300),
        k in 1u32..6,
        m in 1u32..4,
        losses in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let key = [7u8; 32];
        let plan = BackupPlan::Erasure { data: k, parity: m };
        let mut set = BackupSet::create(&blob, &key, "prop", plan).expect("create");
        let n = (k + m) as usize;
        for l in losses {
            set.lose_peer(l.index(n));
        }
        let survivors = set.surviving_peers();
        let restored = set.restore(&key, "prop");
        if survivors >= k as usize {
            prop_assert_eq!(restored.expect("enough shards"), blob);
        } else {
            prop_assert!(restored.is_err());
        }
    }
}

mod dav_xml {
    use crate::dav::{
        xml_escape, xml_unescape, DavResponse, MultiStatus, PropValue, PropfindBody, Propstat,
    };
    use hpop_http::message::StatusCode;
    use proptest::prelude::*;

    /// Property names as the encoder emits them (element names, so no
    /// spaces or XML metacharacters).
    fn prop_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9-]{0,11}".prop_map(|s| s)
    }

    /// Text content including every escapable character. The tokenizer
    /// trims surrounding whitespace, so strategies pre-trim — interior
    /// whitespace and entities are the interesting cases anyway.
    fn text_value() -> impl Strategy<Value = String> {
        "[ -~]{0,24}".prop_map(|s| s.trim().to_owned())
    }

    fn prop_value() -> impl Strategy<Value = PropValue> {
        prop_oneof![
            text_value().prop_map(PropValue::Text),
            Just(PropValue::Collection),
            Just(PropValue::Empty),
        ]
    }

    fn propstat() -> impl Strategy<Value = Propstat> {
        (
            prop_oneof![Just(200u16), Just(403), Just(404), Just(423), Just(507)],
            proptest::collection::vec((prop_name(), prop_value()), 0..6),
        )
            .prop_map(|(code, props)| Propstat {
                status: StatusCode(code),
                props,
            })
    }

    fn dav_response() -> impl Strategy<Value = DavResponse> {
        (
            "(/[a-zA-Z0-9 &<>'\"._-]{1,8}){1,4}(\\?version=[0-9]{1,3})?",
            proptest::collection::vec(propstat(), 1..4),
        )
            .prop_map(|(href, propstats)| DavResponse {
                href: href.trim().to_owned(),
                propstats,
            })
    }

    proptest! {
        /// Escaping is lossless for arbitrary text, and the escaped form
        /// never contains raw XML metacharacters.
        #[test]
        fn escape_round_trips(s in "\\PC{0,40}") {
            let escaped = xml_escape(&s);
            prop_assert!(!escaped.contains('<'));
            prop_assert!(!escaped.contains('>'));
            prop_assert!(!escaped.contains('"'));
            prop_assert_eq!(xml_unescape(&escaped), s);
        }

        /// encode ∘ parse = id for the full Multi-Status document
        /// shape: nested hrefs (with metacharacters and `?version=`
        /// suffixes), mixed 200/404/other propstats, all three property
        /// value kinds.
        #[test]
        fn multistatus_round_trips(
            responses in proptest::collection::vec(dav_response(), 0..6),
        ) {
            let doc = MultiStatus { responses };
            let xml = doc.to_xml();
            let back = MultiStatus::parse(&xml).expect("own output parses");
            prop_assert_eq!(back, doc);
        }

        /// A re-encode of a parse is byte-stable (the codec has one
        /// canonical form).
        #[test]
        fn multistatus_encoding_is_canonical(
            responses in proptest::collection::vec(dav_response(), 0..4),
        ) {
            let xml = MultiStatus { responses }.to_xml();
            let again = MultiStatus::parse(&xml).expect("parses").to_xml();
            prop_assert_eq!(again, xml);
        }

        /// PROPFIND bodies round-trip through their XML form.
        #[test]
        fn propfind_body_round_trips(
            body in prop_oneof![
                Just(PropfindBody::AllProp),
                Just(PropfindBody::PropName),
                proptest::collection::vec(prop_name(), 1..8).prop_map(PropfindBody::Props),
            ],
        ) {
            let xml = body.to_xml();
            prop_assert_eq!(PropfindBody::parse(&xml).expect("parses"), body);
        }
    }
}

mod server_fuzz {
    use crate::server::AtticServer;
    use hpop_core::auth::TokenVerifier;
    use hpop_http::message::{Method, Request};
    use hpop_http::url::Url;
    use hpop_netsim::time::SimTime;
    use proptest::prelude::*;

    fn method_strategy() -> impl Strategy<Value = Method> {
        prop_oneof![
            Just(Method::Get),
            Just(Method::Head),
            Just(Method::Put),
            Just(Method::Post),
            Just(Method::Delete),
            Just(Method::Options),
            Just(Method::PropFind),
            Just(Method::PropPatch),
            Just(Method::MkCol),
            Just(Method::Copy),
            Just(Method::Move),
            Just(Method::Lock),
            Just(Method::Unlock),
        ]
    }

    proptest! {
        /// The attic server never panics and always answers with a
        /// well-formed status, whatever method/path/header soup arrives —
        /// including malformed lock tokens, destinations and conditions.
        #[test]
        fn server_total_on_arbitrary_requests(
            ops in proptest::collection::vec(
                (
                    method_strategy(),
                    "(/[a-z]{1,4}){1,3}|/|//bad|/trailing/",
                    proptest::collection::vec(any::<u8>(), 0..32),
                    proptest::option::of("[ -~]{0,24}"),
                    proptest::option::of("[ -~]{0,24}"),
                ),
                1..40,
            ),
        ) {
            let mut server = AtticServer::new(TokenVerifier::new([1u8; 32]));
            for (i, (method, path, body, lock_hdr, dest_hdr)) in ops.into_iter().enumerate() {
                let mut req = Request::new(method, Url::https("attic.home", &path));
                req.body = body.into();
                if let Some(l) = lock_hdr {
                    req.headers.set("lock-token", l);
                }
                if let Some(d) = dest_hdr {
                    req.headers.set("destination", d);
                }
                let resp = server.handle_local(&req, SimTime::from_secs(i as u64));
                prop_assert!(
                    (200..600).contains(&resp.status.0),
                    "status {} for {method:?} {path}",
                    resp.status.0
                );
                // External handling is equally total (401s without auth).
                let resp = server.handle_external(&req, SimTime::from_secs(i as u64));
                prop_assert!((200..600).contains(&resp.status.0));
            }
        }
    }
}
