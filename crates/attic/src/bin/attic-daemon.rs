//! `attic-daemon` — the data attic on a real socket.
//!
//! The same [`hpop_attic::DavCore`] that the netsim fabric drives
//! in-process is bound here to a loopback TCP listener via the
//! [`hpop_attic::AtticDaemon`] adapter: HTTP/1.1 framing, per-connection
//! deadlines, graceful shutdown.
//!
//! ```text
//! attic-daemon [--bind ADDR] [--durable]
//! ```
//!
//! `--bind` defaults to `127.0.0.1:0` (ephemeral port, printed on
//! stdout). `--durable` journals every mutation through the
//! write-ahead-log backend instead of the volatile store. The daemon
//! runs until stdin reaches EOF (pipe-friendly: `attic-daemon <
//! /dev/null` serves nothing and exits cleanly after binding).

use hpop_attic::{AtticDaemon, DaemonConfig, DavCore, DurableAttic, VolatileBackend};
use hpop_core::auth::TokenVerifier;
use hpop_durability::DurabilityConfig;
use hpop_netsim::storage::SimDisk;
use std::io::BufRead;

/// Capability-token key for external grants. A real deployment would
/// provision this at pairing time (the paper's QR-code bootstrap); the
/// demo daemon uses a fixed key so grant flows are reproducible.
const DEMO_KEY: [u8; 32] = [7u8; 32];

fn main() {
    let mut bind = "127.0.0.1:0".to_owned();
    let mut durable = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => bind = args.next().expect("--bind needs an address"),
            "--durable" => durable = true,
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: attic-daemon [--bind ADDR] [--durable]");
                std::process::exit(2);
            }
        }
    }

    let cfg = DaemonConfig {
        bind,
        ..DaemonConfig::default()
    };
    let verifier = TokenVerifier::new(DEMO_KEY);
    if durable {
        let attic = DurableAttic::open(SimDisk::new(1), "attic", DurabilityConfig::default())
            .expect("open journal");
        serve(AtticDaemon::spawn(cfg, DavCore::new(attic, verifier)));
    } else {
        serve(AtticDaemon::spawn(
            cfg,
            DavCore::new(VolatileBackend::new(), verifier),
        ));
    }
}

fn serve<B: hpop_attic::AtticBackend + Send + 'static>(
    handle: std::io::Result<hpop_attic::DaemonHandle<B>>,
) {
    let handle = match handle {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("attic-daemon listening on {}", handle.addr());

    // Serve until the controlling pipe closes.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        if line.is_err() {
            break;
        }
    }
    let stats = handle.stop();
    eprintln!(
        "attic-daemon: {} connections, {} requests, {} bad frames",
        stats.connections, stats.requests, stats.bad_frames
    );
}
