//! The attic's versioned object store.
//!
//! One canonical copy of every file ("maintaining a single source for a
//! file", §IV-A), with linear version history, content ETags, and
//! WebDAV-style collections (directories).

use bytes::Bytes;
use hpop_crypto::sha256::Sha256;
use hpop_netsim::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The path does not exist.
    NotFound,
    /// A parent collection is missing (WebDAV `409 Conflict`).
    MissingParent,
    /// The path exists with the wrong kind (file vs collection).
    Conflict,
    /// Paths must be absolute and normalized.
    BadPath,
    /// Destination already exists (COPY/MOVE without overwrite).
    DestinationExists,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StoreError::NotFound => "path not found",
            StoreError::MissingParent => "parent collection missing",
            StoreError::Conflict => "path kind conflict",
            StoreError::BadPath => "malformed path",
            StoreError::DestinationExists => "destination exists",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StoreError {}

/// What a lifecycle prune removed from one file's history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Noncurrent versions removed.
    pub removed_versions: u64,
    /// Bytes those versions held.
    pub reclaimed_bytes: u64,
}

/// A stored file version.
#[derive(Clone, Debug)]
pub struct Version {
    /// Content bytes.
    pub body: Bytes,
    /// Content hash tag (strong ETag).
    pub etag: String,
    /// When this version was written.
    pub modified_at: SimTime,
}

#[derive(Clone, Debug)]
pub(crate) enum Node {
    Collection,
    File { versions: Vec<Version> },
}

/// Computes the strong ETag of a body.
pub fn etag_of(body: &[u8]) -> String {
    format!("\"{}\"", &Sha256::digest(body).to_hex()[..16])
}

/// The versioned, hierarchical object store.
#[derive(Clone, Debug)]
pub struct ObjectStore {
    nodes: BTreeMap<String, Node>,
    writes: u64,
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

fn validate(path: &str) -> Result<(), StoreError> {
    if !path.starts_with('/') || path.contains("//") || (path.ends_with('/') && path != "/") {
        return Err(StoreError::BadPath);
    }
    Ok(())
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

impl ObjectStore {
    /// An empty store containing only the root collection.
    pub fn new() -> ObjectStore {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_owned(), Node::Collection);
        ObjectStore { nodes, writes: 0 }
    }

    /// Whether `path` exists (file or collection).
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Whether `path` is a collection.
    pub fn is_collection(&self, path: &str) -> bool {
        matches!(self.nodes.get(path), Some(Node::Collection))
    }

    /// Creates a collection (WebDAV `MKCOL`).
    ///
    /// # Errors
    ///
    /// Fails if the path is malformed, the parent is missing, or the
    /// path already exists.
    pub fn mkcol(&mut self, path: &str) -> Result<(), StoreError> {
        validate(path)?;
        if self.nodes.contains_key(path) {
            return Err(StoreError::Conflict);
        }
        let parent = parent_of(path).ok_or(StoreError::BadPath)?;
        if !self.is_collection(parent) {
            return Err(StoreError::MissingParent);
        }
        self.nodes.insert(path.to_owned(), Node::Collection);
        Ok(())
    }

    /// Creates every missing collection along `path` (setup helper).
    ///
    /// # Errors
    ///
    /// Fails on malformed paths or when a segment exists as a file.
    pub fn mkcol_recursive(&mut self, path: &str) -> Result<(), StoreError> {
        validate(path)?;
        let mut at = String::new();
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            at.push('/');
            at.push_str(seg);
            match self.nodes.get(&at) {
                Some(Node::Collection) => {}
                Some(Node::File { .. }) => return Err(StoreError::Conflict),
                None => {
                    self.nodes.insert(at.clone(), Node::Collection);
                }
            }
        }
        Ok(())
    }

    /// Writes a file version (`PUT`): creates the file or appends to its
    /// history. Returns the new version's ETag.
    ///
    /// # Errors
    ///
    /// Fails if the parent collection is missing, the path names a
    /// collection, or the path is malformed.
    pub fn put(
        &mut self,
        path: &str,
        body: impl Into<Bytes>,
        now: SimTime,
    ) -> Result<String, StoreError> {
        validate(path)?;
        let parent = parent_of(path).ok_or(StoreError::BadPath)?;
        if !self.is_collection(parent) {
            return Err(StoreError::MissingParent);
        }
        let body = body.into();
        let etag = etag_of(&body);
        let version = Version {
            body,
            etag: etag.clone(),
            modified_at: now,
        };
        match self.nodes.get_mut(path) {
            Some(Node::Collection) => return Err(StoreError::Conflict),
            Some(Node::File { versions }) => versions.push(version),
            None => {
                self.nodes.insert(
                    path.to_owned(),
                    Node::File {
                        versions: vec![version],
                    },
                );
            }
        }
        self.writes += 1;
        Ok(etag)
    }

    /// Reads the latest version of a file (`GET`).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if missing; [`StoreError::Conflict`] if
    /// the path is a collection.
    pub fn get(&self, path: &str) -> Result<&Version, StoreError> {
        match self.nodes.get(path) {
            // Files always hold >= 1 version (put never creates an empty
            // history), but a read route must not panic: treat the
            // impossible empty history as absence, not a crash.
            Some(Node::File { versions }) => versions.last().ok_or(StoreError::NotFound),
            Some(Node::Collection) => Err(StoreError::Conflict),
            None => Err(StoreError::NotFound),
        }
    }

    /// The full version history of a file, oldest first.
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::get`].
    pub fn history(&self, path: &str) -> Result<&[Version], StoreError> {
        match self.nodes.get(path) {
            Some(Node::File { versions }) => Ok(versions),
            Some(Node::Collection) => Err(StoreError::Conflict),
            None => Err(StoreError::NotFound),
        }
    }

    /// Deletes a file, or a collection and everything under it
    /// (`DELETE`). Returns how many nodes were removed.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the path is missing; the root cannot
    /// be deleted ([`StoreError::BadPath`]).
    pub fn delete(&mut self, path: &str) -> Result<usize, StoreError> {
        if path == "/" {
            return Err(StoreError::BadPath);
        }
        if !self.nodes.contains_key(path) {
            return Err(StoreError::NotFound);
        }
        let prefix = format!("{path}/");
        let doomed: Vec<String> = self
            .nodes
            .keys()
            .filter(|k| *k == path || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in &doomed {
            self.nodes.remove(k);
        }
        Ok(doomed.len())
    }

    /// Lists the immediate children of a collection (`PROPFIND` depth 1),
    /// as `(name, is_collection)` pairs in sorted order.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / [`StoreError::Conflict`] as usual.
    pub fn list(&self, path: &str) -> Result<Vec<(String, bool)>, StoreError> {
        match self.nodes.get(path) {
            Some(Node::Collection) => {}
            Some(Node::File { .. }) => return Err(StoreError::Conflict),
            None => return Err(StoreError::NotFound),
        }
        let prefix = if path == "/" {
            "/".to_owned()
        } else {
            format!("{path}/")
        };
        Ok(self
            .nodes
            .iter()
            .filter(|(k, _)| {
                k.starts_with(&prefix) && k.len() > prefix.len() && !k[prefix.len()..].contains('/')
            })
            .map(|(k, n)| (k.clone(), matches!(n, Node::Collection)))
            .collect())
    }

    /// Every descendant of a collection (`PROPFIND` depth infinity),
    /// as `(path, is_collection)` pairs in sorted path order; the
    /// resource itself is not included.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / [`StoreError::Conflict`] as
    /// [`ObjectStore::list`].
    pub fn descendants(&self, path: &str) -> Result<Vec<(String, bool)>, StoreError> {
        match self.nodes.get(path) {
            Some(Node::Collection) => {}
            Some(Node::File { .. }) => return Err(StoreError::Conflict),
            None => return Err(StoreError::NotFound),
        }
        let prefix = if path == "/" {
            "/".to_owned()
        } else {
            format!("{path}/")
        };
        Ok(self
            .nodes
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix) && k.len() > prefix.len())
            .map(|(k, n)| (k.clone(), matches!(n, Node::Collection)))
            .collect())
    }

    /// Removes noncurrent versions of a file: a noncurrent version
    /// survives only if it is among the `keep` newest noncurrent
    /// versions **and** was written at or after `min_modified`. The
    /// current (latest) version is never touched — lifecycle compaction
    /// must not delete acknowledged data.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if `path` is missing,
    /// [`StoreError::Conflict`] if it names a collection.
    pub fn prune_noncurrent(
        &mut self,
        path: &str,
        keep: usize,
        min_modified: SimTime,
    ) -> Result<PruneReport, StoreError> {
        let versions = match self.nodes.get_mut(path) {
            Some(Node::File { versions }) => versions,
            Some(Node::Collection) => return Err(StoreError::Conflict),
            None => return Err(StoreError::NotFound),
        };
        let n = versions.len();
        let mut report = PruneReport::default();
        let mut idx = 0usize;
        versions.retain(|v| {
            let i = idx;
            idx += 1;
            let is_current = i + 1 == n;
            // Rank 1 = newest noncurrent, rank 2 = the one before it …
            let rank = n - 1 - i;
            let keep_it = is_current || (rank <= keep && v.modified_at >= min_modified);
            if !keep_it {
                report.removed_versions += 1;
                report.reclaimed_bytes += v.body.len() as u64;
            }
            keep_it
        });
        Ok(report)
    }

    /// Total bytes across *all* versions (the number lifecycle
    /// compaction shrinks; compare [`ObjectStore::latest_bytes`]).
    pub fn total_bytes(&self) -> u64 {
        self.nodes
            .values()
            .map(|n| match n {
                Node::File { versions } => versions.iter().map(|v| v.body.len() as u64).sum(),
                Node::Collection => 0,
            })
            .sum()
    }

    /// Copies a file (`COPY`). The destination must not exist.
    ///
    /// # Errors
    ///
    /// Source must be a file; destination parent must exist.
    pub fn copy(&mut self, src: &str, dst: &str, now: SimTime) -> Result<(), StoreError> {
        if self.nodes.contains_key(dst) {
            return Err(StoreError::DestinationExists);
        }
        let body = self.get(src)?.body.clone();
        self.put(dst, body, now)?;
        Ok(())
    }

    /// Moves a file (`MOVE`): copy then delete the source.
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::copy`].
    pub fn rename(&mut self, src: &str, dst: &str, now: SimTime) -> Result<(), StoreError> {
        self.copy(src, dst, now)?;
        self.delete(src)?;
        Ok(())
    }

    /// All file paths under a prefix (the backup and health services
    /// enumerate with this).
    pub fn files_under(&self, prefix: &str) -> Vec<String> {
        let want = if prefix == "/" {
            "/".to_owned()
        } else {
            format!("{prefix}/")
        };
        self.nodes
            .iter()
            .filter(|(k, n)| {
                matches!(n, Node::File { .. }) && (k.starts_with(&want) || *k == prefix)
            })
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Total writes performed (experiment metric).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Full node table, for the durability adapter's state snapshot.
    pub(crate) fn nodes(&self) -> &BTreeMap<String, Node> {
        &self.nodes
    }

    /// Rebuilds a store from snapshot-decoded parts (durability
    /// adapter only — no validation is re-run).
    pub(crate) fn restore(nodes: BTreeMap<String, Node>, writes: u64) -> ObjectStore {
        ObjectStore { nodes, writes }
    }

    /// Total bytes of latest versions (storage footprint).
    pub fn latest_bytes(&self) -> u64 {
        self.nodes
            .values()
            .map(|n| match n {
                Node::File { versions } => versions.last().map_or(0, |v| v.body.len() as u64),
                Node::Collection => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn put_get_roundtrip_with_versions() {
        let mut s = ObjectStore::new();
        let e1 = s.put("/a.txt", "v1", t(1)).unwrap();
        let e2 = s.put("/a.txt", "v2", t(2)).unwrap();
        assert_ne!(e1, e2);
        let v = s.get("/a.txt").unwrap();
        assert_eq!(&v.body[..], b"v2");
        assert_eq!(v.etag, e2);
        assert_eq!(s.history("/a.txt").unwrap().len(), 2);
        assert_eq!(s.write_count(), 2);
    }

    #[test]
    fn collections_gate_puts() {
        let mut s = ObjectStore::new();
        assert_eq!(
            s.put("/docs/a.txt", "x", t(1)),
            Err(StoreError::MissingParent)
        );
        s.mkcol("/docs").unwrap();
        s.put("/docs/a.txt", "x", t(1)).unwrap();
        assert!(s.is_collection("/docs"));
        assert!(!s.is_collection("/docs/a.txt"));
    }

    #[test]
    fn mkcol_errors() {
        let mut s = ObjectStore::new();
        assert_eq!(s.mkcol("/a/b"), Err(StoreError::MissingParent));
        s.mkcol("/a").unwrap();
        assert_eq!(s.mkcol("/a"), Err(StoreError::Conflict));
        assert_eq!(s.mkcol("relative"), Err(StoreError::BadPath));
        assert_eq!(s.mkcol("/a//b"), Err(StoreError::BadPath));
        assert_eq!(s.mkcol("/a/"), Err(StoreError::BadPath));
    }

    #[test]
    fn mkcol_recursive_builds_trees() {
        let mut s = ObjectStore::new();
        s.mkcol_recursive("/health/clinic/2026").unwrap();
        assert!(s.is_collection("/health/clinic/2026"));
        s.put("/health/clinic/2026/visit.json", "{}", t(1)).unwrap();
        // A file blocking the path is a conflict.
        assert_eq!(
            s.mkcol_recursive("/health/clinic/2026/visit.json/deeper"),
            Err(StoreError::Conflict)
        );
    }

    #[test]
    fn delete_is_recursive() {
        let mut s = ObjectStore::new();
        s.mkcol_recursive("/d/e").unwrap();
        s.put("/d/a.txt", "x", t(1)).unwrap();
        s.put("/d/e/b.txt", "y", t(1)).unwrap();
        assert_eq!(s.delete("/d").unwrap(), 4);
        assert!(!s.exists("/d/e/b.txt"));
        assert_eq!(s.delete("/d"), Err(StoreError::NotFound));
        assert_eq!(s.delete("/"), Err(StoreError::BadPath));
    }

    #[test]
    fn list_immediate_children_only() {
        let mut s = ObjectStore::new();
        s.mkcol_recursive("/d/sub").unwrap();
        s.put("/d/a.txt", "x", t(1)).unwrap();
        s.put("/d/sub/deep.txt", "y", t(1)).unwrap();
        let ls = s.list("/d").unwrap();
        assert_eq!(
            ls,
            vec![("/d/a.txt".to_owned(), false), ("/d/sub".to_owned(), true)]
        );
        let root = s.list("/").unwrap();
        assert_eq!(root, vec![("/d".to_owned(), true)]);
        assert_eq!(s.list("/d/a.txt"), Err(StoreError::Conflict));
    }

    #[test]
    fn copy_and_move() {
        let mut s = ObjectStore::new();
        s.put("/a.txt", "data", t(1)).unwrap();
        s.copy("/a.txt", "/b.txt", t(2)).unwrap();
        assert_eq!(&s.get("/b.txt").unwrap().body[..], b"data");
        assert!(s.exists("/a.txt"));
        assert_eq!(
            s.copy("/a.txt", "/b.txt", t(3)),
            Err(StoreError::DestinationExists)
        );
        s.rename("/a.txt", "/c.txt", t(3)).unwrap();
        assert!(!s.exists("/a.txt"));
        assert!(s.exists("/c.txt"));
    }

    #[test]
    fn etag_is_content_derived() {
        assert_eq!(etag_of(b"same"), etag_of(b"same"));
        assert_ne!(etag_of(b"a"), etag_of(b"b"));
        let mut s = ObjectStore::new();
        s.put("/x", "same", t(1)).unwrap();
        s.put("/y", "same", t(2)).unwrap();
        assert_eq!(s.get("/x").unwrap().etag, s.get("/y").unwrap().etag);
    }

    #[test]
    fn descendants_walk_whole_subtrees() {
        let mut s = ObjectStore::new();
        s.mkcol_recursive("/d/sub").unwrap();
        s.put("/d/a.txt", "x", t(1)).unwrap();
        s.put("/d/sub/deep.txt", "y", t(1)).unwrap();
        let all = s.descendants("/d").unwrap();
        assert_eq!(
            all,
            vec![
                ("/d/a.txt".to_owned(), false),
                ("/d/sub".to_owned(), true),
                ("/d/sub/deep.txt".to_owned(), false),
            ]
        );
        assert_eq!(s.descendants("/").unwrap().len(), 4);
        assert_eq!(s.descendants("/d/a.txt"), Err(StoreError::Conflict));
        assert_eq!(s.descendants("/nope"), Err(StoreError::NotFound));
    }

    #[test]
    fn prune_keeps_current_and_newest_noncurrent() {
        let mut s = ObjectStore::new();
        for i in 0..5u64 {
            s.put("/f", vec![b'x'; 10], t(i)).unwrap();
        }
        // Keep 2 noncurrent, no age cutoff: v0, v1 go (20 bytes).
        let r = s.prune_noncurrent("/f", 2, SimTime::ZERO).unwrap();
        assert_eq!(r.removed_versions, 2);
        assert_eq!(r.reclaimed_bytes, 20);
        assert_eq!(s.history("/f").unwrap().len(), 3);
        // Age cutoff t(4): only the current version survives.
        let r = s.prune_noncurrent("/f", 99, t(4)).unwrap();
        assert_eq!(r.removed_versions, 2);
        let h = s.history("/f").unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].modified_at, t(4));
        // Pruning everything noncurrent never touches the current body.
        let r = s.prune_noncurrent("/f", 0, SimTime::MAX).unwrap();
        assert_eq!(r.removed_versions, 0);
        assert!(s.get("/f").is_ok());
        assert_eq!(
            s.prune_noncurrent("/missing", 0, t(0)),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn total_bytes_counts_all_versions() {
        let mut s = ObjectStore::new();
        s.put("/f", vec![0u8; 7], t(0)).unwrap();
        s.put("/f", vec![0u8; 5], t(1)).unwrap();
        assert_eq!(s.total_bytes(), 12);
        assert_eq!(s.latest_bytes(), 5);
    }

    #[test]
    fn files_under_and_sizes() {
        let mut s = ObjectStore::new();
        s.mkcol_recursive("/h/c1").unwrap();
        s.put("/h/c1/r1.json", "12345", t(1)).unwrap();
        s.put("/h/c1/r2.json", "123", t(1)).unwrap();
        s.put("/top.txt", "xy", t(1)).unwrap();
        let files = s.files_under("/h");
        assert_eq!(files.len(), 2);
        assert_eq!(s.latest_bytes(), 10);
        assert_eq!(s.files_under("/").len(), 3);
    }
}
