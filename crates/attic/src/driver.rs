//! The `open`/`close` wrapper driver.
//!
//! §IV-A: "our prototype replaces application's default `open`, `close`,
//! `fopen`, and `fclose` function calls with our own … any reference to
//! 'open' is replaced with … a GET request for the file to the data
//! attic. Upon receiving the file, the driver creates a local copy and
//! opens it for the application. Subsequent accesses to the file will
//! execute on the local copy, which will be sent back to the attic on
//! close. No change to the application code is required."
//!
//! [`FileDriver`] reproduces that behaviour against an [`AtticServer`]:
//! one GET per open, local reads/writes, one PUT per dirty close.

use crate::server::AtticServer;
use hpop_http::message::{Request, Response, StatusCode};
use hpop_http::url::Url;
use hpop_netsim::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A handle to an open file (the application's "file descriptor").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fd(u64);

/// Driver I/O errors (mapped from attic HTTP statuses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The attic has no such file (open of a missing path without create).
    NotFound,
    /// The file is WebDAV-locked by another application.
    Locked,
    /// Unknown file descriptor.
    BadFd,
    /// The attic rejected the operation (other status).
    Remote(u16),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::NotFound => write!(f, "file not found in attic"),
            DriverError::Locked => write!(f, "file locked by another application"),
            DriverError::BadFd => write!(f, "unknown file descriptor"),
            DriverError::Remote(s) => write!(f, "attic returned status {s}"),
        }
    }
}

impl std::error::Error for DriverError {}

struct OpenFile {
    path: String,
    local_copy: Vec<u8>,
    etag: String,
    dirty: bool,
}

/// Round-trip counters (the experiment metric: local accesses are free,
/// only open/close touch the network).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// GET requests issued (one per open).
    pub gets: u64,
    /// PUT requests issued (one per dirty close).
    pub puts: u64,
    /// Reads served from the local copy.
    pub local_reads: u64,
    /// Writes applied to the local copy.
    pub local_writes: u64,
}

/// The wrapper driver: open fetches, close pushes back.
pub struct FileDriver {
    attic: Rc<RefCell<AtticServer>>,
    endpoint: Url,
    auth: Option<String>,
    open_files: BTreeMap<Fd, OpenFile>,
    next_fd: u64,
    stats: DriverStats,
}

impl std::fmt::Debug for FileDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDriver")
            .field("open_files", &self.open_files.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FileDriver {
    /// Creates a driver talking to an in-process attic (local trust).
    pub fn new(attic: Rc<RefCell<AtticServer>>, endpoint: Url) -> FileDriver {
        FileDriver {
            attic,
            endpoint,
            auth: None,
            open_files: BTreeMap::new(),
            next_fd: 0,
            stats: DriverStats::default(),
        }
    }

    /// Uses an external grant for every request (the provider-site
    /// deployment of the driver).
    pub fn with_authorization(mut self, header_value: String) -> FileDriver {
        self.auth = Some(header_value);
        self
    }

    fn send(&self, req: Request, now: SimTime) -> Response {
        let mut attic = self.attic.borrow_mut();
        match &self.auth {
            Some(a) => attic.handle_external(&req.with_header("authorization", a.clone()), now),
            None => attic.handle_local(&req, now),
        }
    }

    /// Opens a file: GETs it from the attic into a local copy.
    /// With `create`, a missing file opens as empty.
    ///
    /// # Errors
    ///
    /// [`DriverError::NotFound`] (without `create`) or a mapped remote
    /// error.
    pub fn open(&mut self, path: &str, create: bool, now: SimTime) -> Result<Fd, DriverError> {
        let resp = self.send(Request::get(self.endpoint.with_path(path)), now);
        self.stats.gets += 1;
        let (local_copy, etag) = match resp.status {
            StatusCode::OK => (
                resp.body.to_vec(),
                resp.headers.get("etag").unwrap_or_default().to_owned(),
            ),
            StatusCode::NOT_FOUND if create => (Vec::new(), String::new()),
            StatusCode::NOT_FOUND => return Err(DriverError::NotFound),
            StatusCode::LOCKED => return Err(DriverError::Locked),
            s => return Err(DriverError::Remote(s.0)),
        };
        self.next_fd += 1;
        let fd = Fd(self.next_fd);
        self.open_files.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                local_copy,
                etag,
                dirty: false,
            },
        );
        Ok(fd)
    }

    /// Reads the whole local copy (applications then seek within it).
    ///
    /// # Errors
    ///
    /// [`DriverError::BadFd`] for unknown descriptors.
    pub fn read(&mut self, fd: Fd) -> Result<&[u8], DriverError> {
        self.stats.local_reads += 1;
        self.open_files
            .get(&fd)
            .map(|f| f.local_copy.as_slice())
            .ok_or(DriverError::BadFd)
    }

    /// Replaces the local copy's contents (no network traffic).
    ///
    /// # Errors
    ///
    /// [`DriverError::BadFd`] for unknown descriptors.
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> Result<(), DriverError> {
        let f = self.open_files.get_mut(&fd).ok_or(DriverError::BadFd)?;
        f.local_copy = data.to_vec();
        f.dirty = true;
        self.stats.local_writes += 1;
        Ok(())
    }

    /// Closes the file: a dirty copy is PUT back to the attic
    /// (`If-Match` guards against concurrent remote modification).
    ///
    /// # Errors
    ///
    /// [`DriverError::Locked`] if the attic refuses (lock or lost-update
    /// conflict), mapped remote errors otherwise.
    pub fn close(&mut self, fd: Fd, now: SimTime) -> Result<(), DriverError> {
        let f = self.open_files.remove(&fd).ok_or(DriverError::BadFd)?;
        if !f.dirty {
            return Ok(());
        }
        let mut req = Request::put(self.endpoint.with_path(&f.path), f.local_copy);
        if !f.etag.is_empty() {
            req = req.with_header("if-match", f.etag.clone());
        }
        let resp = self.send(req, now);
        self.stats.puts += 1;
        match resp.status {
            StatusCode::CREATED | StatusCode::NO_CONTENT => Ok(()),
            StatusCode::LOCKED | StatusCode::PRECONDITION_FAILED => Err(DriverError::Locked),
            s => Err(DriverError::Remote(s.0)),
        }
    }

    /// Round-trip counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_core::auth::TokenVerifier;

    fn setup() -> (Rc<RefCell<AtticServer>>, FileDriver) {
        let attic = Rc::new(RefCell::new(AtticServer::new(TokenVerifier::new(
            [1u8; 32],
        ))));
        let driver = FileDriver::new(attic.clone(), Url::https("attic.home", "/"));
        (attic, driver)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn open_edit_close_pushes_back() {
        let (attic, mut d) = setup();
        attic
            .borrow_mut()
            .store_mut()
            .put("/doc.txt", "original", t(0))
            .unwrap();
        let fd = d.open("/doc.txt", false, t(1)).unwrap();
        assert_eq!(d.read(fd).unwrap(), b"original");
        d.write(fd, b"edited locally").unwrap();
        d.write(fd, b"edited locally twice").unwrap();
        d.close(fd, t(2)).unwrap();
        assert_eq!(
            &attic.borrow().store().get("/doc.txt").unwrap().body[..],
            b"edited locally twice"
        );
        // One GET, one PUT — edits in between were free.
        let s = d.stats();
        assert_eq!((s.gets, s.puts, s.local_writes), (1, 1, 2));
    }

    #[test]
    fn clean_close_skips_the_put() {
        let (attic, mut d) = setup();
        attic
            .borrow_mut()
            .store_mut()
            .put("/doc.txt", "x", t(0))
            .unwrap();
        let fd = d.open("/doc.txt", false, t(1)).unwrap();
        let _ = d.read(fd).unwrap();
        d.close(fd, t(2)).unwrap();
        assert_eq!(d.stats().puts, 0);
    }

    #[test]
    fn create_opens_missing_files_empty() {
        let (attic, mut d) = setup();
        assert_eq!(d.open("/new.txt", false, t(0)), Err(DriverError::NotFound));
        let fd = d.open("/new.txt", true, t(0)).unwrap();
        assert_eq!(d.read(fd).unwrap(), b"");
        d.write(fd, b"fresh").unwrap();
        d.close(fd, t(1)).unwrap();
        assert!(attic.borrow().store().exists("/new.txt"));
    }

    #[test]
    fn concurrent_remote_edit_detected_on_close() {
        let (attic, mut d) = setup();
        attic
            .borrow_mut()
            .store_mut()
            .put("/doc.txt", "v1", t(0))
            .unwrap();
        let fd = d.open("/doc.txt", false, t(1)).unwrap();
        d.write(fd, b"mine").unwrap();
        // Someone else writes meanwhile.
        attic
            .borrow_mut()
            .store_mut()
            .put("/doc.txt", "theirs", t(2))
            .unwrap();
        assert_eq!(d.close(fd, t(3)), Err(DriverError::Locked));
        // The attic kept the other writer's version (no lost update).
        assert_eq!(
            &attic.borrow().store().get("/doc.txt").unwrap().body[..],
            b"theirs"
        );
    }

    #[test]
    fn bad_fd_is_reported() {
        let (_, mut d) = setup();
        assert_eq!(d.read(Fd(99)), Err(DriverError::BadFd));
        assert_eq!(d.write(Fd(99), b"x"), Err(DriverError::BadFd));
        assert_eq!(d.close(Fd(99), t(0)), Err(DriverError::BadFd));
    }
}
