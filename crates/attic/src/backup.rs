//! Encrypted peer backup.
//!
//! §IV-A ("Data Availability"): back up "the encrypted data … with a
//! cloud such as Amazon Glacier", or "replicating the entire HPoP to
//! attics belonging to friends and relatives, or redundantly encoding
//! the contents — e.g., using erasure codes — and storing pieces with a
//! variety of peers."
//!
//! [`BackupSet::create`] encrypts a blob under the household key
//! (peers never see plaintext) and produces per-peer shards according to
//! a [`BackupPlan`]; [`BackupSet::restore`] recovers the blob from
//! whichever peers survive.

use hpop_crypto::chacha20::ChaCha20;
use hpop_crypto::sha256::Sha256;
use hpop_erasure::availability::{erasure_availability, replication_availability};
use hpop_erasure::rs::{ReedSolomon, RsError};

/// How the encrypted blob is spread across peers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackupPlan {
    /// Every peer stores the full ciphertext.
    Replication {
        /// Number of replicas (peers).
        copies: u32,
    },
    /// Reed–Solomon: `data + parity` peers, any `data` recover.
    Erasure {
        /// Data shards (`k`).
        data: u32,
        /// Parity shards (`m`).
        parity: u32,
    },
}

impl BackupPlan {
    /// Number of peers the plan needs.
    pub fn peers(&self) -> usize {
        match *self {
            BackupPlan::Replication { copies } => copies as usize,
            BackupPlan::Erasure { data, parity } => (data + parity) as usize,
        }
    }

    /// Storage overhead factor (stored bytes / data bytes).
    pub fn overhead(&self) -> f64 {
        match *self {
            BackupPlan::Replication { copies } => copies as f64,
            BackupPlan::Erasure { data, parity } => (data + parity) as f64 / data as f64,
        }
    }

    /// Probability the backup survives independent peer failure
    /// probability `p` (experiment E11's closed form).
    pub fn availability(&self, p: f64) -> f64 {
        match *self {
            BackupPlan::Replication { copies } => replication_availability(copies, p),
            BackupPlan::Erasure { data, parity } => erasure_availability(data + parity, data, p),
        }
    }
}

/// A prepared backup: one opaque shard per peer.
#[derive(Clone, Debug)]
pub struct BackupSet {
    plan: BackupPlan,
    original_len: usize,
    ciphertext_len: usize,
    /// `shards[i]` is peer i's blob (None once lost).
    pub shards: Vec<Option<Vec<u8>>>,
}

/// Backup/restore errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackupError {
    /// Underlying erasure-coding failure (e.g. too few shards).
    Coding(RsError),
    /// All replicas lost.
    AllReplicasLost,
    /// Decryption integrity check failed (corrupted shard data).
    Corrupted,
}

impl std::fmt::Display for BackupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackupError::Coding(e) => write!(f, "erasure coding: {e}"),
            BackupError::AllReplicasLost => write!(f, "all replicas lost"),
            BackupError::Corrupted => write!(f, "backup integrity check failed"),
        }
    }
}

impl std::error::Error for BackupError {}

impl From<RsError> for BackupError {
    fn from(e: RsError) -> Self {
        BackupError::Coding(e)
    }
}

fn derive_nonce(key: &[u8; 32], label: &str) -> [u8; 12] {
    let d = Sha256::digest(&[key.as_slice(), label.as_bytes()].concat());
    let mut n = [0u8; 12];
    n.copy_from_slice(&d.as_bytes()[..12]);
    n
}

impl BackupSet {
    /// Encrypts `blob` under `key` and shards it per `plan`. The `label`
    /// (e.g. the backup's path + generation) diversifies the nonce.
    ///
    /// # Errors
    ///
    /// Propagates invalid erasure parameters.
    pub fn create(
        blob: &[u8],
        key: &[u8; 32],
        label: &str,
        plan: BackupPlan,
    ) -> Result<BackupSet, BackupError> {
        // Integrity: append a hash of the plaintext before encrypting.
        let digest = Sha256::digest(blob);
        let mut plain = blob.to_vec();
        plain.extend_from_slice(digest.as_bytes());
        let nonce = derive_nonce(key, label);
        let ciphertext = ChaCha20::encrypt(key, &nonce, &plain);
        let ciphertext_len = ciphertext.len();
        let shards = match plan {
            BackupPlan::Replication { copies } => {
                vec![Some(ciphertext); copies as usize]
            }
            BackupPlan::Erasure { data, parity } => {
                let rs = ReedSolomon::new(data as usize, parity as usize)?;
                rs.encode_blob(&ciphertext)?
            }
        };
        Ok(BackupSet {
            plan,
            original_len: blob.len(),
            ciphertext_len,
            shards,
        })
    }

    /// Simulates losing peer `i`'s shard.
    pub fn lose_peer(&mut self, i: usize) {
        if i < self.shards.len() {
            self.shards[i] = None;
        }
    }

    /// Number of peers still holding shards.
    pub fn surviving_peers(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    /// Total bytes stored across all peers (the overhead metric).
    pub fn stored_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.as_ref().map(Vec::len))
            .sum()
    }

    /// The plan this set was created with.
    pub fn plan(&self) -> BackupPlan {
        self.plan
    }

    /// Recovers and decrypts the blob from the surviving shards,
    /// verifying plaintext integrity.
    ///
    /// # Errors
    ///
    /// [`BackupError::AllReplicasLost`] / [`BackupError::Coding`] when
    /// too little survives; [`BackupError::Corrupted`] when data was
    /// tampered with or the key is wrong.
    pub fn restore(&self, key: &[u8; 32], label: &str) -> Result<Vec<u8>, BackupError> {
        let ciphertext = match self.plan {
            BackupPlan::Replication { .. } => self
                .shards
                .iter()
                .flatten()
                .next()
                .cloned()
                .ok_or(BackupError::AllReplicasLost)?,
            BackupPlan::Erasure { data, parity } => {
                let rs = ReedSolomon::new(data as usize, parity as usize)?;
                rs.reconstruct_blob(self.shards.clone(), self.ciphertext_len)?
            }
        };
        let nonce = derive_nonce(key, label);
        let plain = ChaCha20::decrypt(key, &nonce, &ciphertext);
        if plain.len() != self.original_len + 32 {
            return Err(BackupError::Corrupted);
        }
        let (blob, digest) = plain.split_at(self.original_len);
        if Sha256::digest(blob).as_bytes() != digest {
            return Err(BackupError::Corrupted);
        }
        Ok(blob.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [5u8; 32];

    #[test]
    fn replication_roundtrip_with_losses() {
        let mut set = BackupSet::create(
            b"the household archive",
            &KEY,
            "archive-gen1",
            BackupPlan::Replication { copies: 3 },
        )
        .unwrap();
        set.lose_peer(0);
        set.lose_peer(2);
        assert_eq!(set.surviving_peers(), 1);
        assert_eq!(
            set.restore(&KEY, "archive-gen1").unwrap(),
            b"the household archive"
        );
        set.lose_peer(1);
        assert_eq!(
            set.restore(&KEY, "archive-gen1"),
            Err(BackupError::AllReplicasLost)
        );
    }

    #[test]
    fn erasure_roundtrip_with_m_losses() {
        let mut set = BackupSet::create(
            b"family photos, years of them",
            &KEY,
            "photos",
            BackupPlan::Erasure { data: 4, parity: 2 },
        )
        .unwrap();
        set.lose_peer(1);
        set.lose_peer(4);
        assert_eq!(
            set.restore(&KEY, "photos").unwrap(),
            b"family photos, years of them"
        );
        set.lose_peer(0);
        assert!(matches!(
            set.restore(&KEY, "photos"),
            Err(BackupError::Coding(_))
        ));
    }

    #[test]
    fn peers_only_see_ciphertext() {
        let set = BackupSet::create(
            b"secret medical history",
            &KEY,
            "health",
            BackupPlan::Replication { copies: 2 },
        )
        .unwrap();
        for shard in set.shards.iter().flatten() {
            // No plaintext substring appears in any shard.
            assert!(!shard.windows(6).any(|w| w == b"secret" || w == b"medica"));
        }
    }

    #[test]
    fn wrong_key_or_label_is_corruption_not_garbage() {
        let set = BackupSet::create(b"data", &KEY, "gen1", BackupPlan::Replication { copies: 1 })
            .unwrap();
        assert_eq!(set.restore(&[6u8; 32], "gen1"), Err(BackupError::Corrupted));
        assert_eq!(set.restore(&KEY, "gen2"), Err(BackupError::Corrupted));
    }

    #[test]
    fn tampered_shard_detected_under_replication() {
        let mut set =
            BackupSet::create(b"data", &KEY, "gen1", BackupPlan::Replication { copies: 1 })
                .unwrap();
        set.shards[0].as_mut().unwrap()[0] ^= 0xff;
        assert_eq!(set.restore(&KEY, "gen1"), Err(BackupError::Corrupted));
    }

    #[test]
    fn overhead_comparison_matches_paper_motivation() {
        // RS(6,4) stores 1.5x; 3-way replication stores 3x. At p = 0.1
        // the RS scheme is both cheaper and comparably durable.
        let rep = BackupPlan::Replication { copies: 3 };
        let rs = BackupPlan::Erasure { data: 4, parity: 2 };
        assert!(rs.overhead() < rep.overhead());
        assert!(rs.availability(0.1) > 0.98);
        assert_eq!(rep.peers(), 3);
        assert_eq!(rs.peers(), 6);
    }

    #[test]
    fn stored_bytes_reflect_plan() {
        let blob = vec![7u8; 1000];
        let rep =
            BackupSet::create(&blob, &KEY, "l", BackupPlan::Replication { copies: 3 }).unwrap();
        let rs = BackupSet::create(&blob, &KEY, "l", BackupPlan::Erasure { data: 4, parity: 2 })
            .unwrap();
        assert!(rep.stored_bytes() >= 3 * 1000);
        // ~1.5x for RS(6,4), plus the 32-byte integrity tag and padding.
        assert!(rs.stored_bytes() < 2 * 1000);
        assert_eq!(rep.plan(), BackupPlan::Replication { copies: 3 });
    }

    #[test]
    fn empty_blob_roundtrips() {
        let set = BackupSet::create(
            b"",
            &KEY,
            "empty",
            BackupPlan::Erasure { data: 2, parity: 1 },
        )
        .unwrap();
        assert_eq!(set.restore(&KEY, "empty").unwrap(), b"");
    }
}
