//! # hpop-attic — the Data Attic (paper §IV-A)
//!
//! "Our approach calls for these applications to act on data stored in a
//! 'data attic' in each user's home network instead of on a copy of the
//! data that resides in the cloud. The data attic provides an
//! application-agnostic interface to user data that external applications
//! and services can access, but would not store or maintain the data."
//!
//! The paper's prototype is a WebDAV server; this crate reproduces it and
//! everything around it:
//!
//! - [`store`] — the versioned object store (single source of truth for
//!   a file, with version history and ETags).
//! - [`lock`] — WebDAV locking ("WebDAV further mediates access from
//!   multiple clients through file locking").
//! - [`server`] — the WebDAV-semantics HTTP server tying the store,
//!   locks and capability grants together.
//! - [`grant`] — the QR-code provider bootstrap: a self-contained
//!   payload with endpoint, scoped credential and attic path.
//! - [`driver`] — the `open`/`close` wrapper driver the paper builds
//!   with the linker's `--wrap` option: fetch on open, operate locally,
//!   push back on close.
//! - [`sync`] — offline-mode reconciliation when a disconnected replica
//!   reconnects.
//! - [`durable`] — crash consistency: the store and lock table behind a
//!   write-ahead log, so an attic restart recovers every acknowledged
//!   write and every live lock (with its original expiry).
//! - [`backup`] — encrypted peer backup with full replication or
//!   Reed–Solomon erasure coding ("Data Availability").
//! - [`placement`] — churn-aware shard placement over the fabric's
//!   gossip membership: holders picked by uptime × reputation, shards
//!   repaired away from peers the failure detector declares dead.
//! - [`health`] — the health-records exemplar: providers dual-write to
//!   their own records and the patient's attic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod backup;
pub mod cloudenc;
pub mod conformance;
pub mod daemon;
pub mod dav;
pub mod driver;
pub mod durable;
pub mod grant;
pub mod health;
pub mod lifecycle;
pub mod lock;
pub mod personal;
pub mod placement;
pub mod ports;
pub mod server;
pub mod store;
pub mod sync;
pub mod webdav;

pub use backup::{BackupPlan, BackupSet};
pub use cloudenc::EncryptedCloudStore;
pub use conformance::{run_suite, ConformanceOutcome, DavTransport, SimTransport, TcpTransport};
pub use daemon::{AtticDaemon, DaemonConfig, DaemonHandle, DaemonStats};
pub use dav::{MultiStatus, PropValue, PropfindBody};
pub use driver::FileDriver;
pub use durable::{AtticState, DurableAttic};
pub use grant::AccessGrant;
pub use lifecycle::{LifecycleEngine, LifecyclePolicy, LifecycleReport, LifecycleRule};
pub use lock::{LockError, LockManager, LockToken};
pub use personal::{Calendar, CalendarEvent, Contact, ContactsBook};
pub use placement::{place_shards, PlacedBackup, PlacementError};
pub use ports::{AtticBackend, BackendFault, DavPort, Origin, VolatileBackend};
pub use server::AtticServer;
pub use store::{ObjectStore, PruneReport, StoreError};
pub use sync::{OfflineReplica, ReconcileOutcome};
pub use webdav::DavCore;
