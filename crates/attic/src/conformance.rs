//! The WebDAV conformance suite: one scripted request sequence, two
//! adapters, byte-identical transcripts.
//!
//! The tentpole claim of the ports-and-adapters split is that the
//! simulated attic and the real-socket daemon are the *same server*.
//! This module makes that claim testable: [`run_suite`] drives a fixed
//! sequence covering every verb (PUT/GET/HEAD/DELETE/MKCOL/COPY/MOVE/
//! LOCK/UNLOCK/PROPFIND at Depth 0/1/infinity, version listing, ETag
//! preconditions, OPTIONS/PROPPATCH) through any [`DavTransport`], and
//! folds every response into a canonical transcript: status line +
//! sorted headers + body for each step. Equal transcripts ⇒ the
//! adapters are observationally identical; the sim results describe the
//! code that actually serves traffic.
//!
//! Steps pin logical time explicitly, and the TCP transport forwards it
//! via the `x-sim-time` header — so neither adapter consults a wall
//! clock while under test.

use crate::dav::PropfindBody;
use crate::ports::{DavPort, Origin};
use hpop_http::h1;
use hpop_http::message::{Method, Request, Response, StatusCode};
use hpop_http::url::Url;
use hpop_netsim::time::SimTime;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Anything that can carry one WebDAV request to an attic and bring
/// the response back.
pub trait DavTransport {
    /// Human-readable adapter name (for reports).
    fn name(&self) -> &'static str;

    /// Sends `req` at logical instant `now`; returns the response.
    fn round_trip(&mut self, req: &Request, now: SimTime) -> Response;
}

/// In-process transport over any [`DavPort`] (the netsim adapter).
pub struct SimTransport<'a, P: DavPort> {
    port: &'a mut P,
}

impl<'a, P: DavPort> SimTransport<'a, P> {
    /// Wraps a driving port.
    pub fn new(port: &'a mut P) -> SimTransport<'a, P> {
        SimTransport { port }
    }
}

impl<P: DavPort> DavTransport for SimTransport<'_, P> {
    fn name(&self) -> &'static str {
        "netsim"
    }

    fn round_trip(&mut self, req: &Request, now: SimTime) -> Response {
        self.port.serve(req, Origin::Local, now)
    }
}

/// Loopback-TCP transport to a running `attic-daemon`. Keeps one
/// connection open across the suite (exercising keep-alive) and pins
/// logical time with the `x-sim-time` header.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to the daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<TcpTransport> {
        Ok(TcpTransport {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl DavTransport for TcpTransport {
    fn name(&self) -> &'static str {
        "daemon"
    }

    fn round_trip(&mut self, req: &Request, now: SimTime) -> Response {
        let pinned = req
            .clone()
            .with_header("x-sim-time", now.as_nanos().to_string());
        self.stream
            .write_all(&h1::encode_request(&pinned))
            .expect("daemon socket writable");
        let mut buf = Vec::new();
        let mut scratch = [0u8; 8192];
        loop {
            if let Some((resp, consumed)) = h1::decode_response(&buf).expect("well-framed reply") {
                debug_assert_eq!(consumed, buf.len());
                return resp;
            }
            let n = self
                .stream
                .read(&mut scratch)
                .expect("daemon socket readable");
            assert!(n > 0, "daemon closed mid-response");
            buf.extend_from_slice(&scratch[..n]);
        }
    }
}

/// The outcome of one suite run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConformanceOutcome {
    /// Adapter name the suite ran against.
    pub adapter: &'static str,
    /// Steps executed.
    pub steps: u32,
    /// Steps whose status matched the expectation.
    pub passed: u32,
    /// `step-name: expected vs got` for each miss.
    pub failures: Vec<String>,
    /// The canonical transcript — byte-equal across conforming
    /// adapters.
    pub transcript: Vec<u8>,
}

/// Canonicalizes a response: status line, headers sorted by name
/// (already sorted — [`hpop_http::message::Headers`] is a BTreeMap),
/// then the body. `content-length` is pure wire framing — the h1
/// encoder recomputes it from the body on every hop — so it is
/// excluded; the body bytes themselves are compared directly.
fn fold(transcript: &mut Vec<u8>, step: &str, resp: &Response) {
    transcript.extend_from_slice(step.as_bytes());
    transcript.push(b'\n');
    transcript
        .extend_from_slice(format!("{} {}\n", resp.status.0, resp.status.reason()).as_bytes());
    for (name, value) in resp.headers.iter() {
        if name == "content-length" {
            continue;
        }
        transcript.extend_from_slice(format!("{name}: {value}\n").as_bytes());
    }
    transcript.extend_from_slice(&resp.body);
    transcript.extend_from_slice(b"\n--\n");
}

fn url(p: &str) -> Url {
    Url::new("http", "attic.home", p)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Runs the full verb-coverage suite through `transport`.
///
/// The attic behind it must start *empty* — the suite builds all the
/// state it inspects.
pub fn run_suite<T: DavTransport>(transport: &mut T) -> ConformanceOutcome {
    let mut out = ConformanceOutcome {
        adapter: transport.name(),
        steps: 0,
        passed: 0,
        failures: Vec::new(),
        transcript: Vec::new(),
    };
    // Mutable state captured from earlier responses (etags, tokens).
    let mut etag_v1 = String::new();
    let mut lock_token = String::new();

    let mut step = |out: &mut ConformanceOutcome,
                    name: &str,
                    req: Request,
                    at: SimTime,
                    expect: StatusCode|
     -> Response {
        let resp = transport.round_trip(&req, at);
        out.steps += 1;
        if resp.status == expect {
            out.passed += 1;
        } else {
            out.failures.push(format!(
                "{name}: expected {} got {}",
                expect.0, resp.status.0
            ));
        }
        fold(&mut out.transcript, name, &resp);
        resp
    };

    // 1. OPTIONS advertises the surface.
    step(
        &mut out,
        "options",
        Request::new(Method::Options, url("/")),
        t(0),
        StatusCode::OK,
    );
    // 2-3. MKCOL builds /docs, /docs/sub; 4. MKCOL again is 405.
    step(
        &mut out,
        "mkcol",
        Request::new(Method::MkCol, url("/docs")),
        t(1),
        StatusCode::CREATED,
    );
    step(
        &mut out,
        "mkcol-sub",
        Request::new(Method::MkCol, url("/docs/sub")),
        t(1),
        StatusCode::CREATED,
    );
    step(
        &mut out,
        "mkcol-exists",
        Request::new(Method::MkCol, url("/docs")),
        t(1),
        StatusCode::METHOD_NOT_ALLOWED,
    );
    // 5. MKCOL with a missing parent is 409.
    step(
        &mut out,
        "mkcol-orphan",
        Request::new(Method::MkCol, url("/nowhere/x")),
        t(1),
        StatusCode::CONFLICT,
    );
    // 6. PUT creates (201) and returns the content ETag.
    let r = step(
        &mut out,
        "put-create",
        Request::put(url("/docs/a.txt"), &b"version one"[..]),
        t(2),
        StatusCode::CREATED,
    );
    if let Some(e) = r.headers.get("etag") {
        etag_v1 = e.to_owned();
    }
    // 7. PUT overwrite is 204 (second version).
    step(
        &mut out,
        "put-update",
        Request::put(url("/docs/a.txt"), &b"version two, longer"[..]),
        t(3),
        StatusCode::NO_CONTENT,
    );
    // 8. GET returns the latest body.
    step(
        &mut out,
        "get",
        Request::get(url("/docs/a.txt")),
        t(4),
        StatusCode::OK,
    );
    // 9. HEAD: entity headers, no body.
    step(
        &mut out,
        "head",
        Request::new(Method::Head, url("/docs/a.txt")),
        t(4),
        StatusCode::OK,
    );
    // 10. Get-by-version addresses the superseded write.
    step(
        &mut out,
        "get-old-version",
        Request::get(url("/docs/a.txt")).with_header("x-version", "0"),
        t(4),
        StatusCode::OK,
    );
    // 11. Stale If-Match bounces with 412.
    step(
        &mut out,
        "put-if-match-stale",
        Request::put(url("/docs/a.txt"), &b"lost update"[..])
            .with_header("if-match", etag_v1.clone()),
        t(5),
        StatusCode::PRECONDITION_FAILED,
    );
    // 12. If-None-Match: * refuses to clobber.
    step(
        &mut out,
        "put-if-none-match-star",
        Request::put(url("/docs/a.txt"), &b"clobber"[..]).with_header("if-none-match", "*"),
        t(5),
        StatusCode::PRECONDITION_FAILED,
    );
    // 13. Conditional GET with the old etag still succeeds (not current).
    step(
        &mut out,
        "get-if-none-match-old",
        Request::get(url("/docs/a.txt")).with_header("if-none-match", etag_v1.clone()),
        t(5),
        StatusCode::OK,
    );
    // 14. PROPFIND depth 0 on the file.
    let pf_props = PropfindBody::Props(vec![
        "getetag".into(),
        "getcontentlength".into(),
        "resourcetype".into(),
        "no-such-prop".into(),
    ])
    .to_xml();
    let mut pf = Request::new(Method::PropFind, url("/docs/a.txt")).with_header("depth", "0");
    pf.body = pf_props.into();
    step(&mut out, "propfind-0", pf, t(6), StatusCode::MULTI_STATUS);
    // 15. PROPFIND depth 1 on the collection (allprop).
    step(
        &mut out,
        "propfind-1",
        Request::new(Method::PropFind, url("/docs")).with_header("depth", "1"),
        t(6),
        StatusCode::MULTI_STATUS,
    );
    // 16. PROPFIND depth infinity from the root (header omitted = RFC
    // default infinity).
    step(
        &mut out,
        "propfind-infinity",
        Request::new(Method::PropFind, url("/")),
        t(6),
        StatusCode::MULTI_STATUS,
    );
    // 17. Version listing via the version-list pseudo-property.
    let mut vl = Request::new(Method::PropFind, url("/docs/a.txt")).with_header("depth", "0");
    vl.body = PropfindBody::Props(vec!["getetag".into(), "version-list".into()])
        .to_xml()
        .into();
    step(
        &mut out,
        "propfind-versions",
        vl,
        t(6),
        StatusCode::MULTI_STATUS,
    );
    // 18. PROPPATCH is politely refused (207 with 403 propstats).
    let mut pp = Request::new(Method::PropPatch, url("/docs/a.txt"));
    pp.body = b"<D:propertyupdate xmlns:D=\"DAV:\"><D:set><D:prop><D:color/></D:prop></D:set></D:propertyupdate>"
        .to_vec()
        .into();
    step(&mut out, "proppatch", pp, t(6), StatusCode::MULTI_STATUS);
    // 19. COPY duplicates.
    step(
        &mut out,
        "copy",
        Request::new(Method::Copy, url("/docs/a.txt")).with_header("destination", "/docs/b.txt"),
        t(7),
        StatusCode::CREATED,
    );
    // 20. MOVE relocates.
    step(
        &mut out,
        "move",
        Request::new(Method::Move, url("/docs/b.txt"))
            .with_header("destination", "/docs/sub/c.txt"),
        t(8),
        StatusCode::CREATED,
    );
    // 21. LOCK takes an exclusive lock.
    let r = step(
        &mut out,
        "lock",
        Request::new(Method::Lock, url("/docs/a.txt"))
            .with_header("x-lock-owner", "word-proc")
            .with_header("timeout", "Second-300"),
        t(9),
        StatusCode::OK,
    );
    if let Some(tok) = r.headers.get("lock-token") {
        lock_token = tok.to_owned();
    }
    // 22. A tokenless write bounces off the lock.
    step(
        &mut out,
        "put-locked",
        Request::put(url("/docs/a.txt"), &b"intruder"[..]),
        t(10),
        StatusCode::LOCKED,
    );
    // 23. The holder writes through with the token.
    step(
        &mut out,
        "put-with-token",
        Request::put(url("/docs/a.txt"), &b"version three"[..])
            .with_header("lock-token", lock_token.clone()),
        t(11),
        StatusCode::NO_CONTENT,
    );
    // 24. LOCK refresh via the token.
    step(
        &mut out,
        "lock-refresh",
        Request::new(Method::Lock, url("/docs/a.txt"))
            .with_header("lock-token", lock_token.clone())
            .with_header("timeout", "Second-300"),
        t(12),
        StatusCode::OK,
    );
    // 25. UNLOCK releases.
    step(
        &mut out,
        "unlock",
        Request::new(Method::Unlock, url("/docs/a.txt"))
            .with_header("lock-token", lock_token.clone()),
        t(13),
        StatusCode::NO_CONTENT,
    );
    // 26. DELETE removes the moved file.
    step(
        &mut out,
        "delete",
        Request::new(Method::Delete, url("/docs/sub/c.txt")),
        t(14),
        StatusCode::NO_CONTENT,
    );
    // 27. GET on the deleted path 404s.
    step(
        &mut out,
        "get-deleted",
        Request::get(url("/docs/sub/c.txt")),
        t(15),
        StatusCode::NOT_FOUND,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{AtticDaemon, DaemonConfig};
    use crate::ports::VolatileBackend;
    use crate::server::AtticServer;
    use crate::webdav::DavCore;
    use hpop_core::auth::TokenVerifier;

    #[test]
    fn suite_passes_through_the_sim_adapter() {
        let mut server = AtticServer::new(TokenVerifier::new([7u8; 32]));
        let mut transport = SimTransport::new(server.core_mut());
        let outcome = run_suite(&mut transport);
        assert_eq!(outcome.failures, Vec::<String>::new());
        assert_eq!(outcome.passed, outcome.steps);
        assert!(outcome.steps >= 27, "full verb coverage");
    }

    /// The acceptance criterion: sim adapter and socket daemon produce
    /// byte-identical transcripts for the same suite.
    #[test]
    fn adapters_are_byte_identical() {
        let mut server = AtticServer::new(TokenVerifier::new([7u8; 32]));
        let sim = run_suite(&mut SimTransport::new(server.core_mut()));

        let core = DavCore::new(VolatileBackend::new(), TokenVerifier::new([7u8; 32]));
        let handle = AtticDaemon::spawn(DaemonConfig::default(), core).expect("bind");
        let mut tcp = TcpTransport::connect(handle.addr()).expect("connect");
        let daemon = run_suite(&mut tcp);
        drop(tcp);
        handle.stop();

        assert_eq!(daemon.failures, Vec::<String>::new());
        assert_eq!(sim.passed, sim.steps);
        assert_eq!(daemon.passed, daemon.steps);
        assert_eq!(
            sim.transcript, daemon.transcript,
            "the two adapters must be observationally identical"
        );
    }
}
