//! The §III "mundane services": contacts and calendar on the attic.
//!
//! "We envision the HPoP as an extensible and configurable platform that
//! can also run myriad mundane services for the user and the household —
//! e.g., a contacts server, a calendar server, or an email inbox … The
//! HPoP provides seamless access to these services across various
//! devices."
//!
//! Both services are thin, format-stable layers over the attic's
//! [`ObjectStore`]: a contact is a vCard-style text file under
//! `/personal/contacts/`, an event an iCal-style file under
//! `/personal/calendar/`. Because they are ordinary attic files, every
//! attic property applies for free — versions, locks, grants, offline
//! replicas, encrypted peer backup.

use crate::store::{ObjectStore, StoreError};
use hpop_netsim::time::{SimDuration, SimTime};

/// A household contact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contact {
    /// Stable identifier (file stem).
    pub id: String,
    /// Display name.
    pub name: String,
    /// Email address.
    pub email: String,
    /// Phone number.
    pub phone: String,
}

impl Contact {
    fn to_vcard(&self) -> String {
        format!(
            "BEGIN:VCARD\nVERSION:3.0\nFN:{}\nEMAIL:{}\nTEL:{}\nEND:VCARD\n",
            self.name, self.email, self.phone
        )
    }

    fn from_vcard(id: &str, text: &str) -> Option<Contact> {
        let field = |key: &str| {
            text.lines()
                .find_map(|l| l.strip_prefix(key))
                .map(str::to_owned)
        };
        Some(Contact {
            id: id.to_owned(),
            name: field("FN:")?,
            email: field("EMAIL:")?,
            phone: field("TEL:")?,
        })
    }
}

/// The contacts service.
#[derive(Debug)]
pub struct ContactsBook;

const CONTACTS_DIR: &str = "/personal/contacts";

impl ContactsBook {
    /// Ensures the contacts collection exists.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn init(store: &mut ObjectStore) -> Result<(), StoreError> {
        store.mkcol_recursive(CONTACTS_DIR)
    }

    /// Saves (or updates) a contact.
    ///
    /// # Errors
    ///
    /// Propagates store errors (e.g. service not initialized).
    pub fn save(
        store: &mut ObjectStore,
        contact: &Contact,
        now: SimTime,
    ) -> Result<(), StoreError> {
        store.put(
            &format!("{CONTACTS_DIR}/{}.vcf", contact.id),
            contact.to_vcard(),
            now,
        )?;
        Ok(())
    }

    /// Loads a contact by id.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unknown ids.
    pub fn load(store: &ObjectStore, id: &str) -> Result<Contact, StoreError> {
        let v = store.get(&format!("{CONTACTS_DIR}/{id}.vcf"))?;
        Contact::from_vcard(id, &String::from_utf8_lossy(&v.body)).ok_or(StoreError::Conflict)
    }

    /// All contacts, sorted by id.
    pub fn list(store: &ObjectStore) -> Vec<Contact> {
        store
            .files_under(CONTACTS_DIR)
            .iter()
            .filter_map(|path| {
                let id = path.rsplit('/').next()?.strip_suffix(".vcf")?;
                ContactsBook::load(store, id).ok()
            })
            .collect()
    }

    /// Contacts whose name or email contains `query` (case-insensitive).
    pub fn search(store: &ObjectStore, query: &str) -> Vec<Contact> {
        let q = query.to_ascii_lowercase();
        Self::list(store)
            .into_iter()
            .filter(|c| {
                c.name.to_ascii_lowercase().contains(&q)
                    || c.email.to_ascii_lowercase().contains(&q)
            })
            .collect()
    }
}

/// A calendar event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CalendarEvent {
    /// Stable identifier (file stem).
    pub id: String,
    /// Event title.
    pub title: String,
    /// Start instant.
    pub start: SimTime,
    /// Duration.
    pub duration: SimDuration,
}

impl CalendarEvent {
    /// The event's end instant.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    fn to_ical(&self) -> String {
        format!(
            "BEGIN:VEVENT\nSUMMARY:{}\nDTSTART:{}\nDURATION:{}\nEND:VEVENT\n",
            self.title,
            self.start.as_nanos(),
            self.duration.as_nanos()
        )
    }

    fn from_ical(id: &str, text: &str) -> Option<CalendarEvent> {
        let field = |key: &str| text.lines().find_map(|l| l.strip_prefix(key));
        Some(CalendarEvent {
            id: id.to_owned(),
            title: field("SUMMARY:")?.to_owned(),
            start: SimTime::from_nanos(field("DTSTART:")?.parse().ok()?),
            duration: SimDuration::from_nanos(field("DURATION:")?.parse().ok()?),
        })
    }
}

/// The calendar service.
#[derive(Debug)]
pub struct Calendar;

const CALENDAR_DIR: &str = "/personal/calendar";

impl Calendar {
    /// Ensures the calendar collection exists.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn init(store: &mut ObjectStore) -> Result<(), StoreError> {
        store.mkcol_recursive(CALENDAR_DIR)
    }

    /// Saves (or updates) an event.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn save(
        store: &mut ObjectStore,
        event: &CalendarEvent,
        now: SimTime,
    ) -> Result<(), StoreError> {
        store.put(
            &format!("{CALENDAR_DIR}/{}.ics", event.id),
            event.to_ical(),
            now,
        )?;
        Ok(())
    }

    /// All events, sorted by start time.
    pub fn list(store: &ObjectStore) -> Vec<CalendarEvent> {
        let mut events: Vec<CalendarEvent> = store
            .files_under(CALENDAR_DIR)
            .iter()
            .filter_map(|path| {
                let id = path.rsplit('/').next()?.strip_suffix(".ics")?;
                let v = store.get(path).ok()?;
                CalendarEvent::from_ical(id, &String::from_utf8_lossy(&v.body))
            })
            .collect();
        events.sort_by_key(|e| (e.start, e.id.clone()));
        events
    }

    /// Events overlapping `[from, from + horizon]`, soonest first.
    pub fn upcoming(
        store: &ObjectStore,
        from: SimTime,
        horizon: SimDuration,
    ) -> Vec<CalendarEvent> {
        let until = from + horizon;
        Self::list(store)
            .into_iter()
            .filter(|e| e.end() > from && e.start < until)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn contact(id: &str, name: &str) -> Contact {
        Contact {
            id: id.into(),
            name: name.into(),
            email: format!("{id}@mail.example"),
            phone: "555-0100".into(),
        }
    }

    #[test]
    fn contacts_roundtrip_and_search() {
        let mut store = ObjectStore::new();
        ContactsBook::init(&mut store).unwrap();
        ContactsBook::save(&mut store, &contact("ada", "Ada Lovelace"), t(1)).unwrap();
        ContactsBook::save(&mut store, &contact("alan", "Alan Turing"), t(2)).unwrap();
        assert_eq!(ContactsBook::list(&store).len(), 2);
        let got = ContactsBook::load(&store, "ada").unwrap();
        assert_eq!(got.name, "Ada Lovelace");
        let hits = ContactsBook::search(&store, "turing");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "alan");
        assert!(ContactsBook::search(&store, "nobody").is_empty());
    }

    #[test]
    fn contact_updates_version_like_any_attic_file() {
        let mut store = ObjectStore::new();
        ContactsBook::init(&mut store).unwrap();
        ContactsBook::save(&mut store, &contact("ada", "Ada"), t(1)).unwrap();
        let mut updated = contact("ada", "Ada Lovelace");
        updated.phone = "555-0199".into();
        ContactsBook::save(&mut store, &updated, t(2)).unwrap();
        assert_eq!(ContactsBook::load(&store, "ada").unwrap().phone, "555-0199");
        // The attic's version history covers the service for free.
        assert_eq!(
            store.history("/personal/contacts/ada.vcf").unwrap().len(),
            2
        );
    }

    #[test]
    fn calendar_upcoming_window() {
        let mut store = ObjectStore::new();
        Calendar::init(&mut store).unwrap();
        let events = [
            ("standup", 1_000u64, 600u64),
            ("dentist", 5_000, 3_600),
            ("trip", 100_000, 7_200),
        ];
        for (id, start, dur) in events {
            Calendar::save(
                &mut store,
                &CalendarEvent {
                    id: id.into(),
                    title: id.to_uppercase(),
                    start: t(start),
                    duration: SimDuration::from_secs(dur),
                },
                t(0),
            )
            .unwrap();
        }
        let up = Calendar::upcoming(&store, t(1_200), SimDuration::from_secs(10_000));
        // standup is still running at 1200; dentist starts inside the
        // window; the trip is beyond it.
        let ids: Vec<&str> = up.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["standup", "dentist"]);
        assert_eq!(Calendar::list(&store).len(), 3);
    }

    #[test]
    fn unknown_contact_is_not_found() {
        let mut store = ObjectStore::new();
        ContactsBook::init(&mut store).unwrap();
        assert_eq!(
            ContactsBook::load(&store, "ghost"),
            Err(StoreError::NotFound)
        );
    }
}
