//! The real-socket adapter: the attic as a deployable appliance.
//!
//! Where [`AtticServer`](crate::server::AtticServer) answers simulated
//! requests, [`AtticDaemon`] binds a `std::net::TcpListener`, frames
//! HTTP/1.1 with [`hpop_http::h1`], and drives the *same*
//! [`DavCore`] engine — the tentpole claim of the ports-and-adapters
//! split is that the conformance suite cannot tell the two apart.
//!
//! Mechanics:
//!
//! - **Accept loop** — nonblocking accept polled every few
//!   milliseconds so a graceful-shutdown flag is honored promptly; each
//!   connection gets a handler thread, all joined before
//!   [`DaemonHandle::stop`] returns (no dropped in-flight responses).
//! - **Per-connection deadlines** — every connection gets a
//!   [`Deadline`] budget; the remaining budget becomes the socket read
//!   timeout before each request, so an idle or stalled client cannot
//!   pin a handler thread forever.
//! - **Deterministic time** — WebDAV semantics depend on *when* (lock
//!   expiry, version timestamps). The daemon derives `now` from the
//!   process clock against a fixed epoch, but honors an `x-sim-time`
//!   request header carrying nanoseconds: the conformance suite pins
//!   time with it, making daemon responses byte-identical to the sim
//!   adapter's.

use crate::ports::{AtticBackend, Origin};
use crate::webdav::DavCore;
use hpop_http::h1;
use hpop_http::message::{Response, StatusCode};
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_resilience::deadline::Deadline;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the daemon.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port).
    pub bind: String,
    /// Wall-clock budget per connection; when it runs out the
    /// connection is closed after the in-flight response.
    pub connection_budget: SimDuration,
    /// Concurrent connections served at once. Connections over the cap
    /// are answered `503 Service Unavailable` + `Retry-After` and
    /// closed — never silently stalled in the accept backlog.
    pub max_connections: usize,
    /// Complete pipelined requests one connection may have queued.
    /// A deeper pipeline gets a `503` + `Retry-After` and the
    /// connection is closed (bounded work per handler thread).
    pub max_queued_requests: usize,
    /// The `Retry-After` hint stamped on overload `503`s.
    pub retry_after: SimDuration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            bind: "127.0.0.1:0".to_owned(),
            connection_budget: SimDuration::from_secs(30),
            max_connections: 64,
            max_queued_requests: 32,
            retry_after: SimDuration::from_secs(1),
        }
    }
}

/// Counters the daemon exposes after shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (any status).
    pub requests: u64,
    /// Connections dropped on framing errors.
    pub bad_frames: u64,
    /// Connections or pipelines refused with `503` + `Retry-After`
    /// because a cap ([`DaemonConfig::max_connections`] /
    /// [`DaemonConfig::max_queued_requests`]) was hit.
    pub overload_rejects: u64,
}

struct Shared<B: AtticBackend> {
    core: Mutex<DavCore<B>>,
    cfg: DaemonConfig,
    stop: AtomicBool,
    connections: AtomicU64,
    live: AtomicU64,
    requests: AtomicU64,
    bad_frames: AtomicU64,
    overload_rejects: AtomicU64,
    epoch: Instant,
}

/// The overload answer: `503` with an honest `Retry-After` (seconds,
/// rounded up so the hint is never zero).
fn overloaded_response(retry_after: SimDuration) -> Response {
    let secs = (retry_after.as_secs_f64().ceil() as u64).max(1);
    Response::new(StatusCode::SERVICE_UNAVAILABLE).with_header("retry-after", secs.to_string())
}

/// How many complete requests are sitting in `buf` right now.
fn pipelined_depth(buf: &[u8]) -> usize {
    let mut depth = 0;
    let mut off = 0;
    while let Ok(Some((_req, consumed))) = h1::decode_request(&buf[off..]) {
        depth += 1;
        off += consumed;
    }
    depth
}

/// Decrements the live-connection gauge even if the handler panics, so
/// the connection cap can never wedge shut.
struct LiveGuard<'a>(&'a AtomicU64);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running attic daemon; dropping the handle without calling
/// [`DaemonHandle::stop`] aborts ungracefully (the accept thread is
/// detached), so call `stop`.
pub struct AtticDaemon;

/// Control handle for a spawned daemon.
pub struct DaemonHandle<B: AtticBackend> {
    shared: Arc<Shared<B>>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl AtticDaemon {
    /// Binds and starts serving `core` in background threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn<B: AtticBackend + Send + 'static>(
        cfg: DaemonConfig,
        core: DavCore<B>,
    ) -> std::io::Result<DaemonHandle<B>> {
        let listener = TcpListener::bind(&cfg.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let max_connections = cfg.max_connections.max(1) as u64;
        let retry_after = cfg.retry_after;
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            cfg,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            live: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            overload_rejects: AtomicU64::new(0),
            epoch: Instant::now(),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            loop {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        accept_shared.connections.fetch_add(1, Ordering::SeqCst);
                        if accept_shared.live.load(Ordering::SeqCst) >= max_connections {
                            // Over the cap: an explicit refusal the
                            // client can act on, not a silent stall.
                            accept_shared
                                .overload_rejects
                                .fetch_add(1, Ordering::SeqCst);
                            let resp = overloaded_response(retry_after);
                            let _ = stream.write_all(&h1::encode_response(&resp));
                            let _ = stream.flush();
                            handlers.retain(|h| !h.is_finished());
                            continue;
                        }
                        accept_shared.live.fetch_add(1, Ordering::SeqCst);
                        let conn_shared = accept_shared.clone();
                        handlers.push(std::thread::spawn(move || {
                            let _live = LiveGuard(&conn_shared.live);
                            handle_connection(stream, &conn_shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        if accept_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                handlers.retain(|h| !h.is_finished());
            }
            // Graceful: every in-flight connection completes.
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(DaemonHandle {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }
}

impl<B: AtticBackend> DaemonHandle<B> {
    /// The bound address (use for loopback clients).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop (and through it every
    /// connection handler). Returns the final stats.
    pub fn stop(mut self) -> DaemonStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        DaemonStats {
            connections: self.shared.connections.load(Ordering::SeqCst),
            requests: self.shared.requests.load(Ordering::SeqCst),
            bad_frames: self.shared.bad_frames.load(Ordering::SeqCst),
            overload_rejects: self.shared.overload_rejects.load(Ordering::SeqCst),
        }
    }
}

/// The logical "now" for one request: the `x-sim-time` header (nanos)
/// when present, else process-clock nanoseconds since daemon start.
fn request_time<B: AtticBackend>(shared: &Shared<B>, req: &hpop_http::message::Request) -> SimTime {
    if let Some(nanos) = req
        .headers
        .get("x-sim-time")
        .and_then(|v| v.parse::<u64>().ok())
    {
        return SimTime::from_nanos(nanos);
    }
    SimTime::from_nanos(shared.epoch.elapsed().as_nanos() as u64)
}

fn handle_connection<B: AtticBackend>(mut stream: TcpStream, shared: &Shared<B>) {
    let started = Instant::now();
    let deadline = Deadline::after(SimTime::ZERO, shared.cfg.connection_budget);
    let max_queued = shared.cfg.max_queued_requests.max(1);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut scratch = [0u8; 4096];
    loop {
        // The connection's remaining budget becomes the read timeout.
        let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
        if deadline.expired(now) {
            return;
        }
        let remaining = deadline.remaining(now);
        let timeout = Duration::from_nanos(remaining.as_nanos().max(1));
        if stream.set_read_timeout(Some(timeout)).is_err() {
            return;
        }
        // Parse-or-read loop: consume complete requests from the front
        // of the buffer, read more bytes when incomplete.
        match h1::decode_request(&buf) {
            Ok(Some((req, consumed))) => {
                // Bounded pipeline: a client that has queued more
                // complete requests than the cap is refused with a
                // retryable 503 instead of pinning this thread.
                if pipelined_depth(&buf) > max_queued {
                    shared.overload_rejects.fetch_add(1, Ordering::SeqCst);
                    let resp = overloaded_response(shared.cfg.retry_after);
                    let _ = stream.write_all(&h1::encode_response(&resp));
                    let _ = stream.flush();
                    return;
                }
                buf.drain(..consumed);
                let origin = match req.headers.get("x-attic-origin") {
                    Some("external") => Origin::External,
                    _ => Origin::Local,
                };
                let at = request_time(shared, &req);
                let resp = {
                    let mut core = shared.core.lock().expect("engine lock never poisoned");
                    core.serve(&req, origin, at)
                };
                shared.requests.fetch_add(1, Ordering::SeqCst);
                if stream.write_all(&h1::encode_response(&resp)).is_err() {
                    return;
                }
                if req.headers.get("connection") == Some("close") {
                    let _ = stream.flush();
                    return;
                }
            }
            Ok(None) => match stream.read(&mut scratch) {
                Ok(0) => return, // peer closed
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return; // budget exhausted waiting for bytes
                }
                Err(_) => return,
            },
            Err(_) => {
                shared.bad_frames.fetch_add(1, Ordering::SeqCst);
                let resp = Response::new(StatusCode::BAD_REQUEST);
                let _ = stream.write_all(&h1::encode_response(&resp));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::VolatileBackend;
    use hpop_core::auth::TokenVerifier;
    use hpop_http::message::{Method, Request};
    use hpop_http::url::Url;

    fn spawn_daemon() -> DaemonHandle<VolatileBackend> {
        let core = DavCore::new(VolatileBackend::new(), TokenVerifier::new([7u8; 32]));
        AtticDaemon::spawn(DaemonConfig::default(), core).expect("bind loopback")
    }

    fn round_trip(stream: &mut TcpStream, req: &Request) -> Response {
        stream.write_all(&h1::encode_request(req)).unwrap();
        let mut buf = Vec::new();
        let mut scratch = [0u8; 4096];
        loop {
            if let Some((resp, consumed)) = h1::decode_response(&buf).unwrap() {
                assert_eq!(consumed, buf.len(), "no trailing bytes in tests");
                return resp;
            }
            let n = stream.read(&mut scratch).unwrap();
            assert!(n > 0, "daemon closed mid-response");
            buf.extend_from_slice(&scratch[..n]);
        }
    }

    fn url(p: &str) -> Url {
        Url::new("http", "attic.home", p)
    }

    #[test]
    fn serves_webdav_over_loopback_and_stops_gracefully() {
        let handle = spawn_daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();

        let put = Request::put(url("/note.txt"), &b"over a real socket"[..])
            .with_header("x-sim-time", "1000000000");
        let r = round_trip(&mut stream, &put);
        assert_eq!(r.status, StatusCode::CREATED);
        let etag = r.headers.get("etag").unwrap().to_owned();

        // Same connection, second request (keep-alive).
        let get = Request::get(url("/note.txt")).with_header("x-sim-time", "2000000000");
        let r = round_trip(&mut stream, &get);
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(&r.body[..], b"over a real socket");
        assert_eq!(r.headers.get("etag"), Some(etag.as_str()));

        let options =
            Request::new(Method::Options, url("/")).with_header("x-sim-time", "3000000000");
        let r = round_trip(&mut stream, &options);
        assert_eq!(r.headers.get("dav"), Some("1, 2"));

        drop(stream);
        let stats = handle.stop();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.bad_frames, 0);
    }

    #[test]
    fn malformed_frames_get_400_and_close() {
        let handle = spawn_daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"BREW /pot HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        let mut scratch = [0u8; 1024];
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(_) => break,
            }
        }
        let (resp, _) = h1::decode_response(&buf).unwrap().expect("a 400 came back");
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        let stats = handle.stop();
        assert_eq!(stats.bad_frames, 1);
    }

    fn spawn_with(cfg: DaemonConfig) -> DaemonHandle<VolatileBackend> {
        let core = DavCore::new(VolatileBackend::new(), TokenVerifier::new([7u8; 32]));
        AtticDaemon::spawn(cfg, core).expect("bind loopback")
    }

    /// Reads until EOF and decodes every response on the wire.
    fn drain_responses(stream: &mut TcpStream) -> Vec<Response> {
        let mut buf = Vec::new();
        let mut scratch = [0u8; 4096];
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(_) => break,
            }
        }
        let mut out = Vec::new();
        let mut off = 0;
        while let Ok(Some((resp, consumed))) = h1::decode_response(&buf[off..]) {
            out.push(resp);
            off += consumed;
        }
        out
    }

    #[test]
    fn connection_cap_answers_503_with_retry_after() {
        let handle = spawn_with(DaemonConfig {
            max_connections: 1,
            retry_after: SimDuration::from_secs(3),
            ..DaemonConfig::default()
        });

        // Fill the single slot and prove it is live with a request.
        let mut first = TcpStream::connect(handle.addr()).unwrap();
        let put = Request::put(url("/slot"), &b"x"[..]).with_header("x-sim-time", "0");
        assert_eq!(round_trip(&mut first, &put).status, StatusCode::CREATED);

        // The second connection is refused explicitly, not stalled.
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        let responses = drain_responses(&mut second);
        assert_eq!(responses.len(), 1, "exactly one refusal then close");
        assert_eq!(responses[0].status, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(responses[0].headers.get("retry-after"), Some("3"));

        // Releasing the slot lets a later client in.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = TcpStream::connect(handle.addr()).unwrap();
            let get = Request::get(url("/slot")).with_header("x-sim-time", "1");
            retry.write_all(&h1::encode_request(&get)).unwrap();
            let responses = drain_responses(&mut retry);
            if responses.first().map(|r| r.status) == Some(StatusCode::OK) {
                break;
            }
            assert!(Instant::now() < deadline, "slot never freed after close");
            std::thread::sleep(Duration::from_millis(10));
        }

        let stats = handle.stop();
        assert!(stats.overload_rejects >= 1);
    }

    #[test]
    fn pipeline_cap_answers_503_and_closes() {
        let handle = spawn_with(DaemonConfig {
            max_queued_requests: 2,
            ..DaemonConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Six pipelined requests in one write: far over the cap of 2.
        let mut wire = Vec::new();
        for i in 0..6 {
            let get = Request::get(url("/pipelined")).with_header("x-sim-time", i.to_string());
            wire.extend_from_slice(&h1::encode_request(&get));
        }
        stream.write_all(&wire).unwrap();
        let responses = drain_responses(&mut stream);
        let last = responses.last().expect("a refusal came back");
        assert_eq!(last.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(last.headers.get("retry-after").is_some());
        // At most `max_queued_requests` requests were ever served
        // before the refusal (fewer if the burst landed in one read).
        assert!(responses.len() <= 3, "served {} responses", responses.len());
        let stats = handle.stop();
        assert_eq!(stats.overload_rejects, 1);
    }

    #[test]
    fn external_origin_header_enforces_grants() {
        let handle = spawn_daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let put = Request::put(url("/secret"), &b"x"[..])
            .with_header("x-attic-origin", "external")
            .with_header("x-sim-time", "0");
        let r = round_trip(&mut stream, &put);
        assert_eq!(r.status, StatusCode::UNAUTHORIZED);
        drop(stream);
        handle.stop();
    }
}
