//! WebDAV property XML: the 207 Multi-Status document and the
//! `PROPFIND`/`PROPPATCH` request bodies (RFC 4918 §9.1, §14).
//!
//! The paper's attic is a WebDAV server, and real WebDAV clients speak
//! property XML: a `PROPFIND` carries an optional body selecting
//! properties, and the server answers `207 Multi-Status` — one
//! `<D:response>` per resource, each holding `<D:propstat>` groups that
//! pair a set of properties with the status that applies to them (found
//! properties under `200 OK`, unknown ones under `404 Not Found`).
//!
//! Both directions live here: a dedicated encoder ([`MultiStatus::to_xml`])
//! with full escaping, and a small parser ([`MultiStatus::parse`],
//! [`PropfindBody::parse`]) sufficient for round-tripping our own
//! documents and reading client requests. The parser accepts the `D:`
//! namespace prefix (or none) and the five standard XML entities.

use hpop_http::message::StatusCode;

/// Escapes text for use in XML content or attribute values.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`xml_escape`]. Unknown entities are left verbatim.
pub fn xml_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let known = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        match known.iter().find(|(e, _)| rest.starts_with(e)) {
            Some((entity, ch)) => {
                out.push(*ch);
                rest = &rest[entity.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// The value of one WebDAV property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropValue {
    /// Ordinary text content (`<D:getetag>"abc"</D:getetag>`).
    Text(String),
    /// The collection marker (`<D:resourcetype><D:collection/></D:resourcetype>`).
    Collection,
    /// An empty element (`<D:resourcetype/>`; also used in `propname`
    /// listings and 404 propstats, where only the name is reported).
    Empty,
}

/// One `<D:propstat>`: a set of properties sharing a status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Propstat {
    /// The HTTP status applying to every property in this group.
    pub status: StatusCode,
    /// `(name, value)` pairs; names carry no namespace prefix.
    pub props: Vec<(String, PropValue)>,
}

/// One `<D:response>`: a resource and its property statuses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DavResponse {
    /// The resource URI (path, possibly with a `?version=` suffix).
    pub href: String,
    /// Property groups, one per distinct status.
    pub propstats: Vec<Propstat>,
}

/// A `207 Multi-Status` document body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiStatus {
    /// Per-resource responses, in the order they will be emitted.
    pub responses: Vec<DavResponse>,
}

impl MultiStatus {
    /// Encodes the document. Every text node and href is escaped; an
    /// empty `Text` value is encoded as an open/close pair so it stays
    /// distinguishable from [`PropValue::Empty`] on re-parse.
    pub fn to_xml(&self) -> String {
        let mut x = String::with_capacity(256);
        x.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
        x.push_str("<D:multistatus xmlns:D=\"DAV:\">\n");
        for r in &self.responses {
            x.push_str("<D:response>\n");
            x.push_str(&format!("<D:href>{}</D:href>\n", xml_escape(&r.href)));
            for ps in &r.propstats {
                x.push_str("<D:propstat>\n<D:prop>\n");
                for (name, value) in &ps.props {
                    match value {
                        PropValue::Text(t) => {
                            x.push_str(&format!("<D:{name}>{}</D:{name}>\n", xml_escape(t)))
                        }
                        PropValue::Collection => {
                            x.push_str(&format!("<D:{name}><D:collection/></D:{name}>\n"))
                        }
                        PropValue::Empty => x.push_str(&format!("<D:{name}/>\n")),
                    }
                }
                x.push_str("</D:prop>\n");
                x.push_str(&format!(
                    "<D:status>HTTP/1.1 {} {}</D:status>\n",
                    ps.status.0,
                    ps.status.reason()
                ));
                x.push_str("</D:propstat>\n");
            }
            x.push_str("</D:response>\n");
        }
        x.push_str("</D:multistatus>\n");
        x
    }

    /// Parses a Multi-Status document produced by [`MultiStatus::to_xml`]
    /// (or an equivalent one from another server). Returns `None` on any
    /// structural violation.
    pub fn parse(xml: &str) -> Option<MultiStatus> {
        let mut toks = Tokenizer::new(xml);
        toks.expect_open("multistatus")?;
        let mut responses = Vec::new();
        loop {
            match toks.next()? {
                Token::Open("response") => responses.push(parse_response(&mut toks)?),
                Token::Close("multistatus") => break,
                _ => return None,
            }
        }
        Some(MultiStatus { responses })
    }
}

fn parse_response(toks: &mut Tokenizer<'_>) -> Option<DavResponse> {
    toks.expect_open("href")?;
    let href = match toks.next()? {
        Token::Text(t) => {
            if toks.next()? != Token::Close("href") {
                return None;
            }
            t
        }
        Token::Close("href") => String::new(),
        _ => return None,
    };
    let mut propstats = Vec::new();
    loop {
        match toks.next()? {
            Token::Open("propstat") => propstats.push(parse_propstat(toks)?),
            Token::Close("response") => break,
            _ => return None,
        }
    }
    Some(DavResponse { href, propstats })
}

fn parse_propstat(toks: &mut Tokenizer<'_>) -> Option<Propstat> {
    toks.expect_open("prop")?;
    let mut props = Vec::new();
    loop {
        match toks.next()? {
            Token::Close("prop") => break,
            Token::SelfClose(name) => props.push((name.to_owned(), PropValue::Empty)),
            Token::Open(name) => {
                let value = match toks.next()? {
                    Token::Text(t) => {
                        if toks.next()? != Token::Close(name) {
                            return None;
                        }
                        PropValue::Text(t)
                    }
                    Token::Close(n) if n == name => PropValue::Text(String::new()),
                    Token::SelfClose("collection") => {
                        if toks.next()? != Token::Close(name) {
                            return None;
                        }
                        PropValue::Collection
                    }
                    _ => return None,
                };
                props.push((name.to_owned(), value));
            }
            _ => return None,
        }
    }
    toks.expect_open("status")?;
    let status = match toks.next()? {
        Token::Text(line) => parse_status_line(&line)?,
        _ => return None,
    };
    if toks.next()? != Token::Close("status") {
        return None;
    }
    if toks.next()? != Token::Close("propstat") {
        return None;
    }
    Some(Propstat { status, props })
}

fn parse_status_line(line: &str) -> Option<StatusCode> {
    let rest = line.trim().strip_prefix("HTTP/1.1 ")?;
    let code: u16 = rest.split_whitespace().next()?.parse().ok()?;
    Some(StatusCode(code))
}

/// What a `PROPFIND` request body asks for (RFC 4918 §9.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropfindBody {
    /// `<D:allprop/>` or an empty body: every live property.
    AllProp,
    /// `<D:propname/>`: names only, no values.
    PropName,
    /// `<D:prop>` with an explicit list of property names.
    Props(Vec<String>),
}

impl PropfindBody {
    /// Parses a propfind body; an empty (or whitespace-only) body means
    /// `allprop` per the RFC. Returns `None` on malformed XML.
    pub fn parse(body: &str) -> Option<PropfindBody> {
        if body.trim().is_empty() {
            return Some(PropfindBody::AllProp);
        }
        let mut toks = Tokenizer::new(body);
        toks.expect_open("propfind")?;
        let mode = match toks.next()? {
            Token::SelfClose("allprop") => PropfindBody::AllProp,
            Token::SelfClose("propname") => PropfindBody::PropName,
            Token::Open("allprop") => {
                if toks.next()? != Token::Close("allprop") {
                    return None;
                }
                PropfindBody::AllProp
            }
            Token::Open("propname") => {
                if toks.next()? != Token::Close("propname") {
                    return None;
                }
                PropfindBody::PropName
            }
            Token::Open("prop") => {
                let mut names = Vec::new();
                loop {
                    match toks.next()? {
                        Token::SelfClose(n) => names.push(n.to_owned()),
                        Token::Open(n) => {
                            if toks.next()? != Token::Close(n) {
                                return None;
                            }
                            names.push(n.to_owned());
                        }
                        Token::Close("prop") => break,
                        _ => return None,
                    }
                }
                PropfindBody::Props(names)
            }
            _ => return None,
        };
        if toks.next()? != Token::Close("propfind") {
            return None;
        }
        Some(mode)
    }

    /// Encodes the request body (used by tests and the conformance
    /// suite's client side).
    pub fn to_xml(&self) -> String {
        let inner = match self {
            PropfindBody::AllProp => "<D:allprop/>".to_owned(),
            PropfindBody::PropName => "<D:propname/>".to_owned(),
            PropfindBody::Props(names) => {
                let mut s = String::from("<D:prop>");
                for n in names {
                    s.push_str(&format!("<D:{n}/>"));
                }
                s.push_str("</D:prop>");
                s
            }
        };
        format!(
            "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<D:propfind xmlns:D=\"DAV:\">{inner}</D:propfind>\n"
        )
    }
}

/// Property names a `PROPPATCH` body touches (inside `<D:set>` /
/// `<D:remove>`); the attic exposes live properties only, so every one
/// of these is answered with `403 Forbidden` in the Multi-Status.
pub fn proppatch_prop_names(body: &str) -> Option<Vec<String>> {
    let mut toks = Tokenizer::new(body);
    toks.expect_open("propertyupdate")?;
    let mut names = Vec::new();
    let mut depth = 1usize;
    // Names are whatever appears directly inside a <D:prop> element.
    let mut in_prop = false;
    loop {
        match toks.next()? {
            Token::Open("prop") => {
                in_prop = true;
                depth += 1;
            }
            Token::Close("prop") => {
                in_prop = false;
                depth -= 1;
            }
            Token::Open(_) => depth += 1,
            Token::Close("propertyupdate") => break,
            Token::Close(_) => {
                depth = depth.checked_sub(1)?;
            }
            Token::SelfClose(n) => {
                if in_prop {
                    names.push(n.to_owned());
                }
            }
            Token::Text(_) => {}
        }
    }
    Some(names)
}

/// A minimal XML pull tokenizer for the WebDAV subset: tags (with an
/// optional `D:` prefix that is stripped), text nodes, self-closing
/// elements. Comments, CDATA and processing instructions other than the
/// leading `<?xml …?>` are not supported — the attic never emits them.
#[derive(Debug)]
struct Tokenizer<'a> {
    rest: &'a str,
}

#[derive(Debug, PartialEq, Eq)]
enum Token<'a> {
    Open(&'a str),
    Close(&'a str),
    SelfClose(&'a str),
    Text(String),
}

/// Strips an optional namespace prefix (`D:foo` → `foo`).
fn local_name(name: &str) -> &str {
    match name.split_once(':') {
        Some((_, local)) => local,
        None => name,
    }
}

impl<'a> Tokenizer<'a> {
    fn new(s: &'a str) -> Tokenizer<'a> {
        Tokenizer { rest: s }
    }

    /// The next token, skipping whitespace-only text and the XML
    /// declaration. `None` at end of input or on malformed markup.
    fn next(&mut self) -> Option<Token<'a>> {
        loop {
            self.rest = self.rest.trim_start();
            if self.rest.is_empty() {
                return None;
            }
            if let Some(after) = self.rest.strip_prefix("<?") {
                let end = after.find("?>")?;
                self.rest = &after[end + 2..];
                continue;
            }
            if let Some(after) = self.rest.strip_prefix("</") {
                let end = after.find('>')?;
                let name = local_name(after[..end].trim());
                self.rest = &after[end + 1..];
                return Some(Token::Close(name));
            }
            if let Some(after) = self.rest.strip_prefix('<') {
                let end = after.find('>')?;
                let raw = after[..end].trim();
                self.rest = &after[end + 1..];
                if let Some(inner) = raw.strip_suffix('/') {
                    let name = inner.split_whitespace().next()?;
                    return Some(Token::SelfClose(local_name(name)));
                }
                // Attributes (e.g. xmlns:D="DAV:") are skipped.
                let name = raw.split_whitespace().next()?;
                return Some(Token::Open(local_name(name)));
            }
            // Text node: up to the next tag.
            let end = self.rest.find('<').unwrap_or(self.rest.len());
            let (text, rest) = self.rest.split_at(end);
            self.rest = rest;
            let text = text.trim();
            if !text.is_empty() {
                return Some(Token::Text(xml_unescape(text)));
            }
        }
    }

    /// Requires the next token to open `name`.
    fn expect_open(&mut self, name: &str) -> Option<()> {
        match self.next()? {
            Token::Open(n) if n == name => Some(()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let hairy = "a&b<c>d\"e'f &amp; <D:fake/>";
        assert_eq!(xml_unescape(&xml_escape(hairy)), hairy);
        assert_eq!(xml_escape("plain"), "plain");
        // Unknown entities survive verbatim.
        assert_eq!(xml_unescape("&bogus; &"), "&bogus; &");
    }

    #[test]
    fn multistatus_round_trips() {
        let ms = MultiStatus {
            responses: vec![
                DavResponse {
                    href: "/docs/a&b.txt".into(),
                    propstats: vec![
                        Propstat {
                            status: StatusCode::OK,
                            props: vec![
                                ("displayname".into(), PropValue::Text("a&b.txt".into())),
                                ("getetag".into(), PropValue::Text("\"abc\"".into())),
                                ("resourcetype".into(), PropValue::Empty),
                            ],
                        },
                        Propstat {
                            status: StatusCode::NOT_FOUND,
                            props: vec![("missingprop".into(), PropValue::Empty)],
                        },
                    ],
                },
                DavResponse {
                    href: "/docs".into(),
                    propstats: vec![Propstat {
                        status: StatusCode::OK,
                        props: vec![("resourcetype".into(), PropValue::Collection)],
                    }],
                },
            ],
        };
        let xml = ms.to_xml();
        assert!(xml.contains("HTTP/1.1 404 Not Found"));
        assert!(xml.contains("a&amp;b.txt"));
        let back = MultiStatus::parse(&xml).expect("parses");
        assert_eq!(back, ms);
    }

    #[test]
    fn empty_text_distinct_from_empty_element() {
        let ms = MultiStatus {
            responses: vec![DavResponse {
                href: "/f".into(),
                propstats: vec![Propstat {
                    status: StatusCode::OK,
                    props: vec![
                        ("a".into(), PropValue::Text(String::new())),
                        ("b".into(), PropValue::Empty),
                    ],
                }],
            }],
        };
        let back = MultiStatus::parse(&ms.to_xml()).expect("parses");
        assert_eq!(back, ms);
    }

    #[test]
    fn propfind_bodies() {
        assert_eq!(PropfindBody::parse(""), Some(PropfindBody::AllProp));
        assert_eq!(PropfindBody::parse("  \n"), Some(PropfindBody::AllProp));
        let allprop =
            "<?xml version=\"1.0\"?><D:propfind xmlns:D=\"DAV:\"><D:allprop/></D:propfind>";
        assert_eq!(PropfindBody::parse(allprop), Some(PropfindBody::AllProp));
        let named =
            "<D:propfind xmlns:D=\"DAV:\"><D:prop><D:getetag/><D:resourcetype/></D:prop></D:propfind>";
        assert_eq!(
            PropfindBody::parse(named),
            Some(PropfindBody::Props(vec![
                "getetag".into(),
                "resourcetype".into()
            ]))
        );
        // No-prefix documents parse too.
        let bare = "<propfind><propname/></propfind>";
        assert_eq!(PropfindBody::parse(bare), Some(PropfindBody::PropName));
        // Round-trip through our own encoder.
        for body in [
            PropfindBody::AllProp,
            PropfindBody::PropName,
            PropfindBody::Props(vec!["getetag".into(), "version-list".into()]),
        ] {
            assert_eq!(PropfindBody::parse(&body.to_xml()), Some(body));
        }
        assert_eq!(PropfindBody::parse("<not-propfind/>"), None);
        assert_eq!(PropfindBody::parse("<D:propfind><D:prop>"), None);
    }

    #[test]
    fn proppatch_names_extracted() {
        let body = "<?xml version=\"1.0\"?>\
            <D:propertyupdate xmlns:D=\"DAV:\">\
            <D:set><D:prop><D:color/><D:rank/></D:prop></D:set>\
            <D:remove><D:prop><D:stale/></D:prop></D:remove>\
            </D:propertyupdate>";
        assert_eq!(
            proppatch_prop_names(body),
            Some(vec!["color".into(), "rank".into(), "stale".into()])
        );
        assert_eq!(proppatch_prop_names("<garbage"), None);
    }

    #[test]
    fn malformed_documents_rejected() {
        assert_eq!(MultiStatus::parse(""), None);
        assert_eq!(MultiStatus::parse("<D:multistatus>"), None);
        assert_eq!(
            MultiStatus::parse("<D:multistatus><D:bogus/></D:multistatus>"),
            None
        );
        let truncated = "<D:multistatus><D:response><D:href>/x</D:href>";
        assert_eq!(MultiStatus::parse(truncated), None);
    }
}
