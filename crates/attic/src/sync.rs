//! Offline-mode reconciliation.
//!
//! §IV-A ("Flexible Access"): "just as some popular cloud-based
//! applications have an 'offline mode' … similar use of attic-based data
//! is possible. Just as with cloud-based applications, changes to the
//! files would need reconciled upon reconnection."
//!
//! [`OfflineReplica`] snapshots a subtree (remembering base ETags),
//! accumulates disconnected edits, and on reconnection applies each edit
//! whose base is still current; diverged files become *conflict copies*
//! next to the canonical one — the attic never silently loses a version.

use crate::store::{ObjectStore, StoreError};
use bytes::Bytes;
use hpop_netsim::time::SimTime;
use std::collections::BTreeMap;

/// A device's disconnected replica of part of the attic.
#[derive(Clone, Debug, Default)]
pub struct OfflineReplica {
    /// path → (base etag at snapshot time, current local content).
    files: BTreeMap<String, (String, Bytes)>,
    /// Paths edited while offline.
    dirty: BTreeMap<String, bool>,
}

/// What happened to each file at reconnection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconcileOutcome {
    /// Local edits applied cleanly (remote unchanged since snapshot).
    pub applied: Vec<String>,
    /// Divergent files: local edit saved as this conflict-copy path.
    pub conflicts: Vec<(String, String)>,
    /// Local edits that were no-ops (file unchanged locally).
    pub unchanged: Vec<String>,
}

impl OfflineReplica {
    /// Snapshots every file under `prefix` from the store.
    pub fn snapshot(store: &ObjectStore, prefix: &str) -> OfflineReplica {
        let mut files = BTreeMap::new();
        for path in store.files_under(prefix) {
            // Listed files are readable by construction; a read error
            // just leaves that file out of the snapshot.
            let Ok(v) = store.get(&path) else { continue };
            files.insert(path, (v.etag.clone(), v.body.clone()));
        }
        OfflineReplica {
            files,
            dirty: BTreeMap::new(),
        }
    }

    /// Reads a file from the replica.
    pub fn read(&self, path: &str) -> Option<&Bytes> {
        self.files.get(path).map(|(_, b)| b)
    }

    /// Edits a file locally while offline (must exist in the snapshot or
    /// be new).
    pub fn edit(&mut self, path: &str, body: impl Into<Bytes>) {
        let body = body.into();
        match self.files.get_mut(path) {
            Some((_, b)) => *b = body,
            None => {
                self.files.insert(path.to_owned(), (String::new(), body));
            }
        }
        self.dirty.insert(path.to_owned(), true);
    }

    /// Number of files in the replica.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the replica holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Reconciles the replica against the live store.
    ///
    /// - Local edit, remote unchanged → local version wins (applied).
    /// - Local edit, remote changed → conflict copy
    ///   `<path>.conflict-<etag-prefix>` is created; the canonical file
    ///   keeps the remote version.
    /// - No local edit → nothing happens regardless of remote state.
    ///
    /// # Errors
    ///
    /// Propagates store errors (e.g. a parent collection deleted while
    /// offline).
    pub fn reconcile(
        &mut self,
        store: &mut ObjectStore,
        now: SimTime,
    ) -> Result<ReconcileOutcome, StoreError> {
        let mut out = ReconcileOutcome::default();
        let dirty_paths: Vec<String> = self
            .dirty
            .iter()
            .filter(|(_, d)| **d)
            .map(|(p, _)| p.clone())
            .collect();
        for path in dirty_paths {
            let Some((base_etag, local)) = self.files.get(&path).cloned() else {
                // Dirty entries always have a file record; if one went
                // missing, drop the stale dirty flag rather than panic.
                self.dirty.insert(path, false);
                continue;
            };
            let remote_etag = match store.get(&path) {
                Ok(v) => Some(v.etag.clone()),
                Err(StoreError::NotFound) => None,
                Err(e) => return Err(e),
            };
            let remote_unchanged = match (&remote_etag, base_etag.as_str()) {
                (None, "") => true,         // new file both sides absent
                (Some(re), be) => re == be, // still the version we saw
                (None, _) => false,         // deleted remotely meanwhile
            };
            if remote_unchanged {
                let new_etag = store.put(&path, local, now)?;
                if let Some(f) = self.files.get_mut(&path) {
                    f.0 = new_etag;
                }
                out.applied.push(path.clone());
            } else {
                let suffix = remote_etag
                    .as_deref()
                    .unwrap_or("\"deleted\"")
                    .trim_matches('"')
                    .chars()
                    .take(8)
                    .collect::<String>();
                let conflict_path = format!("{path}.conflict-{suffix}");
                store.put(&conflict_path, local, now)?;
                out.conflicts.push((path.clone(), conflict_path));
                // Adopt the remote version locally.
                if let (Ok(v), Some(f)) = (store.get(&path), self.files.get_mut(&path)) {
                    *f = (v.etag.clone(), v.body.clone());
                }
            }
            self.dirty.insert(path, false);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn store_with(paths: &[(&str, &str)]) -> ObjectStore {
        let mut s = ObjectStore::new();
        s.mkcol_recursive("/docs").unwrap();
        for (p, b) in paths {
            s.put(p, b.to_string(), t(0)).unwrap();
        }
        s
    }

    #[test]
    fn clean_edit_applies() {
        let mut store = store_with(&[("/docs/a", "v1")]);
        let mut rep = OfflineReplica::snapshot(&store, "/docs");
        rep.edit("/docs/a", "v2-offline");
        let out = rep.reconcile(&mut store, t(10)).unwrap();
        assert_eq!(out.applied, vec!["/docs/a".to_owned()]);
        assert!(out.conflicts.is_empty());
        assert_eq!(&store.get("/docs/a").unwrap().body[..], b"v2-offline");
    }

    #[test]
    fn divergence_creates_conflict_copy() {
        let mut store = store_with(&[("/docs/a", "v1")]);
        let mut rep = OfflineReplica::snapshot(&store, "/docs");
        rep.edit("/docs/a", "offline-edit");
        // Someone edits the canonical copy meanwhile.
        store.put("/docs/a", "online-edit", t(5)).unwrap();
        let out = rep.reconcile(&mut store, t(10)).unwrap();
        assert!(out.applied.is_empty());
        assert_eq!(out.conflicts.len(), 1);
        let (orig, copy) = &out.conflicts[0];
        assert_eq!(orig, "/docs/a");
        // Canonical keeps the online edit; the offline edit is preserved.
        assert_eq!(&store.get("/docs/a").unwrap().body[..], b"online-edit");
        assert_eq!(&store.get(copy).unwrap().body[..], b"offline-edit");
        // The replica adopted the remote version.
        assert_eq!(rep.read("/docs/a").unwrap(), &Bytes::from("online-edit"));
    }

    #[test]
    fn new_offline_file_is_applied() {
        let mut store = store_with(&[]);
        let mut rep = OfflineReplica::snapshot(&store, "/docs");
        rep.edit("/docs/new.txt", "created offline");
        let out = rep.reconcile(&mut store, t(1)).unwrap();
        assert_eq!(out.applied, vec!["/docs/new.txt".to_owned()]);
        assert!(store.exists("/docs/new.txt"));
    }

    #[test]
    fn remote_delete_vs_local_edit_conflicts() {
        let mut store = store_with(&[("/docs/a", "v1")]);
        let mut rep = OfflineReplica::snapshot(&store, "/docs");
        rep.edit("/docs/a", "offline");
        store.delete("/docs/a").unwrap();
        let out = rep.reconcile(&mut store, t(2)).unwrap();
        assert_eq!(out.conflicts.len(), 1);
        assert!(out.conflicts[0].1.contains(".conflict-deleted"));
    }

    #[test]
    fn reconcile_is_idempotent() {
        let mut store = store_with(&[("/docs/a", "v1")]);
        let mut rep = OfflineReplica::snapshot(&store, "/docs");
        rep.edit("/docs/a", "v2");
        rep.reconcile(&mut store, t(1)).unwrap();
        let out2 = rep.reconcile(&mut store, t(2)).unwrap();
        assert_eq!(out2, ReconcileOutcome::default());
        // History shows exactly one new version.
        assert_eq!(store.history("/docs/a").unwrap().len(), 2);
    }

    #[test]
    fn untouched_files_never_written() {
        let mut store = store_with(&[("/docs/a", "v1"), ("/docs/b", "v1")]);
        let mut rep = OfflineReplica::snapshot(&store, "/docs");
        assert_eq!(rep.len(), 2);
        rep.edit("/docs/a", "v2");
        rep.reconcile(&mut store, t(1)).unwrap();
        assert_eq!(store.history("/docs/b").unwrap().len(), 1);
    }
}
