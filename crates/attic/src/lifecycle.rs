//! Object lifecycle: declarative retention rules over the versioned
//! store.
//!
//! A home attic accretes versions forever — every save of a document is
//! a new version, and the appliance's disk is finite. Lifecycle rules
//! (modeled on S3-style policies, in the shape of
//! `object-store-server`'s lifecycle worker) express what to keep:
//!
//! - **Expiration by age** — delete an object whose *current* version
//!   has not been touched in `expire_after` (scratch/trash prefixes).
//! - **Noncurrent retention count** — keep at most `keep_noncurrent`
//!   superseded versions of each object.
//! - **Noncurrent expiration** — drop superseded versions older than
//!   `noncurrent_expire_after` regardless of count.
//!
//! [`LifecyclePolicy::evaluate`] turns rules + store state into a plan
//! of [`LifecycleAction`]s; [`LifecycleEngine::tick`] executes the plan
//! through an [`AtticBackend`] — so on the durable backend every
//! compaction is WAL-journaled and survives crashes, and by
//! construction ([`ObjectStore::prune_noncurrent`]) the current version
//! of an object is never deleted by a prune.

use crate::ports::{AtticBackend, BackendFault};
use crate::store::ObjectStore;
use hpop_netsim::time::{SimDuration, SimTime};

/// One declarative retention rule, scoped to a path prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifecycleRule {
    /// The subtree this rule governs (`"/"` for everything).
    pub prefix: String,
    /// Delete the whole object once its current version is older than
    /// this.
    pub expire_after: Option<SimDuration>,
    /// Keep at most this many noncurrent (superseded) versions.
    pub keep_noncurrent: Option<usize>,
    /// Drop noncurrent versions older than this.
    pub noncurrent_expire_after: Option<SimDuration>,
}

impl LifecycleRule {
    /// A rule that touches nothing (builder starting point).
    pub fn for_prefix(prefix: impl Into<String>) -> LifecycleRule {
        LifecycleRule {
            prefix: prefix.into(),
            expire_after: None,
            keep_noncurrent: None,
            noncurrent_expire_after: None,
        }
    }

    /// Expire whole objects `age` after their last write.
    pub fn expire_after(mut self, age: SimDuration) -> LifecycleRule {
        self.expire_after = Some(age);
        self
    }

    /// Retain at most `n` noncurrent versions.
    pub fn keep_noncurrent(mut self, n: usize) -> LifecycleRule {
        self.keep_noncurrent = Some(n);
        self
    }

    /// Drop noncurrent versions older than `age`.
    pub fn expire_noncurrent_after(mut self, age: SimDuration) -> LifecycleRule {
        self.noncurrent_expire_after = Some(age);
        self
    }
}

/// One planned lifecycle mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LifecycleAction {
    /// Delete the object outright (age expiration).
    Expire {
        /// The object to remove.
        path: String,
    },
    /// Compact noncurrent versions ([`ObjectStore::prune_noncurrent`]).
    Prune {
        /// The object whose history shrinks.
        path: String,
        /// Noncurrent versions to retain.
        keep: usize,
        /// Versions modified before this instant go regardless.
        min_modified: SimTime,
    },
}

/// An ordered set of rules; first matching rule wins per object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LifecyclePolicy {
    /// The rules, in priority order.
    pub rules: Vec<LifecycleRule>,
}

impl LifecyclePolicy {
    /// A policy from rules in priority order.
    pub fn new(rules: Vec<LifecycleRule>) -> LifecyclePolicy {
        LifecyclePolicy { rules }
    }

    /// Plans the actions due at `now` against the store's current
    /// state. Pure: the plan is deterministic in `(rules, store, now)`,
    /// which keeps the tick identical under simulation and replay.
    pub fn evaluate(&self, store: &ObjectStore, now: SimTime) -> Vec<LifecycleAction> {
        let mut actions = Vec::new();
        let mut claimed: Vec<String> = Vec::new();
        for rule in &self.rules {
            for path in store.files_under(&rule.prefix) {
                if claimed.contains(&path) {
                    continue;
                }
                let Ok(history) = store.history(&path) else {
                    continue;
                };
                let Some(current) = history.last() else {
                    continue;
                };
                // First matching rule wins: the object is claimed even
                // when this rule has nothing to do for it right now.
                claimed.push(path.clone());
                if let Some(age) = rule.expire_after {
                    if now.saturating_since(current.modified_at) >= age {
                        actions.push(LifecycleAction::Expire { path });
                        continue;
                    }
                }
                let wants_prune =
                    rule.keep_noncurrent.is_some() || rule.noncurrent_expire_after.is_some();
                if wants_prune && history.len() > 1 {
                    let keep = rule.keep_noncurrent.unwrap_or(usize::MAX);
                    let min_modified = match rule.noncurrent_expire_after {
                        Some(age) => {
                            SimTime::from_nanos(now.as_nanos().saturating_sub(age.as_nanos()))
                        }
                        None => SimTime::ZERO,
                    };
                    // Skip no-op prunes: every noncurrent version is
                    // within both the count and the age window.
                    let n = history.len();
                    let doomed = history[..n - 1].iter().enumerate().any(|(i, v)| {
                        let rank = n - 1 - i;
                        rank > keep || v.modified_at < min_modified
                    });
                    if doomed {
                        actions.push(LifecycleAction::Prune {
                            path,
                            keep,
                            min_modified,
                        });
                    }
                }
            }
        }
        actions
    }
}

/// Cumulative effect of lifecycle ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Ticks executed.
    pub ticks: u64,
    /// Whole objects expired.
    pub expired_objects: u64,
    /// Noncurrent versions compacted away.
    pub pruned_versions: u64,
    /// Bytes those versions held.
    pub reclaimed_bytes: u64,
}

/// The tick driver: evaluates the policy and applies the plan through
/// the backend (journaled when the backend is durable).
#[derive(Clone, Debug)]
pub struct LifecycleEngine {
    policy: LifecyclePolicy,
    report: LifecycleReport,
}

impl LifecycleEngine {
    /// An engine executing `policy`.
    pub fn new(policy: LifecyclePolicy) -> LifecycleEngine {
        LifecycleEngine {
            policy,
            report: LifecycleReport::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &LifecyclePolicy {
        &self.policy
    }

    /// Cumulative report across all ticks.
    pub fn report(&self) -> LifecycleReport {
        self.report
    }

    /// Runs one tick at `now`: plan, then apply each action through the
    /// backend. Returns the delta this tick contributed.
    ///
    /// # Errors
    ///
    /// Stops at the first [`BackendFault`] (a crashed device); actions
    /// already applied are journaled and survive, the rest re-plan on
    /// the next tick after recovery — ticks are idempotent because the
    /// plan is recomputed from live state.
    pub fn tick<B: AtticBackend>(
        &mut self,
        backend: &mut B,
        now: SimTime,
    ) -> Result<LifecycleReport, BackendFault> {
        let plan = self.policy.evaluate(backend.store(), now);
        let mut delta = LifecycleReport {
            ticks: 1,
            ..LifecycleReport::default()
        };
        for action in plan {
            match action {
                LifecycleAction::Expire { path } => {
                    // Bytes reclaimed = every version of the object.
                    let held: u64 = backend
                        .store()
                        .history(&path)
                        .map(|h| h.iter().map(|v| v.body.len() as u64).sum())
                        .unwrap_or(0);
                    if backend.delete(&path)?.is_ok() {
                        delta.expired_objects += 1;
                        delta.reclaimed_bytes += held;
                    }
                }
                LifecycleAction::Prune {
                    path,
                    keep,
                    min_modified,
                } => {
                    if let Ok(report) = backend.prune(&path, keep, min_modified)? {
                        delta.pruned_versions += report.removed_versions;
                        delta.reclaimed_bytes += report.reclaimed_bytes;
                    }
                }
            }
        }
        self.report.ticks += delta.ticks;
        self.report.expired_objects += delta.expired_objects;
        self.report.pruned_versions += delta.pruned_versions;
        self.report.reclaimed_bytes += delta.reclaimed_bytes;
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurableAttic;
    use crate::ports::VolatileBackend;
    use hpop_durability::DurabilityConfig;
    use hpop_netsim::storage::SimDisk;
    use std::collections::BTreeMap;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn noncurrent_count_rule_compacts_history() {
        let mut b = VolatileBackend::new();
        for i in 0..6u64 {
            b.store.put("/doc", vec![b'x'; 100], t(i)).unwrap();
        }
        let policy = LifecyclePolicy::new(vec![LifecycleRule::for_prefix("/").keep_noncurrent(2)]);
        let mut engine = LifecycleEngine::new(policy);
        let delta = engine.tick(&mut b, t(10)).unwrap();
        assert_eq!(delta.pruned_versions, 3);
        assert_eq!(delta.reclaimed_bytes, 300);
        assert_eq!(b.store.history("/doc").unwrap().len(), 3);
        // A second tick at the same instant is a no-op (idempotent).
        let again = engine.tick(&mut b, t(10)).unwrap();
        assert_eq!(again.pruned_versions, 0);
        assert_eq!(engine.report().ticks, 2);
        assert_eq!(engine.report().reclaimed_bytes, 300);
    }

    #[test]
    fn age_rules_expire_objects_and_noncurrent_versions() {
        let mut b = VolatileBackend::new();
        b.store.mkcol("/scratch").unwrap();
        b.store.put("/scratch/tmp", vec![0u8; 50], t(0)).unwrap();
        b.store.put("/doc", vec![0u8; 10], t(0)).unwrap();
        b.store.put("/doc", vec![0u8; 10], t(90)).unwrap();
        let policy = LifecyclePolicy::new(vec![
            LifecycleRule::for_prefix("/scratch").expire_after(d(60)),
            LifecycleRule::for_prefix("/").expire_noncurrent_after(d(50)),
        ]);
        let mut engine = LifecycleEngine::new(policy);
        let delta = engine.tick(&mut b, t(100)).unwrap();
        // /scratch/tmp is 100s old → expired (50 bytes, whole object).
        assert_eq!(delta.expired_objects, 1);
        assert!(!b.store.exists("/scratch/tmp"));
        // /doc's v0 (t=0) is older than the 50s noncurrent window.
        assert_eq!(delta.pruned_versions, 1);
        assert_eq!(delta.reclaimed_bytes, 60);
        // The current version is untouched even though it matched no rule.
        assert_eq!(b.store.history("/doc").unwrap().len(), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut b = VolatileBackend::new();
        b.store.mkcol("/a").unwrap();
        for i in 0..3u64 {
            b.store.put("/a/f", vec![0u8; 10], t(i)).unwrap();
        }
        // The narrow rule keeps 2; the broad rule would keep 0. Narrow
        // is listed first, so /a/f keeps its two noncurrent versions.
        let policy = LifecyclePolicy::new(vec![
            LifecycleRule::for_prefix("/a").keep_noncurrent(2),
            LifecycleRule::for_prefix("/").keep_noncurrent(0),
        ]);
        let mut engine = LifecycleEngine::new(policy);
        let delta = engine.tick(&mut b, t(10)).unwrap();
        assert_eq!(delta.pruned_versions, 0);
        assert_eq!(b.store.history("/a/f").unwrap().len(), 3);
    }

    /// The acceptance-criteria crash matrix: run a put/tick workload,
    /// crash the durable backend at *every* I/O step, recover, and
    /// require that no acked current version was lost — lifecycle
    /// compaction may only ever remove superseded versions.
    #[test]
    fn crash_matrix_never_loses_an_acked_current_version() {
        let policy = LifecyclePolicy::new(vec![LifecycleRule::for_prefix("/").keep_noncurrent(1)]);

        // Baseline run to learn the total number of I/O steps.
        let baseline_steps = {
            let mut attic =
                DurableAttic::open(SimDisk::new(99), "attic", DurabilityConfig::default()).unwrap();
            let mut engine = LifecycleEngine::new(policy.clone());
            drive_workload(&mut attic, &mut engine, &mut BTreeMap::new());
            attic.disk().steps()
        };
        assert!(baseline_steps > 10, "workload does real I/O");

        let mut compactions_survived = 0u64;
        for crash_at in 1..=baseline_steps {
            let mut attic =
                DurableAttic::open(SimDisk::new(99), "attic", DurabilityConfig::default()).unwrap();
            let mut engine = LifecycleEngine::new(policy.clone());
            attic.disk_mut().arm_crash(crash_at);
            let mut acked: BTreeMap<String, Vec<u8>> = BTreeMap::new();
            drive_workload(&mut attic, &mut engine, &mut acked);

            let mut disk = attic.into_disk();
            disk.restart();
            let recovered = DurableAttic::open(disk, "attic", DurabilityConfig::default()).unwrap();
            for (path, body) in &acked {
                let v = recovered
                    .store()
                    .get(path)
                    .unwrap_or_else(|_| panic!("acked {path} lost at crash step {crash_at}"));
                assert_eq!(
                    &v.body[..],
                    &body[..],
                    "current version of {path} corrupted at crash step {crash_at}"
                );
            }
            if recovered
                .store()
                .history("/doc")
                .map(|h| h.len() <= 2)
                .unwrap_or(false)
            {
                compactions_survived += 1;
            }
        }
        assert!(
            compactions_survived > 0,
            "some crashes land post-compaction"
        );
    }

    /// Interleaves acked puts with lifecycle ticks. `acked` records the
    /// last successfully acknowledged body per path; entries are only
    /// added when the put's ack made it back to the caller.
    fn drive_workload(
        attic: &mut DurableAttic,
        engine: &mut LifecycleEngine,
        acked: &mut BTreeMap<String, Vec<u8>>,
    ) {
        for i in 0..6u64 {
            let body = vec![b'a' + i as u8; 64];
            if let Ok(Ok(_)) = attic.put("/doc", &body, t(i)) {
                acked.insert("/doc".into(), body);
            }
            if i % 2 == 1 && engine.tick(attic, t(i)).is_err() {
                return;
            }
        }
        let body = b"sidecar".to_vec();
        if let Ok(Ok(_)) = attic.put("/side", &body, t(20)) {
            acked.insert("/side".into(), body);
        }
        let _ = engine.tick(attic, t(21));
    }
}
