//! The encrypted-cloud alternative the paper contrasts the attic with.
//!
//! §IV-A: "Another alternative would be to simply let the cloud store
//! user data in encrypted form. The home network would then provide the
//! external application the key to decrypt the data when an authorized
//! user requests a particular service. The user would trust the
//! application to not keep the key beyond the immediate use. While this
//! indeed can help address the issue of data control, the data attic
//! concept addresses additional issues — e.g., allowing changes and
//! shared access by multiple actors, through multiple applications,
//! while maintaining a single source for a file."
//!
//! [`EncryptedCloudStore`] implements that alternative faithfully so
//! experiment E12 can measure the paper's argument: the cloud cannot
//! mediate concurrent access (it only sees ciphertext — no ETags over
//! plaintext semantics, no locks), and every authorized operation hands
//! the decryption key to another party.

use hpop_crypto::chacha20::ChaCha20;
use hpop_crypto::sha256::Sha256;
use std::collections::BTreeMap;

/// An opaque blob as the cloud stores it.
#[derive(Clone, Debug)]
struct CloudObject {
    ciphertext: Vec<u8>,
    nonce: [u8; 12],
    /// Upload generation (the only versioning the cloud can offer —
    /// it cannot diff or merge what it cannot read).
    generation: u64,
}

/// The cloud provider: stores ciphertext it cannot read.
#[derive(Debug, Default)]
pub struct EncryptedCloudStore {
    objects: BTreeMap<String, CloudObject>,
    /// Every party that has ever been handed the key (the paper's
    /// "trust the application to not keep the key" exposure).
    key_exposures: Vec<String>,
    next_nonce: u64,
}

/// A checked-out plaintext copy an application works on.
#[derive(Clone, Debug)]
pub struct Checkout {
    /// The object's name.
    pub name: String,
    /// The decrypted content, for local editing.
    pub plaintext: Vec<u8>,
    base_generation: u64,
}

/// Errors from the encrypted-cloud workflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloudError {
    /// No such object.
    NotFound,
    /// The ciphertext failed to authenticate (wrong key or tampering).
    BadKey,
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::NotFound => write!(f, "object not found"),
            CloudError::BadKey => write!(f, "decryption failed"),
        }
    }
}

impl std::error::Error for CloudError {}

impl EncryptedCloudStore {
    /// An empty cloud account.
    pub fn new() -> Self {
        Self::default()
    }

    fn seal(&mut self, key: &[u8; 32], plaintext: &[u8]) -> ([u8; 12], Vec<u8>) {
        self.next_nonce += 1;
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.next_nonce.to_le_bytes());
        // Append a plaintext hash so decryption is authenticated.
        let mut body = plaintext.to_vec();
        body.extend_from_slice(Sha256::digest(plaintext).as_bytes());
        (nonce, ChaCha20::encrypt(key, &nonce, &body))
    }

    fn open(obj: &CloudObject, key: &[u8; 32]) -> Result<Vec<u8>, CloudError> {
        let plain = ChaCha20::decrypt(key, &obj.nonce, &obj.ciphertext);
        if plain.len() < 32 {
            return Err(CloudError::BadKey);
        }
        let (body, digest) = plain.split_at(plain.len() - 32);
        if Sha256::digest(body).as_bytes() != digest {
            return Err(CloudError::BadKey);
        }
        Ok(body.to_vec())
    }

    /// The home uploads an object (initial seeding).
    pub fn upload(&mut self, name: &str, key: &[u8; 32], plaintext: &[u8]) {
        let (nonce, ciphertext) = self.seal(key, plaintext);
        let generation = self.objects.get(name).map_or(1, |o| o.generation + 1);
        self.objects.insert(
            name.to_owned(),
            CloudObject {
                ciphertext,
                nonce,
                generation,
            },
        );
    }

    /// An application checks an object out: the home hands it the key
    /// (recorded as an exposure), the app downloads and decrypts.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] / [`CloudError::BadKey`].
    pub fn checkout(
        &mut self,
        name: &str,
        key: &[u8; 32],
        application: &str,
    ) -> Result<Checkout, CloudError> {
        self.key_exposures.push(application.to_owned());
        let obj = self.objects.get(name).ok_or(CloudError::NotFound)?;
        let plaintext = Self::open(obj, key)?;
        Ok(Checkout {
            name: name.to_owned(),
            plaintext,
            base_generation: obj.generation,
        })
    }

    /// The application re-encrypts its edited copy and uploads. The
    /// cloud cannot check plaintext semantics; it replaces the blob
    /// unconditionally. Returns `true` when this upload silently
    /// overwrote a generation the application never saw — a lost update
    /// the attic's ETags/locks would have refused.
    pub fn checkin(&mut self, checkout: &Checkout, key: &[u8; 32], edited: &[u8]) -> bool {
        let (nonce, ciphertext) = self.seal(key, edited);
        let (lost_update, generation) = match self.objects.get(&checkout.name) {
            Some(cur) => (
                cur.generation != checkout.base_generation,
                cur.generation + 1,
            ),
            None => (false, 1),
        };
        self.objects.insert(
            checkout.name.clone(),
            CloudObject {
                ciphertext,
                nonce,
                generation,
            },
        );
        lost_update
    }

    /// Reads the current plaintext (home-side convenience).
    ///
    /// # Errors
    ///
    /// As [`EncryptedCloudStore::checkout`], without the exposure.
    pub fn read(&self, name: &str, key: &[u8; 32]) -> Result<Vec<u8>, CloudError> {
        let obj = self.objects.get(name).ok_or(CloudError::NotFound)?;
        Self::open(obj, key)
    }

    /// Every party the key was handed to, in order.
    pub fn key_exposures(&self) -> &[String] {
        &self.key_exposures
    }

    /// What the cloud operator can see of an object: length only.
    pub fn operator_view(&self, name: &str) -> Option<usize> {
        self.objects.get(name).map(|o| o.ciphertext.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [3u8; 32];

    #[test]
    fn roundtrip_and_operator_blindness() {
        let mut cloud = EncryptedCloudStore::new();
        cloud.upload("medical.json", &KEY, b"{\"dx\":\"sprain\"}");
        assert_eq!(
            cloud.read("medical.json", &KEY).unwrap(),
            b"{\"dx\":\"sprain\"}"
        );
        // The operator sees only ciphertext length, never content.
        let view = cloud.operator_view("medical.json").unwrap();
        assert_eq!(view, b"{\"dx\":\"sprain\"}".len() + 32);
        assert_eq!(
            cloud.read("medical.json", &[9u8; 32]),
            Err(CloudError::BadKey)
        );
    }

    #[test]
    fn concurrent_checkins_lose_updates_silently() {
        // The paper's core argument: two applications edit concurrently;
        // the cloud cannot mediate and the second checkin clobbers the
        // first — reported only because our model instruments it.
        let mut cloud = EncryptedCloudStore::new();
        cloud.upload("doc", &KEY, b"base");
        let a = cloud.checkout("doc", &KEY, "word-processor").unwrap();
        let b = cloud.checkout("doc", &KEY, "cloud-editor").unwrap();
        assert!(!cloud.checkin(&a, &KEY, b"base+A"));
        // B never saw A's edit; its checkin replaces it wholesale.
        let lost = cloud.checkin(&b, &KEY, b"base+B");
        assert!(lost);
        assert_eq!(cloud.read("doc", &KEY).unwrap(), b"base+B");
    }

    #[test]
    fn every_access_exposes_the_key() {
        let mut cloud = EncryptedCloudStore::new();
        cloud.upload("doc", &KEY, b"x");
        for app in ["editor", "viewer", "editor", "tax-tool"] {
            let _ = cloud.checkout("doc", &KEY, app);
        }
        assert_eq!(cloud.key_exposures().len(), 4);
        assert_eq!(cloud.key_exposures()[3], "tax-tool");
    }

    #[test]
    fn missing_objects_reported() {
        let mut cloud = EncryptedCloudStore::new();
        assert_eq!(
            cloud.checkout("ghost", &KEY, "app").unwrap_err(),
            CloudError::NotFound
        );
    }
}
