//! The WebDAV protocol engine — the single implementation both
//! adapters drive.
//!
//! [`DavCore`] holds every piece of WebDAV semantics: verb dispatch,
//! capability-grant enforcement for external origins, lock mediation,
//! ETag preconditions, `Depth`-aware PROPFIND with 207 Multi-Status
//! property XML, version listing, and MKCOL collection rules. It is
//! generic over the [`AtticBackend`] driven port, so the same engine
//! runs over the in-memory store (netsim adapter) and over the
//! WAL-journaled [`DurableAttic`](crate::durable::DurableAttic) (the
//! `attic-daemon` appliance). The conformance suite requires responses
//! to be byte-identical through both — which is why every response is
//! a pure function of `(request, origin, now)` plus store state, with
//! no wall-clock or randomness anywhere in this module.

use crate::dav::{
    proppatch_prop_names, DavResponse, MultiStatus, PropValue, PropfindBody, Propstat,
};
use crate::lock::{LockDepth, LockError, LockScope, LockToken};
use crate::ports::{AtticBackend, BackendFault, DavPort, Origin};
use crate::store::{StoreError, Version};
use hpop_core::auth::{CapabilityToken, TokenVerifier};
use hpop_core::events::{Event, EventBus};
use hpop_http::message::{Method, Request, Response, StatusCode};
use hpop_netsim::time::{SimDuration, SimTime};

/// Every verb the attic serves — advertised on `OPTIONS` and on every
/// `405 Method Not Allowed`.
pub const ALLOW_HEADER: &str =
    "OPTIONS, GET, HEAD, PUT, DELETE, MKCOL, PROPFIND, PROPPATCH, COPY, MOVE, LOCK, UNLOCK";

/// The compliance classes: 1 (core) and 2 (locking).
pub const DAV_HEADER: &str = "1, 2";

fn store_error_response(e: StoreError) -> Response {
    let status = match e {
        StoreError::NotFound => StatusCode::NOT_FOUND,
        StoreError::MissingParent | StoreError::Conflict => StatusCode::CONFLICT,
        StoreError::BadPath => StatusCode::BAD_REQUEST,
        StoreError::DestinationExists => StatusCode::PRECONDITION_FAILED,
    };
    Response::new(status)
}

fn fault_response(f: BackendFault) -> Response {
    Response::new(StatusCode::INTERNAL_SERVER_ERROR).with_header("x-fault", f.to_string())
}

fn locked_response(holder: String) -> Response {
    Response::new(StatusCode::LOCKED).with_header("x-lock-holder", holder)
}

fn parse_lock_token(header: Option<&str>) -> Option<LockToken> {
    header.and_then(LockToken::parse)
}

/// Whether an `If-Match`/`If-None-Match` value matches `etag`: `*`
/// matches any existing entity, otherwise a comma-separated list of
/// strong ETags is compared verbatim (RFC 9110 §13.1).
fn etag_list_matches(header: &str, etag: Option<&str>) -> bool {
    let Some(etag) = etag else { return false };
    if header.trim() == "*" {
        return true;
    }
    header.split(',').any(|candidate| candidate.trim() == etag)
}

/// Applies the write preconditions for `path` (current ETag `etag`, or
/// `None` if absent). Returns the failure response, if any.
fn check_preconditions(req: &Request, etag: Option<&str>) -> Option<Response> {
    if let Some(h) = req.headers.get("if-match") {
        if !etag_list_matches(h, etag) {
            return Some(Response::new(StatusCode::PRECONDITION_FAILED));
        }
    }
    if let Some(h) = req.headers.get("if-none-match") {
        if etag_list_matches(h, etag) {
            let failure = if req.method.is_safe() {
                // GET/HEAD: the cache-validation form.
                let mut r = Response::new(StatusCode::NOT_MODIFIED);
                if let Some(e) = etag {
                    r.headers.set("etag", e);
                }
                r
            } else {
                Response::new(StatusCode::PRECONDITION_FAILED)
            };
            return Some(failure);
        }
    }
    None
}

/// `PROPFIND` depth per RFC 4918 §9.1: the header is optional and
/// *defaults to infinity*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Depth {
    Zero,
    One,
    Infinity,
}

fn parse_depth(req: &Request) -> Option<Depth> {
    match req.headers.get("depth") {
        None => Some(Depth::Infinity),
        Some("0") => Some(Depth::Zero),
        Some("1") => Some(Depth::One),
        Some("infinity") => Some(Depth::Infinity),
        Some(_) => None,
    }
}

/// The WebDAV protocol engine over an [`AtticBackend`].
pub struct DavCore<B: AtticBackend> {
    backend: B,
    verifier: TokenVerifier,
    bus: Option<EventBus>,
}

impl<B: AtticBackend> std::fmt::Debug for DavCore<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DavCore")
            .field("files", &self.backend.store().files_under("/").len())
            .finish()
    }
}

impl<B: AtticBackend> DavCore<B> {
    /// An engine over `backend`, enforcing grants with `verifier`.
    pub fn new(backend: B, verifier: TokenVerifier) -> DavCore<B> {
        DavCore {
            backend,
            verifier,
            bus: None,
        }
    }

    /// Attaches the appliance event bus; writes publish `attic.write`.
    pub fn with_bus(mut self, bus: EventBus) -> DavCore<B> {
        self.bus = Some(bus);
        self
    }

    /// The backend, for adapters that need direct (trusted) access.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (trusted local tooling).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Serves one request. External origins must present
    /// `Authorization: Capability <wire>` with a valid, unexpired token
    /// whose scope covers the path and whose permission matches the
    /// method; local origins are trusted (the paper's threat model puts
    /// the boundary at the home's edge).
    pub fn serve(&mut self, req: &Request, origin: Origin, now: SimTime) -> Response {
        if origin == Origin::External {
            if let Some(denied) = self.check_grant(req, now) {
                return denied;
            }
        }
        self.dispatch(req, now)
    }

    fn check_grant(&self, req: &Request, now: SimTime) -> Option<Response> {
        let Some(auth) = req.headers.get("authorization") else {
            return Some(Response::new(StatusCode::UNAUTHORIZED));
        };
        let Some(wire) = auth.strip_prefix("Capability ") else {
            return Some(Response::new(StatusCode::UNAUTHORIZED));
        };
        let Some(token) = CapabilityToken::decode(wire) else {
            return Some(Response::new(StatusCode::UNAUTHORIZED));
        };
        if !self.verifier.verify(&token, now) {
            return Some(Response::new(StatusCode::UNAUTHORIZED));
        }
        let path = req.url.path();
        if !token.covers(path) {
            return Some(Response::new(StatusCode::FORBIDDEN));
        }
        let needs_write = !req.method.is_safe();
        let allowed = if needs_write {
            token.permission.allows_write()
        } else {
            token.permission.allows_read()
        };
        if !allowed {
            return Some(Response::new(StatusCode::FORBIDDEN));
        }
        None
    }

    fn dispatch(&mut self, req: &Request, now: SimTime) -> Response {
        let path = req.url.path().to_owned();
        match req.method {
            Method::Get | Method::Head => self.get(&path, req),
            Method::Put => self.put(&path, req, now),
            Method::Delete => self.delete(&path, req, now),
            Method::MkCol => self.mkcol(&path, req),
            Method::PropFind => self.propfind(&path, req),
            Method::PropPatch => self.proppatch(&path, req),
            Method::Copy | Method::Move => self.copy_move(&path, req, now),
            Method::Lock => self.lock(&path, req, now),
            Method::Unlock => self.unlock(&path, req, now),
            Method::Options => Response::new(StatusCode::OK)
                .with_header("dav", DAV_HEADER)
                .with_header("allow", ALLOW_HEADER),
            Method::Post => {
                Response::new(StatusCode::METHOD_NOT_ALLOWED).with_header("allow", ALLOW_HEADER)
            }
        }
    }

    fn get(&mut self, path: &str, req: &Request) -> Response {
        // Version addressing: `x-version: N` serves the Nth version
        // (0-based, oldest first) instead of the current one.
        let version: Option<&Version> = match req.headers.get("x-version") {
            Some(idx) => {
                let Ok(i) = idx.parse::<usize>() else {
                    return Response::new(StatusCode::BAD_REQUEST);
                };
                match self.backend.store().history(path) {
                    Ok(history) => match history.get(i) {
                        Some(v) => Some(v),
                        None => return Response::not_found(),
                    },
                    Err(e) => return store_error_response(e),
                }
            }
            None => match self.backend.store().get(path) {
                Ok(v) => Some(v),
                Err(e) => return store_error_response(e),
            },
        };
        let v = version.expect("both arms return a version or bail");
        if let Some(failure) = check_preconditions(req, Some(&v.etag)) {
            return failure;
        }
        let mut resp = Response::ok(v.body.clone()).with_header("etag", v.etag.clone());
        if req.method == Method::Head {
            // HEAD keeps the entity headers (incl. Content-Length) but
            // sends no body.
            resp.body = bytes::Bytes::new();
        }
        resp
    }

    fn put(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let token = parse_lock_token(req.headers.get("lock-token"));
        if let Err(LockError::Locked { holder }) = self.backend.check_write(path, token, now) {
            return locked_response(holder);
        }
        let current_etag = self.backend.store().get(path).ok().map(|v| v.etag.clone());
        if let Some(failure) = check_preconditions(req, current_etag.as_deref()) {
            return failure;
        }
        let created = !self.backend.store().exists(path);
        match self.backend.put(path, &req.body, now) {
            Ok(Ok(etag)) => {
                if let Some(bus) = &self.bus {
                    bus.publish(Event::new("attic.write", path.to_owned()));
                }
                let status = if created {
                    StatusCode::CREATED
                } else {
                    StatusCode::NO_CONTENT
                };
                Response::new(status).with_header("etag", etag)
            }
            Ok(Err(e)) => store_error_response(e),
            Err(f) => fault_response(f),
        }
    }

    fn delete(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let token = parse_lock_token(req.headers.get("lock-token"));
        if let Err(LockError::Locked { holder }) = self.backend.check_write(path, token, now) {
            return locked_response(holder);
        }
        let current_etag = self.backend.store().get(path).ok().map(|v| v.etag.clone());
        if let Some(failure) = check_preconditions(req, current_etag.as_deref()) {
            return failure;
        }
        match self.backend.delete(path) {
            Ok(Ok(_)) => Response::new(StatusCode::NO_CONTENT),
            Ok(Err(e)) => store_error_response(e),
            Err(f) => fault_response(f),
        }
    }

    fn mkcol(&mut self, path: &str, req: &Request) -> Response {
        // RFC 4918 §9.3: a request body we don't understand is 415, an
        // existing resource is 405 (with Allow), a missing parent 409.
        if !req.body.is_empty() {
            return Response::new(StatusCode::UNSUPPORTED_MEDIA_TYPE);
        }
        if self.backend.store().exists(path) {
            return Response::new(StatusCode::METHOD_NOT_ALLOWED)
                .with_header("allow", ALLOW_HEADER);
        }
        match self.backend.mkcol(path) {
            Ok(Ok(())) => Response::new(StatusCode::CREATED),
            Ok(Err(e)) => store_error_response(e),
            Err(f) => fault_response(f),
        }
    }

    fn propfind(&mut self, path: &str, req: &Request) -> Response {
        let Some(depth) = parse_depth(req) else {
            return Response::new(StatusCode::BAD_REQUEST);
        };
        let Some(body) = std::str::from_utf8(&req.body)
            .ok()
            .and_then(PropfindBody::parse)
        else {
            return Response::new(StatusCode::BAD_REQUEST);
        };
        if !self.backend.store().exists(path) {
            return Response::not_found();
        }
        let mut resources: Vec<(String, bool)> =
            vec![(path.to_owned(), self.backend.store().is_collection(path))];
        if self.backend.store().is_collection(path) {
            let more = match depth {
                Depth::Zero => Vec::new(),
                Depth::One => match self.backend.store().list(path) {
                    Ok(children) => children,
                    Err(e) => return store_error_response(e),
                },
                Depth::Infinity => match self.backend.store().descendants(path) {
                    Ok(all) => all,
                    Err(e) => return store_error_response(e),
                },
            };
            resources.extend(more);
        }
        let mut ms = MultiStatus::default();
        for (rpath, is_col) in resources {
            self.propfind_responses(&rpath, is_col, &body, &mut ms);
        }
        Response::new(StatusCode::MULTI_STATUS)
            .with_header("content-type", "application/xml; charset=utf-8")
            .with_body(ms.to_xml())
    }

    /// The live properties of one resource, as `(name, value)` pairs.
    fn live_props(&self, path: &str, is_col: bool) -> Vec<(String, PropValue)> {
        let displayname = path.rsplit('/').next().unwrap_or("").to_owned();
        let mut props = vec![(
            "displayname".to_owned(),
            PropValue::Text(if path == "/" {
                String::new()
            } else {
                displayname
            }),
        )];
        if is_col {
            props.push(("resourcetype".to_owned(), PropValue::Collection));
        } else {
            props.push(("resourcetype".to_owned(), PropValue::Empty));
            if let Ok(v) = self.backend.store().get(path) {
                props.push(("getetag".to_owned(), PropValue::Text(v.etag.clone())));
                props.push((
                    "getcontentlength".to_owned(),
                    PropValue::Text(v.body.len().to_string()),
                ));
                props.push((
                    "getlastmodified".to_owned(),
                    PropValue::Text(v.modified_at.as_nanos().to_string()),
                ));
                if let Ok(history) = self.backend.store().history(path) {
                    props.push((
                        "version-count".to_owned(),
                        PropValue::Text(history.len().to_string()),
                    ));
                }
            }
        }
        props
    }

    /// Appends this resource's `<D:response>` entries to `ms` — the
    /// resource itself, plus (when `version-list` is requested on a
    /// file) one response per stored version, addressed as
    /// `path?version=N`.
    fn propfind_responses(
        &self,
        path: &str,
        is_col: bool,
        body: &PropfindBody,
        ms: &mut MultiStatus,
    ) {
        let live = self.live_props(path, is_col);
        let mut want_versions = false;
        let propstats = match body {
            PropfindBody::AllProp => vec![Propstat {
                status: StatusCode::OK,
                props: live.clone(),
            }],
            PropfindBody::PropName => vec![Propstat {
                status: StatusCode::OK,
                props: live
                    .iter()
                    .map(|(n, _)| (n.clone(), PropValue::Empty))
                    .collect(),
            }],
            PropfindBody::Props(names) => {
                let mut found = Vec::new();
                let mut missing = Vec::new();
                for name in names {
                    if name == "version-list" {
                        want_versions = !is_col;
                        continue;
                    }
                    match live.iter().find(|(n, _)| n == name) {
                        Some((n, v)) => found.push((n.clone(), v.clone())),
                        None => missing.push((name.clone(), PropValue::Empty)),
                    }
                }
                let mut ps = Vec::new();
                if !found.is_empty() {
                    ps.push(Propstat {
                        status: StatusCode::OK,
                        props: found,
                    });
                }
                if !missing.is_empty() {
                    ps.push(Propstat {
                        status: StatusCode::NOT_FOUND,
                        props: missing,
                    });
                }
                ps
            }
        };
        ms.responses.push(DavResponse {
            href: path.to_owned(),
            propstats,
        });
        if want_versions {
            if let Ok(history) = self.backend.store().history(path) {
                for (i, v) in history.iter().enumerate() {
                    ms.responses.push(DavResponse {
                        href: format!("{path}?version={i}"),
                        propstats: vec![Propstat {
                            status: StatusCode::OK,
                            props: vec![
                                ("getetag".to_owned(), PropValue::Text(v.etag.clone())),
                                (
                                    "getcontentlength".to_owned(),
                                    PropValue::Text(v.body.len().to_string()),
                                ),
                                (
                                    "getlastmodified".to_owned(),
                                    PropValue::Text(v.modified_at.as_nanos().to_string()),
                                ),
                            ],
                        }],
                    });
                }
            }
        }
    }

    fn proppatch(&mut self, path: &str, req: &Request) -> Response {
        // The attic exposes live properties only: every mutation is
        // answered 403 in a Multi-Status, per RFC 4918 §9.2 — the stub
        // keeps clients that insist on PROPPATCH working.
        if !self.backend.store().exists(path) {
            return Response::not_found();
        }
        let Some(names) = std::str::from_utf8(&req.body)
            .ok()
            .and_then(proppatch_prop_names)
        else {
            return Response::new(StatusCode::BAD_REQUEST);
        };
        let ms = MultiStatus {
            responses: vec![DavResponse {
                href: path.to_owned(),
                propstats: vec![Propstat {
                    status: StatusCode::FORBIDDEN,
                    props: names.into_iter().map(|n| (n, PropValue::Empty)).collect(),
                }],
            }],
        };
        Response::new(StatusCode::MULTI_STATUS)
            .with_header("content-type", "application/xml; charset=utf-8")
            .with_body(ms.to_xml())
    }

    fn copy_move(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let Some(dst) = req.headers.get("destination").map(str::to_owned) else {
            return Response::new(StatusCode::BAD_REQUEST);
        };
        let token = parse_lock_token(req.headers.get("lock-token"));
        if let Err(LockError::Locked { holder }) = self.backend.check_write(&dst, token, now) {
            return locked_response(holder);
        }
        let src_etag = self.backend.store().get(path).ok().map(|v| v.etag.clone());
        if let Some(failure) = check_preconditions(req, src_etag.as_deref()) {
            return failure;
        }
        let result = if req.method == Method::Copy {
            self.backend.copy(path, &dst, now)
        } else {
            if let Err(LockError::Locked { holder }) = self.backend.check_write(path, token, now) {
                return locked_response(holder);
            }
            self.backend.rename(path, &dst, now)
        };
        match result {
            Ok(Ok(())) => Response::new(StatusCode::CREATED),
            Ok(Err(e)) => store_error_response(e),
            Err(f) => fault_response(f),
        }
    }

    fn lock(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        let ttl = req
            .headers
            .get("timeout")
            .and_then(|t| t.strip_prefix("Second-"))
            .and_then(|s| s.parse().ok())
            .map(SimDuration::from_secs)
            .unwrap_or(SimDuration::from_secs(600));
        // A LOCK carrying a token is a refresh (RFC 4918 §9.10.2).
        if let Some(token) = parse_lock_token(req.headers.get("lock-token")) {
            return match self.backend.refresh(path, token, ttl, now) {
                Ok(Ok(())) => {
                    Response::new(StatusCode::OK).with_header("lock-token", token.to_string())
                }
                Ok(Err(_)) => Response::new(StatusCode::PRECONDITION_FAILED),
                Err(f) => fault_response(f),
            };
        }
        let owner = req.headers.get("x-lock-owner").unwrap_or("anonymous");
        let scope = match req.headers.get("x-lock-scope") {
            Some("shared") => LockScope::Shared,
            _ => LockScope::Exclusive,
        };
        let depth = match req.headers.get("depth") {
            Some("infinity") => LockDepth::Infinity,
            _ => LockDepth::Zero,
        };
        match self.backend.lock(path, owner, scope, depth, ttl, now) {
            Ok(Ok(token)) => {
                Response::new(StatusCode::OK).with_header("lock-token", token.to_string())
            }
            Ok(Err(LockError::Locked { holder })) => locked_response(holder),
            Ok(Err(LockError::BadToken)) => Response::new(StatusCode::BAD_REQUEST),
            Err(f) => fault_response(f),
        }
    }

    fn unlock(&mut self, path: &str, req: &Request, now: SimTime) -> Response {
        match parse_lock_token(req.headers.get("lock-token")) {
            Some(token) => match self.backend.unlock(path, token, now) {
                Ok(Ok(())) => Response::new(StatusCode::NO_CONTENT),
                Ok(Err(_)) => Response::new(StatusCode::CONFLICT),
                Err(f) => fault_response(f),
            },
            None => Response::new(StatusCode::BAD_REQUEST),
        }
    }
}

impl<B: AtticBackend> DavPort for DavCore<B> {
    fn serve(&mut self, req: &Request, origin: Origin, now: SimTime) -> Response {
        DavCore::serve(self, req, origin, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::VolatileBackend;
    use hpop_http::url::Url;

    fn core() -> DavCore<VolatileBackend> {
        DavCore::new(VolatileBackend::new(), TokenVerifier::new([7u8; 32]))
    }

    fn url(p: &str) -> Url {
        Url::https("attic.home", p)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn serve(c: &mut DavCore<VolatileBackend>, req: &Request, at: u64) -> Response {
        c.serve(req, Origin::Local, t(at))
    }

    #[test]
    fn propfind_depths_walk_the_tree() {
        let mut c = core();
        serve(&mut c, &Request::new(Method::MkCol, url("/d")), 0);
        serve(&mut c, &Request::new(Method::MkCol, url("/d/sub")), 0);
        serve(&mut c, &Request::put(url("/d/a"), &b"1"[..]), 0);
        serve(&mut c, &Request::put(url("/d/sub/deep"), &b"2"[..]), 0);

        let hrefs = |resp: Response| -> Vec<String> {
            assert_eq!(resp.status, StatusCode::MULTI_STATUS);
            let xml = String::from_utf8(resp.body.to_vec()).unwrap();
            MultiStatus::parse(&xml)
                .expect("valid 207 body")
                .responses
                .into_iter()
                .map(|r| r.href)
                .collect()
        };

        let zero = Request::new(Method::PropFind, url("/d")).with_header("depth", "0");
        assert_eq!(hrefs(serve(&mut c, &zero, 1)), vec!["/d"]);

        let one = Request::new(Method::PropFind, url("/d")).with_header("depth", "1");
        assert_eq!(hrefs(serve(&mut c, &one, 1)), vec!["/d", "/d/a", "/d/sub"]);

        // No Depth header means infinity per the RFC.
        let inf = Request::new(Method::PropFind, url("/d"));
        assert_eq!(
            hrefs(serve(&mut c, &inf, 1)),
            vec!["/d", "/d/a", "/d/sub", "/d/sub/deep"]
        );

        let bad = Request::new(Method::PropFind, url("/d")).with_header("depth", "7");
        assert_eq!(serve(&mut c, &bad, 1).status, StatusCode::BAD_REQUEST);
    }

    #[test]
    fn propfind_props_partition_into_200_and_404() {
        let mut c = core();
        serve(&mut c, &Request::put(url("/f"), &b"body"[..]), 3);
        let body = PropfindBody::Props(vec![
            "getetag".into(),
            "getcontentlength".into(),
            "quota-used".into(),
        ])
        .to_xml();
        let req = Request::new(Method::PropFind, url("/f")).with_header("depth", "0");
        let mut req = req;
        req.body = body.into();
        let resp = serve(&mut c, &req, 4);
        let ms = MultiStatus::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(ms.responses.len(), 1);
        let ps = &ms.responses[0].propstats;
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].status, StatusCode::OK);
        assert_eq!(ps[0].props.len(), 2);
        assert_eq!(
            ps[0].props[1],
            ("getcontentlength".to_owned(), PropValue::Text("4".into()))
        );
        assert_eq!(ps[1].status, StatusCode::NOT_FOUND);
        assert_eq!(ps[1].props, vec![("quota-used".into(), PropValue::Empty)]);
    }

    #[test]
    fn version_listing_and_get_by_version() {
        let mut c = core();
        let r1 = serve(&mut c, &Request::put(url("/f"), &b"one"[..]), 1);
        serve(&mut c, &Request::put(url("/f"), &b"two"[..]), 2);
        let etag1 = r1.headers.get("etag").unwrap().to_owned();

        let mut pf = Request::new(Method::PropFind, url("/f")).with_header("depth", "0");
        pf.body = PropfindBody::Props(vec!["getetag".into(), "version-list".into()])
            .to_xml()
            .into();
        let resp = serve(&mut c, &pf, 3);
        let ms = MultiStatus::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let hrefs: Vec<&str> = ms.responses.iter().map(|r| r.href.as_str()).collect();
        assert_eq!(hrefs, vec!["/f", "/f?version=0", "/f?version=1"]);

        // Fetch the superseded version by index; its ETag matches v1's.
        let old = Request::get(url("/f")).with_header("x-version", "0");
        let got = serve(&mut c, &old, 4);
        assert_eq!(got.status, StatusCode::OK);
        assert_eq!(&got.body[..], b"one");
        assert_eq!(got.headers.get("etag"), Some(etag1.as_str()));
        let gone = Request::get(url("/f")).with_header("x-version", "9");
        assert_eq!(serve(&mut c, &gone, 4).status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn mkcol_semantics() {
        let mut c = core();
        assert_eq!(
            serve(&mut c, &Request::new(Method::MkCol, url("/d")), 0).status,
            StatusCode::CREATED
        );
        // Existing resource: 405 with the Allow header.
        let again = serve(&mut c, &Request::new(Method::MkCol, url("/d")), 1);
        assert_eq!(again.status, StatusCode::METHOD_NOT_ALLOWED);
        assert_eq!(again.headers.get("allow"), Some(ALLOW_HEADER));
        // Missing parent: 409.
        assert_eq!(
            serve(&mut c, &Request::new(Method::MkCol, url("/nope/x")), 1).status,
            StatusCode::CONFLICT
        );
        // A body we don't understand: 415.
        let mut bodied = Request::new(Method::MkCol, url("/e"));
        bodied.body = b"<x/>".to_vec().into();
        assert_eq!(
            serve(&mut c, &bodied, 1).status,
            StatusCode::UNSUPPORTED_MEDIA_TYPE
        );
    }

    #[test]
    fn etag_preconditions_cover_star_and_lists() {
        let mut c = core();
        let r = serve(&mut c, &Request::put(url("/f"), &b"v1"[..]), 0);
        let etag = r.headers.get("etag").unwrap().to_owned();

        // If-None-Match: * on PUT means "only create" — exists, so 412.
        let create_only = Request::put(url("/f"), &b"v2"[..]).with_header("if-none-match", "*");
        assert_eq!(
            serve(&mut c, &create_only, 1).status,
            StatusCode::PRECONDITION_FAILED
        );
        // …but creates fresh paths fine.
        let fresh = Request::put(url("/g"), &b"x"[..]).with_header("if-none-match", "*");
        assert_eq!(serve(&mut c, &fresh, 1).status, StatusCode::CREATED);

        // If-Match with a list containing the current etag passes.
        let listed = Request::put(url("/f"), &b"v2"[..])
            .with_header("if-match", format!("\"bogus\", {etag}"));
        assert_eq!(serve(&mut c, &listed, 2).status, StatusCode::NO_CONTENT);

        // DELETE with a stale If-Match bounces.
        let stale_delete =
            Request::new(Method::Delete, url("/f")).with_header("if-match", etag.clone());
        assert_eq!(
            serve(&mut c, &stale_delete, 3).status,
            StatusCode::PRECONDITION_FAILED
        );

        // If-Match: * against a missing resource fails.
        let missing = Request::put(url("/missing/f"), &b"x"[..]).with_header("if-match", "*");
        assert_eq!(
            serve(&mut c, &missing, 3).status,
            StatusCode::PRECONDITION_FAILED
        );
    }

    #[test]
    fn proppatch_refuses_politely() {
        let mut c = core();
        serve(&mut c, &Request::put(url("/f"), &b"x"[..]), 0);
        let mut pp = Request::new(Method::PropPatch, url("/f"));
        pp.body = b"<D:propertyupdate xmlns:D=\"DAV:\"><D:set><D:prop><D:color/></D:prop></D:set></D:propertyupdate>"
            .to_vec()
            .into();
        let resp = serve(&mut c, &pp, 1);
        assert_eq!(resp.status, StatusCode::MULTI_STATUS);
        let ms = MultiStatus::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(ms.responses[0].propstats[0].status, StatusCode::FORBIDDEN);
        assert_eq!(
            ms.responses[0].propstats[0].props,
            vec![("color".into(), PropValue::Empty)]
        );
    }

    #[test]
    fn lock_refresh_via_token_header() {
        let mut c = core();
        serve(&mut c, &Request::put(url("/f"), &b"x"[..]), 0);
        let lock = Request::new(Method::Lock, url("/f"))
            .with_header("x-lock-owner", "app")
            .with_header("timeout", "Second-60");
        let token = serve(&mut c, &lock, 0)
            .headers
            .get("lock-token")
            .unwrap()
            .to_owned();
        // Refresh at t=50 extends past the original expiry…
        let refresh = Request::new(Method::Lock, url("/f"))
            .with_header("lock-token", token.clone())
            .with_header("timeout", "Second-60");
        assert_eq!(serve(&mut c, &refresh, 50).status, StatusCode::OK);
        let blocked = serve(&mut c, &Request::put(url("/f"), &b"y"[..]), 100);
        assert_eq!(blocked.status, StatusCode::LOCKED);
        // …and refreshing an unknown token is a 412.
        let bogus = Request::new(Method::Lock, url("/f"))
            .with_header("lock-token", "opaquelocktoken:00000000000000ff");
        assert_eq!(
            serve(&mut c, &bogus, 50).status,
            StatusCode::PRECONDITION_FAILED
        );
    }

    #[test]
    fn options_and_405_advertise_the_full_surface() {
        let mut c = core();
        let r = serve(&mut c, &Request::new(Method::Options, url("/")), 0);
        assert_eq!(r.headers.get("dav"), Some(DAV_HEADER));
        assert_eq!(r.headers.get("allow"), Some(ALLOW_HEADER));
        for verb in [
            "OPTIONS",
            "GET",
            "HEAD",
            "PUT",
            "DELETE",
            "MKCOL",
            "PROPFIND",
            "PROPPATCH",
            "COPY",
            "MOVE",
            "LOCK",
            "UNLOCK",
        ] {
            assert!(ALLOW_HEADER.contains(verb), "{verb} advertised");
        }
        let post = serve(&mut c, &Request::new(Method::Post, url("/")), 0);
        assert_eq!(post.status, StatusCode::METHOD_NOT_ALLOWED);
        assert_eq!(post.headers.get("allow"), Some(ALLOW_HEADER));
    }
}
