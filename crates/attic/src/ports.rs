//! Ports of the attic's hexagonal architecture.
//!
//! The domain core — versioned [`ObjectStore`], [`LockManager`]
//! mediation, WebDAV protocol semantics — knows nothing about *how* it
//! is driven or *where* state lives. Two port families make that
//! explicit:
//!
//! - **Driving port** ([`DavPort`]): anything that can serve a WebDAV
//!   request. The protocol engine
//!   ([`DavCore`](crate::webdav::DavCore)) implements it; so do the
//!   adapters wrapping it — [`AtticServer`](crate::server::AtticServer)
//!   (the deterministic netsim adapter experiments drive) and
//!   [`AtticDaemon`](crate::daemon) (the real-socket appliance). One
//!   conformance suite runs against both and must produce
//!   byte-identical transcripts: the simulated results describe the
//!   code that actually serves traffic.
//! - **Driven port** ([`AtticBackend`]): the storage the engine runs
//!   over. [`VolatileBackend`] keeps everything in memory (simulation,
//!   tests); [`DurableAttic`](crate::durable::DurableAttic) journals
//!   every mutation through `hpop-durability` so acked writes —
//!   including lifecycle compactions — survive crashes.

use crate::durable::DurableAttic;
use crate::lock::{LockDepth, LockError, LockManager, LockScope, LockToken};
use crate::store::{ObjectStore, PruneReport, StoreError};
use hpop_http::message::{Request, Response};
use hpop_netsim::storage::DiskError;
use hpop_netsim::time::{SimDuration, SimTime};
use std::fmt;

/// Where a request entered the attic: inside the home (trusted) or
/// from an external application (must present a capability grant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// In-home traffic; no grant required (the paper's trust model).
    Local,
    /// External traffic; `Authorization: Capability <wire>` enforced.
    External,
}

/// A device-level fault from the driven side — the request was not
/// (fully) applied because the storage layer failed, not because WebDAV
/// semantics rejected it. Adapters map this to `500`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendFault {
    /// The simulated disk failed mid-write (power cut, torn sector).
    Disk(DiskError),
}

impl fmt::Display for BackendFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendFault::Disk(e) => write!(f, "storage fault: {e:?}"),
        }
    }
}

impl std::error::Error for BackendFault {}

impl From<DiskError> for BackendFault {
    fn from(e: DiskError) -> BackendFault {
        BackendFault::Disk(e)
    }
}

/// The driving port: serve one WebDAV request at a logical instant.
pub trait DavPort {
    /// Handles `req`, entering via `origin`, at simulation time `now`.
    fn serve(&mut self, req: &Request, origin: Origin, now: SimTime) -> Response;
}

/// The driven port: everything the protocol engine asks of storage.
///
/// The double `Result` mirrors [`DurableAttic`]: the outer layer is the
/// device (did the mutation land durably?), the inner one the WebDAV
/// service semantics (was it allowed?).
pub trait AtticBackend {
    /// Read-only view of the object store (GET/PROPFIND paths).
    fn store(&self) -> &ObjectStore;

    /// `MKCOL`.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: store semantics.
    fn mkcol(&mut self, path: &str) -> Result<Result<(), StoreError>, BackendFault>;

    /// `PUT` — appends a version; inner `Ok` is the new ETag.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: store semantics.
    fn put(
        &mut self,
        path: &str,
        body: &[u8],
        now: SimTime,
    ) -> Result<Result<String, StoreError>, BackendFault>;

    /// `DELETE` — inner `Ok` is nodes removed.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: store semantics.
    fn delete(&mut self, path: &str) -> Result<Result<usize, StoreError>, BackendFault>;

    /// `COPY` (no overwrite).
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: store semantics.
    fn copy(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, BackendFault>;

    /// `MOVE`.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: store semantics.
    fn rename(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, BackendFault>;

    /// `LOCK` — inner `Ok` is the token.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: lock semantics.
    #[allow(clippy::too_many_arguments)]
    fn lock(
        &mut self,
        path: &str,
        owner: &str,
        scope: LockScope,
        depth: LockDepth,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<LockToken, LockError>, BackendFault>;

    /// `UNLOCK`.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: lock semantics.
    fn unlock(
        &mut self,
        path: &str,
        token: LockToken,
        now: SimTime,
    ) -> Result<Result<(), LockError>, BackendFault>;

    /// `LOCK` refresh (extends the lifetime of a held lock).
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: lock semantics.
    fn refresh(
        &mut self,
        path: &str,
        token: LockToken,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<(), LockError>, BackendFault>;

    /// Write admissibility under the lock table (never journaled —
    /// purely a read).
    ///
    /// # Errors
    ///
    /// [`LockError::Locked`] when an exclusive lock covers the path and
    /// the token doesn't match.
    fn check_write(
        &mut self,
        path: &str,
        token: Option<LockToken>,
        now: SimTime,
    ) -> Result<(), LockError>;

    /// The live lock matching `(path, token)` at `now`, as
    /// `(owner, expires_at)`.
    fn find_lock(&self, path: &str, token: LockToken, now: SimTime) -> Option<(String, SimTime)>;

    /// Lifecycle compaction: drop noncurrent versions beyond the `keep`
    /// newest or written before `min_modified`.
    ///
    /// # Errors
    ///
    /// Outer: device fault. Inner: store semantics.
    fn prune(
        &mut self,
        path: &str,
        keep: usize,
        min_modified: SimTime,
    ) -> Result<Result<PruneReport, StoreError>, BackendFault>;
}

/// The in-memory backend: the netsim adapter's storage. Fast,
/// deterministic, forgets everything on drop — exactly what
/// experiments want.
#[derive(Clone, Debug, Default)]
pub struct VolatileBackend {
    /// The versioned object store.
    pub store: ObjectStore,
    /// The WebDAV lock table.
    pub locks: LockManager,
}

impl VolatileBackend {
    /// An empty backend.
    pub fn new() -> VolatileBackend {
        VolatileBackend {
            store: ObjectStore::new(),
            locks: LockManager::new(),
        }
    }
}

impl AtticBackend for VolatileBackend {
    fn store(&self) -> &ObjectStore {
        &self.store
    }

    fn mkcol(&mut self, path: &str) -> Result<Result<(), StoreError>, BackendFault> {
        Ok(self.store.mkcol(path))
    }

    fn put(
        &mut self,
        path: &str,
        body: &[u8],
        now: SimTime,
    ) -> Result<Result<String, StoreError>, BackendFault> {
        Ok(self.store.put(path, body.to_vec(), now))
    }

    fn delete(&mut self, path: &str) -> Result<Result<usize, StoreError>, BackendFault> {
        Ok(self.store.delete(path))
    }

    fn copy(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, BackendFault> {
        Ok(self.store.copy(src, dst, now))
    }

    fn rename(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, BackendFault> {
        Ok(self.store.rename(src, dst, now))
    }

    fn lock(
        &mut self,
        path: &str,
        owner: &str,
        scope: LockScope,
        depth: LockDepth,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<LockToken, LockError>, BackendFault> {
        Ok(self.locks.lock(path, owner, scope, depth, ttl, now))
    }

    fn unlock(
        &mut self,
        path: &str,
        token: LockToken,
        now: SimTime,
    ) -> Result<Result<(), LockError>, BackendFault> {
        Ok(self.locks.unlock(path, token, now))
    }

    fn refresh(
        &mut self,
        path: &str,
        token: LockToken,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<(), LockError>, BackendFault> {
        Ok(self.locks.refresh(path, token, ttl, now))
    }

    fn check_write(
        &mut self,
        path: &str,
        token: Option<LockToken>,
        now: SimTime,
    ) -> Result<(), LockError> {
        self.locks.check_write(path, token, now)
    }

    fn find_lock(&self, path: &str, token: LockToken, now: SimTime) -> Option<(String, SimTime)> {
        self.locks.find(path, token, now)
    }

    fn prune(
        &mut self,
        path: &str,
        keep: usize,
        min_modified: SimTime,
    ) -> Result<Result<PruneReport, StoreError>, BackendFault> {
        Ok(self.store.prune_noncurrent(path, keep, min_modified))
    }
}

impl AtticBackend for DurableAttic {
    fn store(&self) -> &ObjectStore {
        DurableAttic::store(self)
    }

    fn mkcol(&mut self, path: &str) -> Result<Result<(), StoreError>, BackendFault> {
        Ok(DurableAttic::mkcol(self, path)?)
    }

    fn put(
        &mut self,
        path: &str,
        body: &[u8],
        now: SimTime,
    ) -> Result<Result<String, StoreError>, BackendFault> {
        Ok(DurableAttic::put(self, path, body, now)?)
    }

    fn delete(&mut self, path: &str) -> Result<Result<usize, StoreError>, BackendFault> {
        Ok(DurableAttic::delete(self, path)?)
    }

    fn copy(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, BackendFault> {
        Ok(DurableAttic::copy(self, src, dst, now)?)
    }

    fn rename(
        &mut self,
        src: &str,
        dst: &str,
        now: SimTime,
    ) -> Result<Result<(), StoreError>, BackendFault> {
        Ok(DurableAttic::rename(self, src, dst, now)?)
    }

    fn lock(
        &mut self,
        path: &str,
        owner: &str,
        scope: LockScope,
        depth: LockDepth,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<LockToken, LockError>, BackendFault> {
        Ok(DurableAttic::lock(
            self, path, owner, scope, depth, ttl, now,
        )?)
    }

    fn unlock(
        &mut self,
        path: &str,
        token: LockToken,
        now: SimTime,
    ) -> Result<Result<(), LockError>, BackendFault> {
        Ok(DurableAttic::unlock(self, path, token, now)?)
    }

    fn refresh(
        &mut self,
        path: &str,
        token: LockToken,
        ttl: SimDuration,
        now: SimTime,
    ) -> Result<Result<(), LockError>, BackendFault> {
        Ok(DurableAttic::refresh(self, path, token, ttl, now)?)
    }

    fn check_write(
        &mut self,
        path: &str,
        token: Option<LockToken>,
        now: SimTime,
    ) -> Result<(), LockError> {
        DurableAttic::check_write(self, path, token, now)
    }

    fn find_lock(&self, path: &str, token: LockToken, now: SimTime) -> Option<(String, SimTime)> {
        self.locks().find(path, token, now)
    }

    fn prune(
        &mut self,
        path: &str,
        keep: usize,
        min_modified: SimTime,
    ) -> Result<Result<PruneReport, StoreError>, BackendFault> {
        Ok(DurableAttic::prune(self, path, keep, min_modified)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_durability::DurabilityConfig;
    use hpop_netsim::storage::SimDisk;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// The same op sequence through both backends lands in the same
    /// observable state — the ports contract the adapters rely on.
    #[test]
    fn volatile_and_durable_backends_agree() {
        let mut vol = VolatileBackend::new();
        let mut dur = DurableAttic::open(SimDisk::new(7), "attic", DurabilityConfig::default())
            .expect("open");

        fn drive<B: AtticBackend>(b: &mut B) -> (String, LockToken) {
            b.mkcol("/d").unwrap().unwrap();
            b.put("/d/f", b"v1", t(1)).unwrap().unwrap();
            let etag = b.put("/d/f", b"v2", t(2)).unwrap().unwrap();
            let token = b
                .lock(
                    "/d/f",
                    "app",
                    LockScope::Exclusive,
                    LockDepth::Zero,
                    SimDuration::from_secs(60),
                    t(3),
                )
                .unwrap()
                .unwrap();
            assert!(b.check_write("/d/f", None, t(4)).is_err());
            assert!(b.check_write("/d/f", Some(token), t(4)).is_ok());
            let prune = b.prune("/d/f", 0, SimTime::ZERO).unwrap().unwrap();
            assert_eq!(prune.removed_versions, 1);
            (etag, token)
        }

        let (ev, tv) = drive(&mut vol);
        let (ed, td) = drive(&mut dur);
        assert_eq!(ev, ed, "etags agree across backends");
        assert_eq!(tv, td, "deterministic tokens agree");
        assert_eq!(
            vol.store().get("/d/f").unwrap().etag,
            dur.store().get("/d/f").unwrap().etag
        );
        assert_eq!(vol.store().history("/d/f").unwrap().len(), 1);
        assert_eq!(dur.store().history("/d/f").unwrap().len(), 1);
        assert_eq!(
            vol.find_lock("/d/f", tv, t(5)).unwrap(),
            dur.find_lock("/d/f", td, t(5)).unwrap()
        );
    }
}
