//! Loopback integration: the full conformance suite over real TCP,
//! against both a volatile and a journaled backend, compared
//! byte-for-byte with the in-process netsim adapter.
//!
//! This is the PR's acceptance gate run as a black box — through the
//! public crate API only, the way CI runs it.

use hpop_attic::{
    run_suite, AtticDaemon, AtticServer, DaemonConfig, DavCore, DurableAttic, SimTransport,
    TcpTransport, VolatileBackend,
};
use hpop_core::auth::TokenVerifier;
use hpop_durability::DurabilityConfig;
use hpop_netsim::storage::SimDisk;

fn verifier() -> TokenVerifier {
    TokenVerifier::new([7u8; 32])
}

#[test]
fn conformance_suite_is_byte_identical_across_adapters() {
    // Reference run: the netsim adapter, fully in-process.
    let mut server = AtticServer::new(verifier());
    let sim = run_suite(&mut SimTransport::new(server.core_mut()));
    assert_eq!(sim.failures, Vec::<String>::new());
    assert_eq!(sim.passed, sim.steps);

    // Same suite over loopback TCP against the volatile backend.
    let volatile = DavCore::new(VolatileBackend::new(), verifier());
    let handle = AtticDaemon::spawn(DaemonConfig::default(), volatile).expect("bind");
    let mut tcp = TcpTransport::connect(handle.addr()).expect("connect");
    let daemon = run_suite(&mut tcp);
    drop(tcp);
    let stats = handle.stop();
    assert_eq!(daemon.failures, Vec::<String>::new());
    assert_eq!(sim.transcript, daemon.transcript);
    assert_eq!(stats.requests, u64::from(daemon.steps));
    assert_eq!(stats.bad_frames, 0);

    // And once more with every mutation journaled through the WAL:
    // durability must be invisible at the protocol level.
    let attic = DurableAttic::open(SimDisk::new(3), "attic", DurabilityConfig::default())
        .expect("open journal");
    let handle =
        AtticDaemon::spawn(DaemonConfig::default(), DavCore::new(attic, verifier())).expect("bind");
    let mut tcp = TcpTransport::connect(handle.addr()).expect("connect");
    let journaled = run_suite(&mut tcp);
    drop(tcp);
    handle.stop();
    assert_eq!(journaled.failures, Vec::<String>::new());
    assert_eq!(sim.transcript, journaled.transcript);
}
