//! Chunked multi-peer downloads.
//!
//! §IV-B ("Leveraging Redundancy"): "clients could download objects in
//! chunks (e.g., using HTTP range requests) from disparate peers instead
//! of as entire objects … These options both spread the load and lower
//! the chance that one problematic peer — be it malicious or overloaded
//! — will have a large overall impact on the client."

use crate::origin::ContentProvider;
use crate::peer::{NoCdnPeer, PeerId};
use bytes::Bytes;
use hpop_crypto::sha256::{Digest, Sha256};
use hpop_http::range::ByteRange;
use hpop_obs::event;
use std::collections::BTreeMap;

/// The outcome of a chunked fetch.
#[derive(Clone, Debug, Default)]
pub struct ChunkedReport {
    /// Bytes obtained per peer (verified object only).
    pub bytes_per_peer: BTreeMap<u32, u64>,
    /// Chunks re-fetched from the origin (peer bad or range corrupt).
    pub fallback_chunks: usize,
    /// Whether the assembled object verified against the whole-object
    /// hash.
    pub verified: bool,
}

/// Fetches one object in `n` range chunks, each from the next peer in
/// `peers` (round-robin). Chunks from bad peers are detected by the
/// whole-object hash; on failure the object is re-fetched chunk-by-chunk
/// with per-chunk comparison against the origin (the "problematic peer"
/// containment the paper wants: only the bad chunk is re-fetched).
///
/// # Panics
///
/// Panics if `peers` is empty or the object is unknown at the origin.
pub fn fetch_chunked(
    path: &str,
    n_chunks: usize,
    expected: &Digest,
    peer_order: &[PeerId],
    peers: &mut BTreeMap<PeerId, NoCdnPeer>,
    origin: &mut ContentProvider,
) -> (ChunkedReport, Bytes) {
    assert!(!peer_order.is_empty(), "need at least one peer");
    let total = origin
        .peek_object(path)
        .unwrap_or_else(|| panic!("unknown object {path}"))
        .len() as u64;
    let mut report = ChunkedReport::default();
    if total == 0 {
        report.verified = Sha256::digest(b"").ct_eq(expected);
        return (report, Bytes::new());
    }
    let ranges = ByteRange::split(total, n_chunks);
    let host = origin.host().to_owned();
    let mut assembled = Vec::with_capacity(total as usize);
    let mut sources: Vec<(ByteRange, Option<PeerId>)> = Vec::new();
    for (i, range) in ranges.iter().enumerate() {
        let peer_id = peer_order[i % peer_order.len()];
        // A peer serves the whole object from its cache and the client
        // takes the range (peers are plain proxies honoring Range).
        let chunk = peers
            .get_mut(&peer_id)
            .and_then(|p| p.serve(&host, path, origin))
            .map(|body| slice_range(&body, range));
        match chunk {
            Some(c) => {
                let m = hpop_obs::metrics();
                m.counter("nocdn.chunks.from_peer").incr();
                m.histogram("nocdn.chunk.bytes").record(c.len() as u64);
                event!(
                    hpop_obs::tracer(),
                    0,
                    "nocdn",
                    "chunk.fetch",
                    path = path,
                    peer = peer_id.0,
                    bytes = c.len() as u64
                );
                assembled.extend_from_slice(&c);
                sources.push((*range, Some(peer_id)));
            }
            None => {
                let full = origin.fetch_object(path).expect("checked above");
                let c = slice_range(&full, range);
                let m = hpop_obs::metrics();
                m.counter("nocdn.chunks.from_origin").incr();
                m.histogram("nocdn.chunk.bytes").record(c.len() as u64);
                assembled.extend_from_slice(&c);
                sources.push((*range, None));
                report.fallback_chunks += 1;
            }
        }
    }

    let verify_hist = hpop_obs::metrics().histogram("nocdn.chunk.verify_ns");
    let verify_guard = hpop_obs::span!(verify_hist);
    let whole_ok = Sha256::digest(&assembled).ct_eq(expected);
    drop(verify_guard);
    event!(
        hpop_obs::tracer(),
        0,
        "nocdn",
        "chunk.verify",
        path = path,
        ok = whole_ok,
        chunks = sources.len() as u64
    );
    if whole_ok {
        hpop_obs::metrics().counter("nocdn.verify.ok").incr();
        for (range, src) in &sources {
            if let Some(p) = src {
                *report.bytes_per_peer.entry(p.0).or_default() += range.len();
            }
        }
        report.verified = true;
        return (report, Bytes::from(assembled));
    }

    // Some chunk was corrupted: identify and replace bad chunks against
    // the authentic object, charging only honest peers for their bytes.
    hpop_obs::metrics().counter("nocdn.verify.failed").incr();
    let authentic = origin.fetch_object(path).expect("checked above");
    let mut repaired = Vec::with_capacity(total as usize);
    for (range, src) in &sources {
        let start = range.start as usize;
        let end = (range.end + 1) as usize;
        let got = &assembled[start..end];
        let truth = &authentic[start..end];
        if got == truth {
            if let Some(p) = src {
                *report.bytes_per_peer.entry(p.0).or_default() += range.len();
            }
            repaired.extend_from_slice(got);
        } else {
            hpop_obs::metrics().counter("nocdn.chunks.repaired").incr();
            report.fallback_chunks += 1;
            repaired.extend_from_slice(truth);
        }
    }
    report.verified = Sha256::digest(&repaired).ct_eq(expected);
    (report, Bytes::from(repaired))
}

fn slice_range(body: &Bytes, range: &ByteRange) -> Bytes {
    let end = (range.end + 1).min(body.len() as u64) as usize;
    body.slice(range.start as usize..end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerBehavior;

    fn setup(behaviors: &[PeerBehavior]) -> (ContentProvider, BTreeMap<PeerId, NoCdnPeer>, Digest) {
        let mut origin = ContentProvider::new("cdn.example");
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let digest = Sha256::digest(&body);
        origin.put_object("/big.bin", body);
        let peers = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    PeerId(i as u32),
                    NoCdnPeer::with_behavior(PeerId(i as u32), b),
                )
            })
            .collect();
        (origin, peers, digest)
    }

    fn order(n: u32) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    #[test]
    fn spreads_load_across_peers() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest; 4]);
        let (report, body) =
            fetch_chunked("/big.bin", 8, &digest, &order(4), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert_eq!(report.bytes_per_peer.len(), 4);
        // Each peer served ~2 chunks = ~25 KB.
        for (&p, &b) in &report.bytes_per_peer {
            assert!((20_000..30_000).contains(&b), "peer {p} served {b}");
        }
    }

    #[test]
    fn one_corrupting_peer_costs_only_its_chunks() {
        let (mut origin, mut peers, digest) = setup(&[
            PeerBehavior::Honest,
            PeerBehavior::CorruptsContent,
            PeerBehavior::Honest,
            PeerBehavior::Honest,
        ]);
        let (report, body) =
            fetch_chunked("/big.bin", 8, &digest, &order(4), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        // Peer 1's chunks were repaired; it earned nothing.
        assert!(!report.bytes_per_peer.contains_key(&1));
        // Honest peers were still credited for their verified chunks.
        assert_eq!(report.bytes_per_peer.len(), 3);
        // Only the corrupted chunks fell back.
        assert_eq!(report.fallback_chunks, 2);
    }

    #[test]
    fn unresponsive_peer_only_delays_its_chunks() {
        let (mut origin, mut peers, digest) =
            setup(&[PeerBehavior::Honest, PeerBehavior::Unresponsive]);
        let (report, body) =
            fetch_chunked("/big.bin", 4, &digest, &order(2), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert_eq!(report.fallback_chunks, 2);
        assert_eq!(report.bytes_per_peer.len(), 1);
    }

    #[test]
    fn whole_object_path_matches_chunked_result() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest]);
        let (_, body) = fetch_chunked("/big.bin", 1, &digest, &order(1), &mut peers, &mut origin);
        assert_eq!(&body[..], &origin.peek_object("/big.bin").unwrap()[..]);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_peer_order_panics() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest]);
        fetch_chunked("/big.bin", 4, &digest, &[], &mut peers, &mut origin);
    }
}
