//! Chunked multi-peer downloads.
//!
//! §IV-B ("Leveraging Redundancy"): "clients could download objects in
//! chunks (e.g., using HTTP range requests) from disparate peers instead
//! of as entire objects … These options both spread the load and lower
//! the chance that one problematic peer — be it malicious or overloaded
//! — will have a large overall impact on the client."

use crate::origin::ContentProvider;
use crate::peer::{NoCdnPeer, PeerId};
use bytes::Bytes;
use hpop_crypto::sha256::{Digest, Sha256};
use hpop_http::range::ByteRange;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_obs::{event, SpanScope, SpanTracer};
use hpop_resilience::{
    AdmissionBank, AdmissionConfig, BreakerBank, BreakerConfig, Deadline, Hedge, HedgeConfig,
    RetryPolicy, SaturationSignal,
};
use std::collections::BTreeMap;

/// The outcome of a chunked fetch.
#[derive(Clone, Debug, Default)]
pub struct ChunkedReport {
    /// Bytes obtained per peer (verified object only).
    pub bytes_per_peer: BTreeMap<u32, u64>,
    /// Chunks re-fetched from the origin (peer bad or range corrupt).
    pub fallback_chunks: usize,
    /// Chunks where a hedged second request was launched.
    pub hedged_chunks: usize,
    /// Peers whose chunks failed the reassembly integrity check
    /// (deduplicated) — the caller reports these to the directory
    /// ledger.
    pub corrupt_peers: Vec<u32>,
    /// Whether the assembled object verified against the whole-object
    /// hash.
    pub verified: bool,
}

/// Fetches one object in `n` range chunks, each from the next peer in
/// `peers` (round-robin). Chunks from bad peers are detected by the
/// whole-object hash; on failure the object is re-fetched chunk-by-chunk
/// with per-chunk comparison against the origin (the "problematic peer"
/// containment the paper wants: only the bad chunk is re-fetched).
///
/// # Panics
///
/// Panics if `peers` is empty or the object is unknown at the origin.
pub fn fetch_chunked(
    path: &str,
    n_chunks: usize,
    expected: &Digest,
    peer_order: &[PeerId],
    peers: &mut BTreeMap<PeerId, NoCdnPeer>,
    origin: &mut ContentProvider,
) -> (ChunkedReport, Bytes) {
    assert!(!peer_order.is_empty(), "need at least one peer");
    let total = origin
        .peek_object(path)
        .unwrap_or_else(|| panic!("unknown object {path}"))
        .len() as u64;
    let mut report = ChunkedReport::default();
    if total == 0 {
        report.verified = Sha256::digest(b"").ct_eq(expected);
        return (report, Bytes::new());
    }
    let ranges = ByteRange::split(total, n_chunks);
    let host = origin.host().to_owned();
    let mut assembled = Vec::with_capacity(total as usize);
    let mut sources: Vec<(ByteRange, Option<PeerId>)> = Vec::new();
    for (i, range) in ranges.iter().enumerate() {
        let peer_id = peer_order[i % peer_order.len()];
        // A peer serves the whole object from its cache and the client
        // takes the range (peers are plain proxies honoring Range).
        let chunk = peers
            .get_mut(&peer_id)
            .and_then(|p| p.serve(&host, path, origin))
            .map(|body| slice_range(&body, range));
        match chunk {
            Some(c) => {
                let m = hpop_obs::metrics();
                m.counter("nocdn.chunks.from_peer").incr();
                m.histogram("nocdn.chunk.bytes").record(c.len() as u64);
                event!(
                    hpop_obs::tracer(),
                    0,
                    "nocdn",
                    "chunk.fetch",
                    path = path,
                    peer = peer_id.0,
                    bytes = c.len() as u64
                );
                assembled.extend_from_slice(&c);
                sources.push((*range, Some(peer_id)));
            }
            None => {
                let full = origin.fetch_object(path).expect("checked above");
                let c = slice_range(&full, range);
                let m = hpop_obs::metrics();
                m.counter("nocdn.chunks.from_origin").incr();
                m.histogram("nocdn.chunk.bytes").record(c.len() as u64);
                assembled.extend_from_slice(&c);
                sources.push((*range, None));
                report.fallback_chunks += 1;
            }
        }
    }

    let verify_hist = hpop_obs::metrics().histogram("nocdn.chunk.verify_ns");
    let verify_guard = hpop_obs::span!(verify_hist);
    let whole_ok = Sha256::digest(&assembled).ct_eq(expected);
    drop(verify_guard);
    event!(
        hpop_obs::tracer(),
        0,
        "nocdn",
        "chunk.verify",
        path = path,
        ok = whole_ok,
        chunks = sources.len() as u64
    );
    if whole_ok {
        hpop_obs::metrics().counter("nocdn.verify.ok").incr();
        for (range, src) in &sources {
            if let Some(p) = src {
                *report.bytes_per_peer.entry(p.0).or_default() += range.len();
            }
        }
        report.verified = true;
        return (report, Bytes::from(assembled));
    }

    // Some chunk was corrupted: identify and replace bad chunks against
    // the authentic object, charging only honest peers for their bytes.
    hpop_obs::metrics().counter("nocdn.verify.failed").incr();
    let authentic = origin.fetch_object(path).expect("checked above");
    let mut repaired = Vec::with_capacity(total as usize);
    for (range, src) in &sources {
        let start = range.start as usize;
        let end = (range.end + 1) as usize;
        let truth = &authentic[start..end];
        // `get` (not indexing): a misbehaving peer may have served a
        // short body, leaving the assembly truncated mid-chunk.
        let got = assembled.get(start..end);
        if got == Some(truth) {
            if let Some(p) = src {
                *report.bytes_per_peer.entry(p.0).or_default() += range.len();
            }
            repaired.extend_from_slice(truth);
        } else {
            hpop_obs::metrics().counter("nocdn.chunks.repaired").incr();
            if let Some(p) = src {
                if !report.corrupt_peers.contains(&p.0) {
                    report.corrupt_peers.push(p.0);
                }
            }
            report.fallback_chunks += 1;
            repaired.extend_from_slice(truth);
        }
    }
    // Re-verify the *whole object* after reassembly from repaired
    // chunks — per-chunk equality against the origin is necessary but
    // not sufficient (it cannot catch misassembly across boundaries).
    report.verified = Sha256::digest(&repaired).ct_eq(expected);
    (report, Bytes::from(repaired))
}

fn slice_range(body: &Bytes, range: &ByteRange) -> Bytes {
    let end = (range.end + 1).min(body.len() as u64) as usize;
    body.slice((range.start as usize).min(end)..end)
}

/// A chunked-fetch client with the full resilience stack: per-peer
/// circuit breakers gate selection, per-peer admission controllers cap
/// the rate and concurrency any single peer is asked for, failed range
/// requests retry with budgeted backoff under a [`Deadline`],
/// tail-latency stragglers get a hedged second request to another peer
/// (suppressed while the system is saturated, so hedges cannot amplify
/// a flash crowd), and any chunk no admitted peer can deliver falls
/// back to the origin — a page load never fails, it only degrades to
/// origin bytes.
#[derive(Clone, Debug)]
pub struct ResilientFetcher {
    /// Per-peer circuit breakers (keyed by raw peer id). Feed
    /// reputation scores in via [`BreakerBank::set_reputation`].
    pub breakers: BreakerBank<u32>,
    /// Per-peer admission: token-bucket rate + AIMD concurrency caps,
    /// so one saturated peer is routed around instead of queued on.
    pub admission: AdmissionBank<u32>,
    /// The p99-informed hedge trigger, warmed by observed latencies.
    /// Attach a shared [`SaturationSignal`] (e.g. the coop cache's)
    /// via [`Hedge::attach_saturation`] to gate hedging off under
    /// load; the fetcher additionally gates on its own breaker-bank
    /// and admission saturation.
    pub hedge: Hedge,
    /// Backoff policy for failed range requests.
    pub retry: RetryPolicy,
    /// Causal span tracer. Each [`ResilientFetcher::fetch`] opens one
    /// root `"request"` span and nests `"transfer"` / `"retry"` /
    /// `"hedge"` / `"verify"` / `"origin_fallback"` children under it.
    /// Defaults to a disabled tracer, which costs one atomic load per
    /// fetch.
    pub spans: SpanTracer,
}

impl Default for ResilientFetcher {
    fn default() -> ResilientFetcher {
        ResilientFetcher::new(
            BreakerConfig::default(),
            HedgeConfig::default(),
            RetryPolicy::default(),
        )
    }
}

impl ResilientFetcher {
    /// A fetcher with the given policies (all breakers closed, hedge
    /// cold, per-peer admission at [`AdmissionConfig::default`]).
    pub fn new(
        breakers: BreakerConfig,
        hedge: HedgeConfig,
        retry: RetryPolicy,
    ) -> ResilientFetcher {
        ResilientFetcher::with_admission(breakers, AdmissionConfig::default(), hedge, retry)
    }

    /// A fetcher with explicit per-peer admission tuning.
    pub fn with_admission(
        breakers: BreakerConfig,
        admission: AdmissionConfig,
        hedge: HedgeConfig,
        retry: RetryPolicy,
    ) -> ResilientFetcher {
        ResilientFetcher {
            breakers: BreakerBank::new(breakers),
            admission: AdmissionBank::new(admission),
            hedge: Hedge::new(hedge),
            retry,
            spans: SpanTracer::new(1),
        }
    }

    /// Wires the hedge to a shared saturation signal (see
    /// [`Hedge::attach_saturation`]).
    pub fn attach_saturation(&mut self, signal: SaturationSignal) {
        self.hedge.attach_saturation(signal);
    }

    /// Fetches one object in `n_chunks` range requests with breakers,
    /// retries, hedging and origin fallback. `latency_of` is the
    /// caller's latency oracle for a peer (experiments derive it from
    /// the fault plan: slow peers report proportionally longer service
    /// times). The clock `*now` advances by backoff pauses and by each
    /// winning chunk's service latency.
    ///
    /// Unlike [`fetch_chunked`], an empty `peer_order` is not an error:
    /// every chunk simply falls back to the origin.
    ///
    /// # Panics
    ///
    /// Panics if the object is unknown at the origin.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch(
        &mut self,
        path: &str,
        n_chunks: usize,
        expected: &Digest,
        peer_order: &[PeerId],
        peers: &mut BTreeMap<PeerId, NoCdnPeer>,
        origin: &mut ContentProvider,
        deadline: Deadline,
        now: &mut SimTime,
        latency_of: &dyn Fn(PeerId) -> SimDuration,
    ) -> (ChunkedReport, Bytes) {
        let total = origin
            .peek_object(path)
            .unwrap_or_else(|| panic!("unknown object {path}"))
            .len() as u64;
        let mut report = ChunkedReport::default();
        if total == 0 {
            report.verified = Sha256::digest(b"").ct_eq(expected);
            return (report, Bytes::new());
        }
        let ranges = ByteRange::split(total, n_chunks);
        let host = origin.host().to_owned();
        let mut assembled = Vec::with_capacity(total as usize);
        let mut sources: Vec<(ByteRange, Option<PeerId>)> = Vec::new();
        let ResilientFetcher {
            breakers,
            admission,
            hedge,
            retry,
            spans,
        } = self;
        let root_ctx = spans.root();
        let fetch_start_us = now.as_nanos() / 1_000;
        for (i, range) in ranges.iter().enumerate() {
            // One rotation cursor per chunk, shared across retry
            // attempts so each attempt moves on to the next admitted
            // peer instead of hammering the same one.
            let mut cursor = i;
            let mut hedged = false;
            let chunk_start_us = now.as_nanos() / 1_000;
            let chunk_ctx = spans.child(&root_ctx);
            let chunk_scope = SpanScope::new(spans.clone(), chunk_ctx);
            let hedge_scope = chunk_scope.clone();
            let outcome = retry.run_spanned(i as u64, deadline, now, &chunk_scope, |_, at| {
                let mut primary = None;
                for _ in 0..peer_order.len() {
                    let pid = peer_order[cursor % peer_order.len()];
                    cursor += 1;
                    if !breakers.allow(pid.0, at) {
                        continue;
                    }
                    // Per-peer admission: a peer at its rate or
                    // concurrency cap is rotated past, not queued on.
                    if admission.try_admit(pid.0, at).is_err() {
                        continue;
                    }
                    primary = Some(pid);
                    break;
                }
                let Some(p) = primary else {
                    // No admitted peer this attempt (all circuits open,
                    // all caps hit, or none recruited) — let the retry
                    // policy decide whether a breaker half-opens or a
                    // bucket refills before giving up.
                    return Err(());
                };
                let body_p = peers
                    .get_mut(&p)
                    .and_then(|peer| peer.serve(&host, path, origin));
                let Some(body) = body_p else {
                    breakers.record(p.0, at, false);
                    admission.complete(p.0, true);
                    return Err(());
                };
                breakers.record(p.0, at, true);
                admission.complete(p.0, false);
                let lat_p = latency_of(p);
                let trigger = hedge.trigger();
                let mut elapsed = lat_p;
                let mut winner = p;
                let mut chunk = slice_range(&body, range);
                // The primary would outlive the p99 trigger: launch a
                // hedged copy against the next admitted peer and keep
                // whichever completes first, charging the loser's bytes
                // as hedge waste.
                let mut fired_this_attempt = false;
                // The hedge is a load amplifier: before firing, check
                // the saturation this fetcher can see locally (breaker
                // trips + admission pressure) on top of any attached
                // shared signal — a saturated neighborhood gets no
                // second requests.
                let local_sat = breakers.saturation(at).max(admission.saturation(at));
                if lat_p >= trigger && hedge.allow_fire(local_sat) {
                    let mut secondary = None;
                    for _ in 0..peer_order.len() {
                        let pid = peer_order[cursor % peer_order.len()];
                        cursor += 1;
                        if pid != p
                            && breakers.allow(pid.0, at)
                            && admission.try_admit(pid.0, at).is_ok()
                        {
                            secondary = Some(pid);
                            break;
                        }
                    }
                    if let Some(s) = secondary {
                        hedged = true;
                        fired_this_attempt = true;
                        let body_s = peers
                            .get_mut(&s)
                            .and_then(|peer| peer.serve(&host, path, origin));
                        match body_s {
                            Some(bs) => {
                                breakers.record(s.0, at, true);
                                admission.complete(s.0, false);
                                let completion_s = trigger + latency_of(s);
                                if completion_s < elapsed {
                                    hedge.account_fired(range.len());
                                    elapsed = completion_s;
                                    winner = s;
                                    chunk = slice_range(&bs, range);
                                } else {
                                    hedge.account_fired(range.len());
                                }
                            }
                            None => {
                                breakers.record(s.0, at, false);
                                admission.complete(s.0, true);
                                hedge.account_fired(0);
                            }
                        }
                    }
                }
                if fired_this_attempt {
                    // The hedged copy ran from the trigger point to the
                    // chunk's resolution (elapsed >= trigger on every
                    // hedged path).
                    hedge_scope.record(
                        "nocdn",
                        "hedge",
                        (at + trigger).as_nanos() / 1_000,
                        (at + elapsed.max(trigger)).as_nanos() / 1_000,
                    );
                }
                hedge.record(elapsed);
                Ok((winner, chunk, elapsed))
            });
            if hedged {
                report.hedged_chunks += 1;
            }
            match outcome.result {
                Ok((src, chunk, elapsed)) => {
                    *now += elapsed;
                    spans.record(
                        &chunk_ctx,
                        "nocdn",
                        "transfer",
                        chunk_start_us,
                        now.as_nanos() / 1_000,
                    );
                    let m = hpop_obs::metrics();
                    m.counter("nocdn.chunks.from_peer").incr();
                    m.histogram("nocdn.chunk.bytes").record(chunk.len() as u64);
                    assembled.extend_from_slice(&chunk);
                    sources.push((*range, Some(src)));
                }
                Err(_) => {
                    // Origin fallback: never a failed page.
                    spans.record(
                        &chunk_ctx,
                        "nocdn",
                        "origin_fallback",
                        chunk_start_us,
                        now.as_nanos() / 1_000,
                    );
                    let full = origin.fetch_object(path).expect("checked above");
                    let c = slice_range(&full, range);
                    let m = hpop_obs::metrics();
                    m.counter("nocdn.chunks.from_origin").incr();
                    m.histogram("nocdn.chunk.bytes").record(c.len() as u64);
                    assembled.extend_from_slice(&c);
                    sources.push((*range, None));
                    report.fallback_chunks += 1;
                }
            }
        }

        // Whole-object verification over the multi-peer reassembly —
        // the only check that catches cross-chunk corruption. Verify
        // is instantaneous in sim time, so its span is zero-width: it
        // marks *where* verification sat on the request path without
        // inventing latency the simulation never charged.
        let verify_us = now.as_nanos() / 1_000;
        spans.record_child(&root_ctx, "nocdn", "verify", verify_us, verify_us);
        let whole_ok = Sha256::digest(&assembled).ct_eq(expected);
        event!(
            hpop_obs::tracer(),
            0,
            "nocdn",
            "chunk.verify",
            path = path,
            ok = whole_ok,
            chunks = sources.len() as u64
        );
        if whole_ok {
            hpop_obs::metrics().counter("nocdn.verify.ok").incr();
            for (range, src) in &sources {
                if let Some(p) = src {
                    *report.bytes_per_peer.entry(p.0).or_default() += range.len();
                }
            }
            report.verified = true;
            spans.record(
                &root_ctx,
                "nocdn",
                "request",
                fetch_start_us,
                now.as_nanos() / 1_000,
            );
            return (report, Bytes::from(assembled));
        }

        hpop_obs::metrics().counter("nocdn.verify.failed").incr();
        let authentic = origin.fetch_object(path).expect("checked above");
        let mut repaired = Vec::with_capacity(total as usize);
        for (range, src) in &sources {
            let start = range.start as usize;
            let end = (range.end + 1) as usize;
            let truth = &authentic[start..end];
            if assembled.get(start..end) == Some(truth) {
                if let Some(p) = src {
                    *report.bytes_per_peer.entry(p.0).or_default() += range.len();
                }
            } else {
                hpop_obs::metrics().counter("nocdn.chunks.repaired").incr();
                if let Some(p) = src {
                    breakers.record(p.0, *now, false);
                    if !report.corrupt_peers.contains(&p.0) {
                        report.corrupt_peers.push(p.0);
                    }
                }
                report.fallback_chunks += 1;
            }
            repaired.extend_from_slice(truth);
        }
        // Final whole-object re-verify after repair: the page is served
        // only if this passes (it must — the chunks are origin truth).
        report.verified = Sha256::digest(&repaired).ct_eq(expected);
        spans.record(
            &root_ctx,
            "nocdn",
            "request",
            fetch_start_us,
            now.as_nanos() / 1_000,
        );
        (report, Bytes::from(repaired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerBehavior;

    fn setup(behaviors: &[PeerBehavior]) -> (ContentProvider, BTreeMap<PeerId, NoCdnPeer>, Digest) {
        let mut origin = ContentProvider::new("cdn.example");
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let digest = Sha256::digest(&body);
        origin.put_object("/big.bin", body);
        let peers = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    PeerId(i as u32),
                    NoCdnPeer::with_behavior(PeerId(i as u32), b),
                )
            })
            .collect();
        (origin, peers, digest)
    }

    fn order(n: u32) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    #[test]
    fn spreads_load_across_peers() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest; 4]);
        let (report, body) =
            fetch_chunked("/big.bin", 8, &digest, &order(4), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert_eq!(report.bytes_per_peer.len(), 4);
        // Each peer served ~2 chunks = ~25 KB.
        for (&p, &b) in &report.bytes_per_peer {
            assert!((20_000..30_000).contains(&b), "peer {p} served {b}");
        }
    }

    #[test]
    fn one_corrupting_peer_costs_only_its_chunks() {
        let (mut origin, mut peers, digest) = setup(&[
            PeerBehavior::Honest,
            PeerBehavior::CorruptsContent,
            PeerBehavior::Honest,
            PeerBehavior::Honest,
        ]);
        let (report, body) =
            fetch_chunked("/big.bin", 8, &digest, &order(4), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        // Peer 1's chunks were repaired; it earned nothing.
        assert!(!report.bytes_per_peer.contains_key(&1));
        // Honest peers were still credited for their verified chunks.
        assert_eq!(report.bytes_per_peer.len(), 3);
        // Only the corrupted chunks fell back.
        assert_eq!(report.fallback_chunks, 2);
    }

    #[test]
    fn unresponsive_peer_only_delays_its_chunks() {
        let (mut origin, mut peers, digest) =
            setup(&[PeerBehavior::Honest, PeerBehavior::Unresponsive]);
        let (report, body) =
            fetch_chunked("/big.bin", 4, &digest, &order(2), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert_eq!(report.fallback_chunks, 2);
        assert_eq!(report.bytes_per_peer.len(), 1);
    }

    #[test]
    fn whole_object_path_matches_chunked_result() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest]);
        let (_, body) = fetch_chunked("/big.bin", 1, &digest, &order(1), &mut peers, &mut origin);
        assert_eq!(&body[..], &origin.peek_object("/big.bin").unwrap()[..]);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_peer_order_panics() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest]);
        fetch_chunked("/big.bin", 4, &digest, &[], &mut peers, &mut origin);
    }

    #[test]
    fn truncating_peer_repaired_not_panicking() {
        let (mut origin, mut peers, digest) =
            setup(&[PeerBehavior::Honest, PeerBehavior::Truncates]);
        let (report, body) =
            fetch_chunked("/big.bin", 4, &digest, &order(2), &mut peers, &mut origin);
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert!(report.corrupt_peers.contains(&1));
    }

    // --- ResilientFetcher ---

    fn flat_latency(_: PeerId) -> SimDuration {
        SimDuration::from_millis(1)
    }

    fn resilient() -> ResilientFetcher {
        ResilientFetcher::default()
    }

    #[test]
    fn resilient_retries_around_unresponsive_peer_without_origin() {
        let (mut origin, mut peers, digest) = setup(&[
            PeerBehavior::Honest,
            PeerBehavior::Unresponsive,
            PeerBehavior::Honest,
            PeerBehavior::Honest,
        ]);
        let mut f = resilient();
        let mut now = SimTime::ZERO;
        let (report, body) = f.fetch(
            "/big.bin",
            8,
            &digest,
            &order(4),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        // The dead peer's chunks were *retried against other peers*,
        // not surrendered to the origin.
        assert_eq!(report.fallback_chunks, 0);
        assert!(!report.bytes_per_peer.contains_key(&1));
        // Retrying cost simulated backoff time.
        assert!(now > SimTime::ZERO);
    }

    #[test]
    fn resilient_breaker_opens_on_repeat_offender() {
        let (mut origin, mut peers, digest) = setup(&[
            PeerBehavior::Honest,
            PeerBehavior::Unresponsive,
            PeerBehavior::Honest,
        ]);
        let mut f = resilient();
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            let (report, _) = f.fetch(
                "/big.bin",
                6,
                &digest,
                &order(3),
                &mut peers,
                &mut origin,
                Deadline::UNBOUNDED,
                &mut now,
                &flat_latency,
            );
            assert!(report.verified);
        }
        use hpop_resilience::BreakerState;
        assert_ne!(f.breakers.state(1, now), BreakerState::Closed);
    }

    #[test]
    fn resilient_corrupt_peer_feeds_breaker_and_report() {
        let (mut origin, mut peers, digest) = setup(&[
            PeerBehavior::Honest,
            PeerBehavior::CorruptsContent,
            PeerBehavior::Honest,
            PeerBehavior::Honest,
        ]);
        let mut f = ResilientFetcher::new(
            hpop_resilience::BreakerConfig {
                failure_threshold: 2,
                open_for: SimDuration::from_secs(30),
            },
            HedgeConfig::default(),
            RetryPolicy::default(),
        );
        let mut now = SimTime::ZERO;
        let (report, body) = f.fetch(
            "/big.bin",
            8,
            &digest,
            &order(4),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(report.verified, "page must never fail");
        assert_eq!(body.len(), 100_000);
        assert_eq!(report.corrupt_peers, vec![1]);
        // The corrupt chunks were repaired against the origin and the
        // breaker took both failures — the circuit is now open.
        use hpop_resilience::BreakerState;
        assert_eq!(f.breakers.state(1, now), BreakerState::Open);
        // The next fetch routes nothing through the tripped peer.
        let (r2, _) = f.fetch(
            "/big.bin",
            8,
            &digest,
            &order(4),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(r2.verified);
        assert!(r2.corrupt_peers.is_empty());
        assert!(!r2.bytes_per_peer.contains_key(&1));
    }

    #[test]
    fn resilient_hedges_slow_peer() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest; 3]);
        let mut f = resilient();
        // Peer 0 serves at a crawl (beyond the cold 500 ms trigger);
        // the others are fast.
        let latency = |p: PeerId| {
            if p.0 == 0 {
                SimDuration::from_secs(5)
            } else {
                SimDuration::from_millis(2)
            }
        };
        let mut now = SimTime::ZERO;
        let (report, body) = f.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &latency,
        );
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert!(report.hedged_chunks >= 1, "{report:?}");
        // The hedge capped the slow peer's chunk latency: total elapsed
        // is far below 2 chunks x 5 s.
        assert!(now < SimTime::from_secs(5));
    }

    #[test]
    fn hedged_load_stays_flat_during_burst() {
        // Regression for hedging amplification: with the saturation
        // gate engaged, a burst of slow fetches must not fire a single
        // hedge — the second-request load stays flat at zero instead
        // of doubling exactly when the system can least afford it.
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest; 3]);
        let slow = |_: PeerId| SimDuration::from_secs(5); // >> cold trigger
        let sig = SaturationSignal::new();
        let mut f = resilient();
        f.attach_saturation(sig.clone());

        // Idle system: the slow peers are hedged as usual.
        let mut now = SimTime::ZERO;
        let (idle, _) = f.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &slow,
        );
        assert!(idle.hedged_chunks >= 1, "{idle:?}");

        // Flash crowd: the overload controller publishes saturation.
        sig.publish(0.95);
        let mut hedged_during_burst = 0;
        for _ in 0..5 {
            let (r, body) = f.fetch(
                "/big.bin",
                6,
                &digest,
                &order(3),
                &mut peers,
                &mut origin,
                Deadline::UNBOUNDED,
                &mut now,
                &slow,
            );
            assert!(r.verified);
            assert_eq!(body.len(), 100_000);
            hedged_during_burst += r.hedged_chunks;
        }
        assert_eq!(hedged_during_burst, 0, "hedges fired into a burst");

        // Recovery: hedging resumes.
        sig.publish(0.1);
        let (after, _) = f.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &slow,
        );
        assert!(after.hedged_chunks >= 1, "{after:?}");
    }

    #[test]
    fn admission_caps_rotate_past_saturated_peer() {
        use hpop_resilience::AdmissionConfig;
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest; 3]);
        // Peer buckets: 2-token burst, glacial refill — after two
        // serves a peer is rate-capped and must be rotated past.
        let mut f = ResilientFetcher::with_admission(
            hpop_resilience::BreakerConfig::default(),
            AdmissionConfig {
                rate_per_sec: 0.1,
                burst: 2.0,
                ..AdmissionConfig::default()
            },
            HedgeConfig::default(),
            RetryPolicy::default(),
        );
        let mut now = SimTime::ZERO;
        let (report, body) = f.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        // 6 chunks across 3 peers with a per-peer burst of 2: every
        // peer served at most 2 chunks, nobody was hammered past its
        // cap.
        assert_eq!(report.fallback_chunks, 0);
        assert_eq!(report.bytes_per_peer.len(), 3);
        let max_chunk = 100_000u64.div_ceil(6) + 6;
        for (&p, &b) in &report.bytes_per_peer {
            assert!(b <= 2 * max_chunk, "peer {p} over its 2-chunk cap: {b}");
        }
    }

    #[test]
    fn resilient_empty_peer_order_is_all_origin_not_panic() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest]);
        let mut f = resilient();
        let mut now = SimTime::ZERO;
        let (report, body) = f.fetch(
            "/big.bin",
            4,
            &digest,
            &[],
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert_eq!(report.fallback_chunks, 4);
    }

    #[test]
    fn resilient_fetch_emits_well_formed_span_tree() {
        let (mut origin, mut peers, digest) = setup(&[
            PeerBehavior::Honest,
            PeerBehavior::Unresponsive,
            PeerBehavior::Honest,
        ]);
        let mut f = resilient();
        let tracer = SpanTracer::new(1024);
        tracer.enable();
        f.spans = tracer.clone();
        let mut now = SimTime::ZERO;
        let (report, _) = f.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(report.verified);
        let (trees, malformed) = hpop_obs::build_traces(&tracer.take());
        assert_eq!(malformed, 0);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.root().stage, "request");
        // The whole fetch latency is attributed across stages exactly.
        let attrib = tree.attribution();
        let sum: u64 = attrib.values().sum();
        assert_eq!(sum, tree.duration_us());
        assert!(attrib.contains_key("transfer"), "{attrib:?}");
        // The dead peer forced backoff pauses, so retry time shows up.
        assert!(attrib.get("retry").copied().unwrap_or(0) > 0, "{attrib:?}");
        // Stage labels are drawn from the documented vocabulary.
        for stage in attrib.keys() {
            assert!(
                [
                    "request",
                    "transfer",
                    "retry",
                    "hedge",
                    "verify",
                    "origin_fallback"
                ]
                .contains(&stage.as_str()),
                "unexpected stage {stage}"
            );
        }
        // A disabled tracer records nothing for the same fetch.
        let mut quiet = resilient();
        let silent = SpanTracer::new(1024);
        quiet.spans = silent.clone();
        let mut now2 = SimTime::ZERO;
        quiet.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now2,
            &flat_latency,
        );
        assert!(silent.take().is_empty());
    }

    #[test]
    fn resilient_hedged_fetch_nests_hedge_spans() {
        let (mut origin, mut peers, digest) = setup(&[PeerBehavior::Honest; 3]);
        let mut f = resilient();
        let tracer = SpanTracer::new(1024);
        tracer.enable();
        f.spans = tracer.clone();
        let latency = |p: PeerId| {
            if p.0 == 0 {
                SimDuration::from_secs(5)
            } else {
                SimDuration::from_millis(2)
            }
        };
        let mut now = SimTime::ZERO;
        let (report, _) = f.fetch(
            "/big.bin",
            6,
            &digest,
            &order(3),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &latency,
        );
        assert!(report.hedged_chunks >= 1);
        let (trees, malformed) = hpop_obs::build_traces(&tracer.take());
        assert_eq!(malformed, 0, "hedge spans must nest inside their chunk");
        let attrib = trees[0].attribution();
        assert!(attrib.get("hedge").copied().unwrap_or(0) > 0, "{attrib:?}");
    }

    #[test]
    fn resilient_truncating_peer_detected_and_repaired() {
        let (mut origin, mut peers, digest) =
            setup(&[PeerBehavior::Honest, PeerBehavior::Truncates]);
        let mut f = resilient();
        let mut now = SimTime::ZERO;
        let (report, body) = f.fetch(
            "/big.bin",
            4,
            &digest,
            &order(2),
            &mut peers,
            &mut origin,
            Deadline::UNBOUNDED,
            &mut now,
            &flat_latency,
        );
        assert!(report.verified);
        assert_eq!(body.len(), 100_000);
        assert!(report.corrupt_peers.contains(&1));
    }
}
