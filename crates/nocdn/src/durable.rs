//! Crash-consistent provider accounting.
//!
//! The accounting state is the payment basis — issuances, the nonce
//! replay registry, and accepted byte counts. If a provider restart
//! forgot the nonce registry, every already-settled record could be
//! replayed for double payment; if it forgot issuances, honest peers'
//! uploads would bounce. [`DurableAccounting`] WAL-logs both mutating
//! paths ([`Accounting::issue`] and [`Accounting::settle`]) so the full
//! anti-fraud state survives power loss.
//!
//! Three properties this module is careful about:
//!
//! - **The master secret never touches stable storage.** `issue` logs
//!   the *derived* short-term key (see
//!   [`crate::accounting::derive_issue_key`]), so the WAL compromise
//!   blast radius is the outstanding short-term keys, not the master.
//! - **Settlement is idempotent across crashes.** An acked settle is
//!   committed, so a client/peer retrying the same record after the
//!   provider recovers gets [`RejectReason::Replay`] and the bytes are
//!   *not* double-credited. A settle that was in flight (never acked)
//!   when power failed is absent after recovery, and the retry then
//!   settles normally — exactly the at-most-once contract the paper's
//!   nonce scheme promises.
//! - **Puzzle verdicts replay without the object store.** The
//!   accountability-puzzle proof is verified *before* the settle is
//!   logged, and the verdict byte is part of the logged op — recovery
//!   re-applies the verdict deterministically instead of needing the
//!   authentic object bytes (which live outside the WAL) again.

use crate::accounting::{Accounting, PuzzleCheck, RejectReason, UsageRecord};
use crate::peer::PeerId;
use crate::puzzle::PuzzleSpec;
use bytes::Bytes;
use hpop_crypto::hmac::HmacTag;
use hpop_crypto::nonce::{Nonce, NonceRegistry};
use hpop_crypto::puzzle::PuzzleProof;
use hpop_durability::codec::{ByteReader, ByteWriter};
use hpop_durability::{DurabilityConfig, Durable, Persistent, RecoveryReport};
use hpop_netsim::storage::{DiskError, SimDisk};
use std::collections::BTreeMap;

fn reject_to_u8(r: RejectReason) -> u8 {
    match r {
        RejectReason::BadSignature => 0,
        RejectReason::Replay => 1,
        RejectReason::ExceedsIssuedWork => 2,
        RejectReason::UnknownIssuance => 3,
        RejectReason::UnbackedServe => 4,
    }
}

fn reject_from_u8(v: u8) -> Option<RejectReason> {
    match v {
        0 => Some(RejectReason::BadSignature),
        1 => Some(RejectReason::Replay),
        2 => Some(RejectReason::ExceedsIssuedWork),
        3 => Some(RejectReason::UnknownIssuance),
        4 => Some(RejectReason::UnbackedServe),
        _ => None,
    }
}

fn check_to_u8(c: PuzzleCheck) -> u8 {
    match c {
        PuzzleCheck::NotRequired => 0,
        PuzzleCheck::Verified => 1,
        PuzzleCheck::Unbacked => 2,
    }
}

fn check_from_u8(v: u8) -> Option<PuzzleCheck> {
    match v {
        0 => Some(PuzzleCheck::NotRequired),
        1 => Some(PuzzleCheck::Verified),
        2 => Some(PuzzleCheck::Unbacked),
        _ => None,
    }
}

fn encode_proof(w: &mut ByteWriter, proof: Option<&PuzzleProof>) {
    match proof {
        None => {
            w.u8(0);
        }
        Some(p) => {
            w.u8(1).bytes(&p.tag).u64(p.checkpoints.len() as u64);
            for cp in &p.checkpoints {
                w.bytes(cp);
            }
        }
    }
}

fn decode_proof(r: &mut ByteReader) -> Option<Option<PuzzleProof>> {
    match r.u8()? {
        0 => Some(None),
        1 => {
            let tag: [u8; 32] = r.bytes()?.try_into().ok()?;
            let n = r.u64()?;
            let mut checkpoints = Vec::with_capacity(n.min(1 << 16) as usize);
            for _ in 0..n {
                let cp: [u8; 32] = r.bytes()?.try_into().ok()?;
                checkpoints.push(cp);
            }
            Some(Some(PuzzleProof { tag, checkpoints }))
        }
        _ => None,
    }
}

/// One logged accounting mutation.
#[derive(Clone, Debug)]
enum AcctOp {
    /// An issuance with its already-derived short-term key and the
    /// object paths mapped to the peer.
    Issue {
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        objects: Vec<String>,
        key: [u8; 32],
    },
    /// One uploaded usage record, tag, proof, and the puzzle verdict
    /// computed *before* logging (so replay needs no object store).
    Settle { record: UsageRecord, verdict: u8 },
}

impl AcctOp {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            AcctOp::Issue {
                client,
                peer,
                max_bytes,
                objects,
                key,
            } => {
                w.u8(1).u64(*client).u32(peer.0).u64(*max_bytes);
                w.u64(objects.len() as u64);
                for path in objects {
                    w.str(path);
                }
                w.bytes(key);
            }
            AcctOp::Settle { record, verdict } => {
                w.u8(2)
                    .u32(record.peer.0)
                    .u64(record.client)
                    .u64(record.bytes)
                    .u32(record.objects)
                    .u128(record.nonce.0)
                    .u8(*verdict);
                encode_proof(&mut w, record.proof.as_ref());
                w.bytes(&record.tag().0);
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<AcctOp> {
        let mut r = ByteReader::new(bytes);
        let op = match r.u8()? {
            1 => {
                let client = r.u64()?;
                let peer = PeerId(r.u32()?);
                let max_bytes = r.u64()?;
                let n = r.u64()?;
                let mut objects = Vec::with_capacity(n.min(1 << 16) as usize);
                for _ in 0..n {
                    objects.push(r.str()?);
                }
                let key: [u8; 32] = r.bytes()?.try_into().ok()?;
                AcctOp::Issue {
                    client,
                    peer,
                    max_bytes,
                    objects,
                    key,
                }
            }
            2 => {
                let peer = PeerId(r.u32()?);
                let client = r.u64()?;
                let bytes_served = r.u64()?;
                let objects = r.u32()?;
                let nonce = Nonce(r.u128()?);
                let verdict = r.u8()?;
                check_from_u8(verdict)?;
                let proof = decode_proof(&mut r)?;
                let tag: [u8; 32] = r.bytes()?.try_into().ok()?;
                AcctOp::Settle {
                    record: UsageRecord::from_parts(
                        peer,
                        client,
                        bytes_served,
                        objects,
                        nonce,
                        proof,
                        HmacTag(tag),
                    ),
                    verdict,
                }
            }
            _ => return None,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(op)
    }
}

/// Accounting state plus the transient outcome of the last applied op
/// (excluded from the snapshot encoding — it is call plumbing, not
/// state).
#[derive(Debug)]
pub struct AcctState {
    acct: Accounting,
    last_settle: Option<Result<(), RejectReason>>,
}

impl Durable for AcctState {
    fn fresh() -> AcctState {
        AcctState {
            acct: Accounting::new(),
            last_settle: None,
        }
    }

    fn encode_state(&self) -> Vec<u8> {
        let (issuances, nonces, accepted, issued_count, rejections) = self.acct.snapshot_parts();
        let mut w = ByteWriter::new();
        w.u64(issuances.len() as u64);
        for ((client, peer), iss) in issuances {
            w.u64(*client).u32(*peer).u64(iss.max_bytes);
            w.u64(iss.objects.len() as u64);
            for path in &iss.objects {
                w.str(path);
            }
            w.bytes(&iss.key);
        }
        // Nonce registry: capacity sentinel (u64::MAX = unbounded),
        // rejected count, then entries in the registry's deterministic
        // order.
        let entries = nonces.entries();
        w.u64(nonces.capacity().map_or(u64::MAX, |c| c as u64))
            .u64(nonces.rejected())
            .u64(entries.len() as u64);
        for (scope, nonce) in &entries {
            w.str(scope).u128(nonce.0);
        }
        w.u64(accepted.len() as u64);
        for (peer, bytes) in accepted {
            w.u32(peer.0).u64(*bytes);
        }
        w.u64(issued_count.len() as u64);
        for (peer, n) in issued_count {
            w.u32(peer.0).u64(*n);
        }
        w.u64(rejections.len() as u64);
        for (peer, reason) in rejections {
            w.u32(peer.0).u8(reject_to_u8(*reason));
        }
        w.into_bytes()
    }

    fn decode_state(bytes: &[u8]) -> Option<AcctState> {
        let mut r = ByteReader::new(bytes);
        let n_iss = r.u64()?;
        let mut issuances = BTreeMap::new();
        for _ in 0..n_iss {
            let client = r.u64()?;
            let peer = r.u32()?;
            let max_bytes = r.u64()?;
            let n_obj = r.u64()?;
            let mut objects = Vec::with_capacity(n_obj.min(1 << 16) as usize);
            for _ in 0..n_obj {
                objects.push(r.str()?);
            }
            let key: [u8; 32] = r.bytes()?.try_into().ok()?;
            issuances.insert(
                (client, peer),
                crate::accounting::Issuance {
                    key,
                    max_bytes,
                    objects,
                },
            );
        }
        let capacity = match r.u64()? {
            u64::MAX => None,
            c => Some(c as usize),
        };
        let rejected = r.u64()?;
        let n_entries = r.u64()?;
        let mut entries = Vec::with_capacity(n_entries.min(1 << 20) as usize);
        for _ in 0..n_entries {
            entries.push((r.str()?, Nonce(r.u128()?)));
        }
        let nonces = NonceRegistry::restore(capacity, rejected, &entries);
        let n_accepted = r.u64()?;
        let mut accepted = BTreeMap::new();
        for _ in 0..n_accepted {
            let peer = PeerId(r.u32()?);
            accepted.insert(peer, r.u64()?);
        }
        let n_counts = r.u64()?;
        let mut issued_count = BTreeMap::new();
        for _ in 0..n_counts {
            let peer = PeerId(r.u32()?);
            issued_count.insert(peer, r.u64()?);
        }
        let n_rej = r.u64()?;
        let mut rejections = Vec::with_capacity(n_rej.min(1 << 20) as usize);
        for _ in 0..n_rej {
            let peer = PeerId(r.u32()?);
            rejections.push((peer, reject_from_u8(r.u8()?)?));
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(AcctState {
            acct: Accounting::restore(issuances, nonces, accepted, issued_count, rejections),
            last_settle: None,
        })
    }

    fn apply(&mut self, op: &[u8]) {
        match AcctOp::decode(op) {
            Some(AcctOp::Issue {
                client,
                peer,
                max_bytes,
                objects,
                key,
            }) => {
                self.acct.apply_issue(client, peer, max_bytes, objects, key);
            }
            Some(AcctOp::Settle { record, verdict }) => {
                let check = check_from_u8(verdict).expect("decode validated the verdict");
                self.last_settle = Some(self.acct.settle_checked(&record, check));
            }
            None => {}
        }
    }
}

/// Crash-consistent provider-side accounting: issuances and settlements
/// are durable before they are acknowledged, so the nonce registry —
/// the replay defense — survives restarts.
#[derive(Debug)]
pub struct DurableAccounting {
    inner: Persistent<AcctState>,
    /// The accountability-puzzle policy. Provider configuration, not
    /// payment state: re-set after every open, like the master secret.
    puzzle: Option<PuzzleSpec>,
}

impl DurableAccounting {
    /// Opens (recovers or initializes) accounting state under `dir`.
    pub fn open(disk: SimDisk, dir: &str, cfg: DurabilityConfig) -> Result<Self, DiskError> {
        Ok(DurableAccounting {
            inner: Persistent::open(disk, dir, cfg)?,
            puzzle: None,
        })
    }

    /// Turns the accountability-puzzle defense on for subsequent
    /// settlements. Configuration, not logged state — call it again
    /// after each open (recovery replays logged *verdicts*, so past
    /// settlements do not depend on this being set).
    pub fn set_puzzle(&mut self, spec: PuzzleSpec) {
        self.puzzle = Some(spec);
    }

    /// Durable [`Accounting::issue`]: derives the short-term key, logs
    /// the issuance (key included, master excluded), applies it, and
    /// returns the key to embed in the wrapper page.
    pub fn issue(
        &mut self,
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        master: &[u8; 32],
    ) -> Result<[u8; 32], DiskError> {
        self.issue_with_objects(client, peer, max_bytes, &[], master)
    }

    /// [`DurableAccounting::issue`] recording the object paths mapped
    /// to the peer, so puzzle proofs can be verified at settle time.
    pub fn issue_with_objects(
        &mut self,
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        objects: &[String],
        master: &[u8; 32],
    ) -> Result<[u8; 32], DiskError> {
        let key = crate::accounting::derive_issue_key(master, client, peer, max_bytes);
        self.inner.execute(
            &AcctOp::Issue {
                client,
                peer,
                max_bytes,
                objects: objects.to_vec(),
                key,
            }
            .encode(),
        )?;
        Ok(key)
    }

    /// Durable [`Accounting::settle`]. The inner result is the normal
    /// accept/reject verdict; it is recorded only after the record is
    /// committed, so a crash-retry of an accepted record is rejected as
    /// a [`RejectReason::Replay`] instead of double-crediting. With the
    /// puzzle policy on, this no-resolver form fails closed
    /// ([`RejectReason::UnbackedServe`]) — use
    /// [`DurableAccounting::settle_with`].
    pub fn settle(&mut self, record: &UsageRecord) -> Result<Result<(), RejectReason>, DiskError> {
        self.settle_with(record, |_| None)
    }

    /// Durable [`Accounting::settle_with`]: the puzzle proof is checked
    /// against the authentic bytes *before* the op is logged, and the
    /// verdict travels in the op — so recovery replays deterministically
    /// without the object store.
    pub fn settle_with<F>(
        &mut self,
        record: &UsageRecord,
        resolve: F,
    ) -> Result<Result<(), RejectReason>, DiskError>
    where
        F: FnMut(&str) -> Option<Bytes>,
    {
        let check = match self.puzzle {
            None => PuzzleCheck::NotRequired,
            Some(spec) => self.accounting().check_puzzle(record, &spec, resolve).0,
        };
        self.inner.execute(
            &AcctOp::Settle {
                record: record.clone(),
                verdict: check_to_u8(check),
            }
            .encode(),
        )?;
        Ok(self
            .inner
            .state()
            .last_settle
            .expect("settle apply records an outcome"))
    }

    /// Read-only view of the recovered/live accounting state.
    pub fn accounting(&self) -> &Accounting {
        &self.inner.state().acct
    }

    /// How the last open recovered.
    pub fn last_recovery(&self) -> &RecoveryReport {
        self.inner.last_recovery()
    }

    /// Highest committed op sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.inner.committed_seq()
    }

    /// The underlying device.
    pub fn disk(&self) -> &SimDisk {
        self.inner.disk()
    }

    /// Mutable device access (crash injection in tests).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        self.inner.disk_mut()
    }

    /// Tears down the process, keeping the platters.
    pub fn into_disk(self) -> SimDisk {
        self.inner.into_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_crypto::puzzle::{self, PuzzleParams};
    use hpop_durability::crash_matrix;

    const MASTER: [u8; 32] = [42u8; 32];

    fn cfg() -> DurabilityConfig {
        DurabilityConfig {
            max_segment_bytes: 512,
            snapshot_every_ops: 4,
            keep_snapshots: 2,
        }
    }

    #[test]
    fn issue_and_settle_survive_restart() {
        let mut acct = DurableAccounting::open(SimDisk::new(7), "acct", cfg()).unwrap();
        let key = acct.issue(1, PeerId(5), 1000, &MASTER).unwrap();
        let r = UsageRecord::sign(&key, PeerId(5), 1, 800, 3, Nonce(77));
        assert_eq!(acct.settle(&r).unwrap(), Ok(()));

        let mut disk = acct.into_disk();
        disk.restart();
        let acct = DurableAccounting::open(disk, "acct", cfg()).unwrap();
        assert_eq!(acct.accounting().payable_bytes(PeerId(5)), 800);
        assert!(acct.accounting().rejections().is_empty());
    }

    /// Satellite regression: a record settled *and acked* before the
    /// crash must be rejected as a replay when re-uploaded after
    /// recovery — never double-credited.
    #[test]
    fn double_settle_across_crash_is_rejected() {
        let mut acct = DurableAccounting::open(SimDisk::new(8), "acct", cfg()).unwrap();
        let key = acct.issue(1, PeerId(5), 1000, &MASTER).unwrap();
        let r = UsageRecord::sign(&key, PeerId(5), 1, 800, 3, Nonce(77));
        assert_eq!(acct.settle(&r).unwrap(), Ok(()));

        let mut disk = acct.into_disk();
        disk.restart();
        let mut acct = DurableAccounting::open(disk, "acct", cfg()).unwrap();
        // The peer re-uploads the identical record after the outage.
        assert_eq!(acct.settle(&r).unwrap(), Err(RejectReason::Replay));
        assert_eq!(acct.accounting().payable_bytes(PeerId(5)), 800);
    }

    /// Satellite: a nonce issued before the crash and first settled
    /// *after* recovery settles normally — issuance durability means
    /// recovery doesn't orphan outstanding work.
    #[test]
    fn nonce_issued_pre_crash_settles_post_recovery() {
        let mut acct = DurableAccounting::open(SimDisk::new(9), "acct", cfg()).unwrap();
        let key = acct.issue(2, PeerId(6), 2000, &MASTER).unwrap();

        // Power fails during the settle's WAL append: the settle is not
        // acked and must be absent after recovery.
        let r = UsageRecord::sign(&key, PeerId(6), 2, 1500, 4, Nonce(99));
        let crash_at = acct.disk().steps() + 1;
        acct.disk_mut().arm_crash(crash_at);
        assert!(acct.settle(&r).is_err());

        let mut disk = acct.into_disk();
        disk.restart();
        let mut acct = DurableAccounting::open(disk, "acct", cfg()).unwrap();
        assert_eq!(acct.accounting().payable_bytes(PeerId(6)), 0);
        // The retry settles exactly once.
        assert_eq!(acct.settle(&r).unwrap(), Ok(()));
        assert_eq!(acct.settle(&r).unwrap(), Err(RejectReason::Replay));
        assert_eq!(acct.accounting().payable_bytes(PeerId(6)), 1500);
    }

    /// Puzzle-backed settlement survives restart, and its verdict
    /// replays deterministically *without* the resolver — the verdict
    /// travels in the WAL op.
    #[test]
    fn puzzle_verdict_replays_without_resolver() {
        let spec = PuzzleSpec::for_epoch(&MASTER, 1, PuzzleParams::default());
        let body = Bytes::from(vec![9u8; 10_000]);
        let paths = vec!["/a.bin".to_owned()];

        let mut acct = DurableAccounting::open(SimDisk::new(11), "acct", cfg()).unwrap();
        acct.set_puzzle(spec);
        let key = acct
            .issue_with_objects(1, PeerId(5), 10_000, &paths, &MASTER)
            .unwrap();
        let nonce = Nonce(42);
        let challenge = spec.challenge(1, PeerId(5), nonce);
        let (proof, _) = puzzle::solve(&challenge, &body, &spec.params);
        let backed =
            UsageRecord::sign_with_proof(&key, PeerId(5), 1, 10_000, 1, nonce, Some(proof));
        let body2 = body.clone();
        assert_eq!(
            acct.settle_with(&backed, |_| Some(body2.clone())).unwrap(),
            Ok(())
        );
        // A fabricated (proof-less) record from the same issuance.
        let fake = UsageRecord::sign(&key, PeerId(5), 1, 9_000, 1, Nonce(43));
        assert_eq!(
            acct.settle_with(&fake, |_| Some(body.clone())).unwrap(),
            Err(RejectReason::UnbackedServe)
        );

        // Restart WITHOUT re-supplying the resolver or the policy:
        // recovery replays logged verdicts, not live verification.
        let mut disk = acct.into_disk();
        disk.restart();
        let acct = DurableAccounting::open(disk, "acct", cfg()).unwrap();
        assert_eq!(acct.accounting().payable_bytes(PeerId(5)), 10_000);
        assert_eq!(
            acct.accounting().confirmed_offenders(),
            vec![(PeerId(5), 1)]
        );
    }

    /// Exhaustive crash matrix over an issue/settle workload, including
    /// a rejected replay (failed ops replay deterministically too) and
    /// a puzzle-rejected record (verdict byte in the op).
    #[test]
    fn crash_matrix_over_accounting_workload() {
        let mut ops: Vec<Vec<u8>> = Vec::new();
        for i in 0..3u64 {
            let peer = PeerId(i as u32);
            let key = crate::accounting::derive_issue_key(&MASTER, i, peer, 1000);
            ops.push(
                AcctOp::Issue {
                    client: i,
                    peer,
                    max_bytes: 1000,
                    objects: vec![format!("/obj-{i}.bin")],
                    key,
                }
                .encode(),
            );
            let record = UsageRecord::sign(&key, peer, i, 400 + i * 100, 2, Nonce(i as u128));
            let verdict = if i == 2 {
                check_to_u8(PuzzleCheck::Unbacked)
            } else {
                check_to_u8(PuzzleCheck::NotRequired)
            };
            ops.push(
                AcctOp::Settle {
                    record: record.clone(),
                    verdict,
                }
                .encode(),
            );
            if i == 1 {
                // A replay attempt mid-workload.
                ops.push(AcctOp::Settle { record, verdict }.encode());
            }
        }
        let outcome = crash_matrix::<AcctState>(17, cfg(), &ops);
        assert!(outcome.baseline_steps > ops.len() as u64);
        assert!(outcome.torn_tails > 0);
    }
}
