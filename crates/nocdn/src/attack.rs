//! Adversarial accounting campaigns end-to-end (experiment E25).
//!
//! [`hpop_netsim::attacks`] decides *who* colludes and *how much* they
//! fabricate; this module executes the campaign against a real NoCDN
//! provider — wrapper pages, loaders, peers, accounting, and (when the
//! defense is on) the accountability puzzle — and measures what the
//! attacker actually extracted:
//!
//! - **Defense off**: a fabricated record that respects the protocol
//!   (valid short-term key, fresh nonce, claim within issued work) is
//!   indistinguishable from a real one. Sybil clients mint synthetic
//!   page views, steer them at colluding peers, and claim the full
//!   issued bytes with *zero* data moved — payable bytes grow linearly
//!   in Sybil count while attacker work stays ~0.
//! - **Defense on**: every record needs a puzzle proof over the
//!   authentic bytes. The *lazy* attacker (no data work) is rejected
//!   outright and lands on the reputation ledger; the *diligent*
//!   attacker must hold the content and walk it per record, pinning
//!   payable-bytes-per-work to a small constant no matter the Sybil
//!   count — CAPnet's bound, reproduced.
//!
//! Campaign runs are pure functions of their config: seeded role
//! assignment, seeded peer selection, deterministic puzzles.

use crate::accounting::{Accounting, RejectReason};
use crate::loader::PageLoader;
use crate::origin::{ContentProvider, PageSpec};
use crate::peer::{NoCdnPeer, PeerBehavior, PeerId};
use crate::puzzle::PuzzleSpec;
use crate::select::{PeerDirectory, PeerInfo, SelectionPolicy};
use crate::wrapper::WrapperPage;
use crate::UsageRecord;
use hpop_crypto::nonce::Nonce;
use hpop_crypto::puzzle::PuzzleParams;
use hpop_netsim::attacks::{AttackConfig, AttackPlan, CampaignKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Client-id base for colluding (non-Sybil) signing identities; far
/// above honest ids and distinct from the Sybil base.
const COLLUDER_CLIENT_BASE: u64 = 1 << 41;

/// Synthetic page views each Sybil identity mints.
const VIEWS_PER_SYBIL: u64 = 2;

/// One campaign run's parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Recruited peer population.
    pub peers: usize,
    /// Honest clients loading pages (each loads one page).
    pub honest_clients: usize,
    /// Who colludes and how (see [`hpop_netsim::attacks`]).
    pub attack: AttackConfig,
    /// Whether the accountability-puzzle defense is on.
    pub defense_on: bool,
    /// A lazy attacker fabricates without touching data (profitable
    /// only if unbacked records settle); a diligent one fetches the
    /// content and solves every puzzle honestly.
    pub lazy_attacker: bool,
    /// Seed for peer selection and page traffic.
    pub seed: u64,
}

/// What one campaign extracted and what it cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct CampaignOutcome {
    /// Payable bytes credited to honest peers.
    pub honest_payable: u64,
    /// Payable bytes credited to colluding peers (honest serves too).
    pub attacker_payable: u64,
    /// Payable bytes the attacker gained from *fabricated* records.
    pub fabricated_accepted_bytes: u64,
    /// Data bytes colluders actually moved or walked during the attack
    /// (origin fills + puzzle solving) — the attacker's real work.
    pub attacker_data_work: u64,
    /// Fabricated records attempted / accepted / rejected.
    pub fabricated_attempted: u64,
    /// Fabricated records the provider credited.
    pub fabricated_accepted: u64,
    /// Fabricated records the provider rejected.
    pub fabricated_rejected: u64,
    /// Honest-path records rejected (must stay 0: no collateral damage).
    pub honest_false_rejects: u64,
    /// Colluding peers the anomaly detector flagged.
    pub colluders_flagged: usize,
    /// Honest peers the anomaly detector flagged (false accusations).
    pub honest_flagged: usize,
    /// Confirmed (puzzle-rejected) violations fed to the reputation
    /// ledger.
    pub confirmed_violations: u32,
    /// Data bytes the provider spent verifying proofs (defense cost).
    pub provider_verify_bytes: u64,
}

impl CampaignOutcome {
    /// Payable bytes extracted per byte of real attacker work, the
    /// CAPnet headline metric. Work is floored at one byte so the
    /// defense-off "free money" regime shows up as a huge ratio rather
    /// than a division by zero.
    pub fn profit_per_work(&self) -> f64 {
        self.fabricated_accepted_bytes as f64 / self.attacker_data_work.max(1) as f64
    }
}

/// The page every client (real or synthetic) loads.
fn catalog(provider: &mut ContentProvider) {
    provider.put_object("/index.html", vec![b'h'; 2_000]);
    provider.put_object("/app.css", vec![b'c'; 10_000]);
    provider.put_object("/hero.jpg", vec![b'j'; 40_000]);
    provider.put_page(PageSpec {
        container: "/index.html".into(),
        embedded: vec!["/app.css".into(), "/hero.jpg".into()],
    });
}

const PAGE_OBJECTS: [&str; 3] = ["/index.html", "/app.css", "/hero.jpg"];
const PAGE_BYTES: u64 = 52_000;

/// Runs one campaign to completion. Deterministic in `cfg`.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    let master: [u8; 32] = [0x5a; 32];
    let mut provider = ContentProvider::new("news.example");
    catalog(&mut provider);

    let plan = AttackPlan::generate(cfg.peers, cfg.attack);
    let mut peers: BTreeMap<PeerId, NoCdnPeer> = (0..cfg.peers as u32)
        .map(|i| {
            let behavior = if plan.is_colluder(i as usize) {
                PeerBehavior::Colluding
            } else {
                PeerBehavior::Honest
            };
            (PeerId(i), NoCdnPeer::with_behavior(PeerId(i), behavior))
        })
        .collect();
    let mut directory = PeerDirectory::new();
    for i in 0..cfg.peers as u32 {
        directory.recruit(
            PeerId(i),
            PeerInfo {
                rtt_ms: 10.0 + i as f64,
                violations: 0,
            },
        );
    }

    let mut acct = Accounting::new();
    let spec = PuzzleSpec::for_epoch(&master, 1, PuzzleParams::default());
    if cfg.defense_on {
        acct.set_puzzle(spec);
    }

    let objects: Vec<String> = PAGE_OBJECTS.iter().map(|s| s.to_string()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xe25);
    let mut outcome = CampaignOutcome::default();

    // ---- Honest phase: real clients load the page via the directory's
    // randomized assignment (the paper's collusion mitigation).
    for client in 1..=cfg.honest_clients as u64 {
        let assignments = directory.assign(&objects, SelectionPolicy::Random, &mut rng);
        let wrapper = WrapperPage::generate(
            &mut provider,
            "/index.html",
            client,
            &assignments,
            &mut acct,
            &master,
            client == 1,
        );
        let mut loader = PageLoader::new(client);
        let _ = loader.load(&wrapper, &mut peers, &mut provider);
    }
    // Honest settlement: any rejection here is collateral damage.
    let provider_snapshot = provider.clone();
    for peer in peers.values_mut() {
        for record in peer.upload_records() {
            if acct
                .settle_with(&record, |p| provider_snapshot.peek_object(p).cloned())
                .is_err()
            {
                outcome.honest_false_rejects += 1;
            }
        }
    }

    // ---- Attack phase. Colluders' real work so far (serving honest
    // traffic, proving honest serves) is legitimate — snapshot it so
    // the campaign is charged only its own data bytes.
    let work_before: u64 = plan
        .colluders()
        .iter()
        .map(|&n| {
            let p = &peers[&PeerId(n as u32)];
            p.bytes_served + p.puzzle_work_bytes
        })
        .sum();
    let honest_payable_before: BTreeMap<PeerId, u64> = plan
        .colluders()
        .iter()
        .map(|&n| (PeerId(n as u32), acct.payable_bytes(PeerId(n as u32))))
        .collect();

    for &node in plan.colluders() {
        let peer_id = PeerId(node as u32);
        // How many fabricated page-views this colluder mints.
        let real_records = honest_payable_before[&peer_id] / PAGE_BYTES.max(1);
        let signing_clients: Vec<u64> = match plan.campaign() {
            CampaignKind::SybilSwarm { .. } => plan
                .sybil_clients(node)
                .into_iter()
                .flat_map(|c| std::iter::repeat_n(c, VIEWS_PER_SYBIL as usize))
                .collect(),
            _ => (0..plan.fabricated_records(node, real_records.max(1)))
                .map(|k| COLLUDER_CLIENT_BASE + (node as u64) * 100_000 + k)
                .collect(),
        };
        let mut nonce_counter = 0u64;
        for client in signing_clients {
            // The attacker controls its clients, so it shops wrapper
            // requests until the issuance lands on its own peer —
            // modeled as a directed assignment.
            let assignments: BTreeMap<String, PeerId> =
                objects.iter().map(|o| (o.clone(), peer_id)).collect();
            let wrapper = WrapperPage::generate(
                &mut provider,
                "/index.html",
                client,
                &assignments,
                &mut acct,
                &master,
                false,
            );
            let key = wrapper.peer_keys[&peer_id];
            nonce_counter += 1;
            let nonce = Nonce::from_parts(client, nonce_counter);
            outcome.fabricated_attempted += 1;

            // Lazy: sign the full claim, move no bytes. Diligent (only
            // worth it with the defense on): fetch the content once,
            // then walk it for every record's puzzle.
            let proof = if cfg.defense_on && !cfg.lazy_attacker {
                let peer = peers.get_mut(&peer_id).expect("colluder exists");
                for path in &objects {
                    if peer.serve("news.example", path, &mut provider).is_none() {
                        break;
                    }
                }
                let challenge = spec.challenge(client, peer_id, nonce);
                peer.prove_serve("news.example", &objects, &challenge, &spec.params)
            } else {
                None
            };
            let record =
                UsageRecord::sign_with_proof(&key, peer_id, client, PAGE_BYTES, 3, nonce, proof);
            match acct.settle_with(&record, |p| provider_snapshot.peek_object(p).cloned()) {
                Ok(()) => {
                    outcome.fabricated_accepted += 1;
                    outcome.fabricated_accepted_bytes += record.bytes;
                }
                Err(reason) => {
                    outcome.fabricated_rejected += 1;
                    debug_assert!(
                        reason == RejectReason::UnbackedServe,
                        "unexpected rejection {reason:?}"
                    );
                }
            }
        }
    }

    // ---- Measurement.
    let work_after: u64 = plan
        .colluders()
        .iter()
        .map(|&n| {
            let p = &peers[&PeerId(n as u32)];
            p.bytes_served + p.puzzle_work_bytes
        })
        .sum();
    outcome.attacker_data_work = work_after - work_before;
    for i in 0..cfg.peers as u32 {
        let payable = acct.payable_bytes(PeerId(i));
        if plan.is_colluder(i as usize) {
            outcome.attacker_payable += payable;
        } else {
            outcome.honest_payable += payable;
        }
    }
    for flagged in acct.flag_anomalies(3.0) {
        if plan.is_colluder(flagged.0 as usize) {
            outcome.colluders_flagged += 1;
        } else {
            outcome.honest_flagged += 1;
        }
    }
    // Confirmed fabrication is cryptographic evidence: feed it to the
    // fabric reputation ledger so trust-weighted selection shuns the
    // peer in future epochs.
    for (peer, count) in acct.confirmed_offenders() {
        directory.record_accounting_violations(peer, count);
        outcome.confirmed_violations += count;
    }
    outcome.provider_verify_bytes = acct.puzzle_verify_bytes();
    hpop_obs::metrics()
        .counter("nocdn.attack.fabricated_attempted")
        .add(outcome.fabricated_attempted);
    hpop_obs::metrics()
        .counter("nocdn.attack.fabricated_accepted")
        .add(outcome.fabricated_accepted);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(defense_on: bool, lazy: bool) -> CampaignConfig {
        CampaignConfig {
            peers: 20,
            honest_clients: 30,
            attack: AttackConfig::sybil_preset(11),
            defense_on,
            lazy_attacker: lazy,
            seed: 11,
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(&base(true, false));
        let b = run_campaign(&base(true, false));
        assert_eq!(a.attacker_payable, b.attacker_payable);
        assert_eq!(a.attacker_data_work, b.attacker_data_work);
        assert_eq!(a.fabricated_accepted, b.fabricated_accepted);
    }

    #[test]
    fn defense_off_sybils_farm_for_free() {
        let out = run_campaign(&base(false, true));
        assert!(out.fabricated_attempted > 0);
        // Every fabrication settles: the protocol cannot tell.
        assert_eq!(out.fabricated_accepted, out.fabricated_attempted);
        assert_eq!(out.attacker_data_work, 0, "no real work was done");
        assert!(out.profit_per_work() > 1_000.0);
        assert_eq!(out.honest_false_rejects, 0);
    }

    #[test]
    fn defense_on_rejects_lazy_attacker_and_confirms() {
        let out = run_campaign(&base(true, true));
        assert!(out.fabricated_attempted > 0);
        assert_eq!(out.fabricated_accepted, 0, "unbacked records all bounced");
        assert_eq!(out.fabricated_rejected, out.fabricated_attempted);
        assert_eq!(out.confirmed_violations as u64, out.fabricated_rejected);
        assert_eq!(out.honest_false_rejects, 0, "no collateral damage");
    }

    #[test]
    fn defense_on_bounds_diligent_attacker_profit() {
        let out = run_campaign(&base(true, false));
        assert!(out.fabricated_accepted > 0, "diligent records do settle");
        assert!(out.attacker_data_work > 0);
        // CAPnet's bound: payable-per-work pinned to a small constant.
        assert!(
            out.profit_per_work() < 1.5,
            "profit/work {}",
            out.profit_per_work()
        );
        assert_eq!(out.honest_false_rejects, 0);
    }

    #[test]
    fn laundering_campaign_stays_under_detector_but_not_under_puzzle() {
        let cfg = CampaignConfig {
            attack: AttackConfig {
                campaign: CampaignKind::RecordLaundering {
                    fabricated_fraction_bp: 2_000,
                },
                attacker_fraction: 0.25,
                seed: 5,
            },
            ..base(true, true)
        };
        let out = run_campaign(&cfg);
        assert_eq!(out.colluders_flagged, 0, "laundering dodges the detector");
        assert!(out.fabricated_attempted > 0);
        assert_eq!(out.fabricated_accepted, 0, "the puzzle still catches it");
    }
}
