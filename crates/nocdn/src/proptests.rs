//! Property-based tests of NoCDN's end-to-end integrity invariant:
//! whatever the peers do, the loader never assembles a wrong page and
//! never credits unverified bytes.

use crate::accounting::Accounting;
use crate::loader::PageLoader;
use crate::origin::{ContentProvider, PageSpec};
use crate::peer::{NoCdnPeer, PeerBehavior, PeerId};
use crate::wrapper::WrapperPage;
use proptest::prelude::*;
use std::collections::BTreeMap;

const MASTER: [u8; 32] = [42u8; 32];

fn behavior_strategy() -> impl Strategy<Value = PeerBehavior> {
    prop_oneof![
        Just(PeerBehavior::Honest),
        Just(PeerBehavior::CorruptsContent),
        Just(PeerBehavior::Unresponsive),
        (2u32..20).prop_map(PeerBehavior::InflatesUsage),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any mix of peer behaviors and any object→peer assignment, the
    /// loader assembles exactly the authentic page, and accounting never
    /// pays a peer for more than it verifiably served.
    #[test]
    fn loader_integrity_under_arbitrary_adversaries(
        behaviors in proptest::collection::vec(behavior_strategy(), 1..6),
        sizes in proptest::collection::vec(1_000usize..50_000, 1..6),
        assignment_seed in proptest::collection::vec(any::<prop::sample::Index>(), 6),
    ) {
        let mut origin = ContentProvider::new("prop.example");
        origin.put_object("/c.html", vec![b'c'; 5_000]);
        let mut embedded = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            let p = format!("/o{i}.bin");
            origin.put_object(&p, vec![b'a' + (i as u8 % 26); *s]);
            embedded.push(p);
        }
        origin.put_page(PageSpec {
            container: "/c.html".into(),
            embedded: embedded.clone(),
        });
        let authentic_bytes = origin.page_bytes("/c.html").expect("page");

        let mut peers: BTreeMap<PeerId, NoCdnPeer> = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| (PeerId(i as u32), NoCdnPeer::with_behavior(PeerId(i as u32), b)))
            .collect();
        let mut objects = vec!["/c.html".to_owned()];
        objects.extend(embedded);
        let assignments: BTreeMap<String, PeerId> = objects
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let pick = assignment_seed[i % assignment_seed.len()].index(behaviors.len());
                (o.clone(), PeerId(pick as u32))
            })
            .collect();

        let mut acct = Accounting::new();
        let wrapper = WrapperPage::generate(
            &mut origin,
            "/c.html",
            1,
            &assignments,
            &mut acct,
            &MASTER,
            true,
        );
        let mut loader = PageLoader::new(1);
        let (report, page) = loader.load(&wrapper, &mut peers, &mut origin);

        // The page is always complete and authentic-sized.
        prop_assert_eq!(page.len() as u64, authentic_bytes);
        // Every byte is accounted to exactly one source.
        prop_assert_eq!(
            report.total_peer_bytes() + report.bytes_from_origin,
            authentic_bytes
        );

        // Settlement: no peer is ever paid more than its ground truth.
        for (_, peer) in peers.iter_mut() {
            let truth = peer.bytes_served;
            for r in peer.upload_records() {
                let _ = acct.settle(&r);
            }
            prop_assert!(
                acct.payable_bytes(peer.id()) <= truth,
                "peer {:?} paid {} > served {}",
                peer.id(),
                acct.payable_bytes(peer.id()),
                truth
            );
        }
    }
}
