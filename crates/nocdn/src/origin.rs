//! The content provider's origin: object store, page catalog, and the
//! byte counters the offload experiment (E4) reads.

use bytes::Bytes;
use std::collections::BTreeMap;

/// A web page: one container object plus recursively embedded objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSpec {
    /// The container object's path (`"/index.html"`).
    pub container: String,
    /// Embedded object paths (images, scripts, stylesheets …).
    pub embedded: Vec<String>,
}

impl PageSpec {
    /// All object paths of the page, container first.
    pub fn objects(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.container.as_str()).chain(self.embedded.iter().map(String::as_str))
    }

    /// Number of objects (container + embedded).
    pub fn object_count(&self) -> usize {
        1 + self.embedded.len()
    }
}

/// The origin server of one content provider.
#[derive(Clone, Debug)]
pub struct ContentProvider {
    host: String,
    objects: BTreeMap<String, Bytes>,
    pages: BTreeMap<String, PageSpec>,
    /// Bytes served directly by the origin (full objects).
    pub origin_bytes: u64,
    /// Bytes of wrapper pages served (the only mandatory origin traffic
    /// under NoCDN).
    pub wrapper_bytes: u64,
    /// Object fetches answered (cache-fill requests from peers count).
    pub origin_requests: u64,
}

impl ContentProvider {
    /// Creates a provider serving `host`.
    pub fn new(host: impl Into<String>) -> ContentProvider {
        ContentProvider {
            host: host.into(),
            objects: BTreeMap::new(),
            pages: BTreeMap::new(),
            origin_bytes: 0,
            wrapper_bytes: 0,
            origin_requests: 0,
        }
    }

    /// The provider's host name (virtual-hosting key on peers).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Publishes an object.
    pub fn put_object(&mut self, path: impl Into<String>, body: impl Into<Bytes>) {
        self.objects.insert(path.into(), body.into());
    }

    /// Publishes a page (its objects must already exist).
    ///
    /// # Panics
    ///
    /// Panics if any referenced object is missing.
    pub fn put_page(&mut self, page: PageSpec) {
        for o in page.objects() {
            assert!(
                self.objects.contains_key(o),
                "page references missing object {o}"
            );
        }
        self.pages.insert(page.container.clone(), page);
    }

    /// Looks a page up by its container path.
    pub fn page(&self, container: &str) -> Option<&PageSpec> {
        self.pages.get(container)
    }

    /// An object's bytes without counting traffic (hashing, tests).
    pub fn peek_object(&self, path: &str) -> Option<&Bytes> {
        self.objects.get(path)
    }

    /// Serves an object from the origin, counting the traffic. This is
    /// the path peers use for cache fills and loaders use as integrity
    /// fallback.
    pub fn fetch_object(&mut self, path: &str) -> Option<Bytes> {
        let body = self.objects.get(path)?.clone();
        self.origin_requests += 1;
        self.origin_bytes += body.len() as u64;
        Some(body)
    }

    /// Records the service of a wrapper page of `bytes` size.
    pub fn count_wrapper(&mut self, bytes: u64) {
        self.wrapper_bytes += bytes;
    }

    /// Total bytes of all objects of a page (what the origin would have
    /// served without NoCDN).
    pub fn page_bytes(&self, container: &str) -> Option<u64> {
        let page = self.pages.get(container)?;
        Some(
            page.objects()
                .filter_map(|o| self.objects.get(o))
                .map(|b| b.len() as u64)
                .sum(),
        )
    }

    /// Number of published objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider() -> ContentProvider {
        let mut p = ContentProvider::new("news.example");
        p.put_object("/index.html", vec![b'h'; 2_000]);
        p.put_object("/style.css", vec![b'c'; 10_000]);
        p.put_object("/hero.jpg", vec![b'j'; 500_000]);
        p.put_page(PageSpec {
            container: "/index.html".into(),
            embedded: vec!["/style.css".into(), "/hero.jpg".into()],
        });
        p
    }

    #[test]
    fn page_bytes_sum_objects() {
        let p = provider();
        assert_eq!(p.page_bytes("/index.html"), Some(512_000));
        assert_eq!(p.page_bytes("/missing"), None);
        assert_eq!(p.page("/index.html").unwrap().object_count(), 3);
    }

    #[test]
    fn fetch_counts_traffic_but_peek_does_not() {
        let mut p = provider();
        let _ = p.peek_object("/hero.jpg").unwrap();
        assert_eq!(p.origin_bytes, 0);
        let b = p.fetch_object("/hero.jpg").unwrap();
        assert_eq!(b.len(), 500_000);
        assert_eq!(p.origin_bytes, 500_000);
        assert_eq!(p.origin_requests, 1);
        assert!(p.fetch_object("/nope").is_none());
        assert_eq!(p.origin_requests, 1);
    }

    #[test]
    #[should_panic(expected = "missing object")]
    fn pages_must_reference_real_objects() {
        let mut p = ContentProvider::new("h");
        p.put_object("/a", "x");
        p.put_page(PageSpec {
            container: "/a".into(),
            embedded: vec!["/ghost.png".into()],
        });
    }

    #[test]
    fn wrapper_counting() {
        let mut p = provider();
        p.count_wrapper(1_500);
        p.count_wrapper(1_500);
        assert_eq!(p.wrapper_bytes, 3_000);
        assert_eq!(p.object_count(), 3);
    }
}
