//! Provider-side puzzle policy: epoch seeds and challenge binding.
//!
//! CAPnet's defense (PAPERS.md) slots into NoCDN between serving and
//! settlement: before a usage record is *payable*, the serving peer
//! must solve a [cache accountability puzzle](hpop_crypto::puzzle) over
//! the exact bytes the record claims, under a challenge derived from a
//! **provider-issued per-epoch seed** and the record's identity. The
//! seed is published in the wrapper page (clients and peers both need
//! it), rotates per epoch so solutions cannot be stockpiled, and binds
//! each proof to its single-use nonce so one solution pays exactly
//! once.
//!
//! The provider verifies proofs against its own authentic copies of the
//! issued objects ([`crate::accounting::Accounting::settle_with`]), so
//! a colluding client+peer pair that *fabricates* a retrieval without
//! holding the bytes is rejected outright
//! ([`crate::accounting::RejectReason::UnbackedServe`]), and one that
//! does hold the bytes must spend a data-sized pass of work per record
//! — which is the whole point: payable bytes per unit of attacker work
//! are bounded by a constant, no matter how many Sybil clients the
//! attacker mints (experiment E25).

use crate::peer::PeerId;
use hpop_crypto::hmac::hmac_sha256;
use hpop_crypto::nonce::Nonce;
use hpop_crypto::puzzle::{PuzzleChallenge, PuzzleParams};

/// Derives the public per-epoch puzzle seed from the provider's master
/// secret. Publishing a seed reveals nothing about the master or about
/// other epochs' seeds.
pub fn epoch_seed(master: &[u8; 32], epoch: u64) -> [u8; 32] {
    hmac_sha256(master, format!("puzzle-epoch|{epoch}").as_bytes()).0
}

/// The puzzle configuration one wrapper page carries: which epoch seed
/// to solve under and how hard the walk is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PuzzleSpec {
    /// The accounting epoch this seed is valid for.
    pub epoch: u64,
    /// The provider-issued per-epoch seed (public to participants).
    pub seed: [u8; 32],
    /// Walk difficulty and verification sampling.
    pub params: PuzzleParams,
}

impl PuzzleSpec {
    /// Builds the spec for `epoch` from the provider's master secret.
    pub fn for_epoch(master: &[u8; 32], epoch: u64, params: PuzzleParams) -> PuzzleSpec {
        PuzzleSpec {
            epoch,
            seed: epoch_seed(master, epoch),
            params,
        }
    }

    /// The challenge binding a puzzle instance to one usage record:
    /// seed x (client, peer, nonce). The nonce is single-use, so a
    /// solution can neither be replayed across records nor shared
    /// between Sybil identities.
    pub fn challenge(&self, client: u64, peer: PeerId, nonce: Nonce) -> PuzzleChallenge {
        PuzzleChallenge(
            hmac_sha256(
                &self.seed,
                format!("cap|{client}|{}|{}", peer.0, nonce.0).as_bytes(),
            )
            .0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASTER: [u8; 32] = [42u8; 32];

    #[test]
    fn seeds_differ_per_epoch_and_master() {
        let a = epoch_seed(&MASTER, 1);
        let b = epoch_seed(&MASTER, 2);
        let c = epoch_seed(&[1u8; 32], 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, epoch_seed(&MASTER, 1));
    }

    #[test]
    fn challenge_binds_every_identity_component() {
        let spec = PuzzleSpec::for_epoch(&MASTER, 3, PuzzleParams::default());
        let base = spec.challenge(1, PeerId(2), Nonce(3));
        assert_eq!(base, spec.challenge(1, PeerId(2), Nonce(3)));
        assert_ne!(base, spec.challenge(9, PeerId(2), Nonce(3)));
        assert_ne!(base, spec.challenge(1, PeerId(9), Nonce(3)));
        assert_ne!(base, spec.challenge(1, PeerId(2), Nonce(9)));
        let other_epoch = PuzzleSpec::for_epoch(&MASTER, 4, PuzzleParams::default());
        assert_ne!(base, other_epoch.challenge(1, PeerId(2), Nonce(3)));
    }
}
