//! Usage records and provider-side accounting.
//!
//! §IV-B: "the script transfers a usage record to each peer. The usage
//! report is secured via a cryptographic signature using the secret key
//! furnished by the content provider and includes a nonce to prevent
//! replay. The NoCDN peers accumulate usage records and periodically
//! upload them to the content provider for payment." And: "an
//! unscrupulous peer has an incentive to inflate the contribution they
//! report … NoCDN must be able to protect content providers from such
//! behavior."
//!
//! Protection layers implemented here:
//! 1. **HMAC signatures** under per-(client, peer) short-term keys — a
//!    peer cannot forge or alter a record without detection.
//! 2. **Nonce registry** — replayed records are rejected.
//! 3. **Work cross-check** — the provider knows what it mapped to each
//!    peer, so a record claiming more bytes than the issued work is
//!    rejected.
//! 4. **Anomaly scoring** — collusion (peer + client inventing traffic)
//!    is surfaced by comparing per-peer payment rates against a robust
//!    trimmed baseline (the paper's "anomalous behavior detection").
//! 5. **Accountability puzzles** (optional, CAPnet-style; see
//!    [`crate::puzzle`]) — when a [`PuzzleSpec`] policy is set, a
//!    record is payable only with a verified data-dependent proof of
//!    serving, so colluders who *fabricate* retrievals are rejected
//!    ([`RejectReason::UnbackedServe`]) and colluders who do the work
//!    gain at most a constant payable-bytes-per-work ratio.
//!
//! Layers 1–3 defeat a lone dishonest peer; layer 4 surfaces colluding
//! cliques; layer 5 bounds what even a Sybil swarm with full protocol
//! compliance can extract (experiment E25).

use crate::peer::PeerId;
use crate::puzzle::PuzzleSpec;
use bytes::Bytes;
use hpop_crypto::hmac::{hmac_sha256, verify_hmac_sha256, HmacTag};
use hpop_crypto::nonce::{Nonce, NonceRegistry};
use hpop_crypto::puzzle::{self, PuzzleProof};
use std::collections::BTreeMap;

/// A client-signed record of bytes served by one peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageRecord {
    /// The serving peer.
    pub peer: PeerId,
    /// The client the bytes were served to.
    pub client: u64,
    /// Goodput bytes the client verified from this peer.
    pub bytes: u64,
    /// Objects delivered.
    pub objects: u32,
    /// Anti-replay nonce.
    pub nonce: Nonce,
    /// Accountability-puzzle proof of serving, when the provider's
    /// policy demands one. The proof tag is covered by the signature,
    /// so it cannot be stripped or swapped without tripping
    /// [`RejectReason::BadSignature`].
    pub proof: Option<PuzzleProof>,
    tag: HmacTag,
}

fn tag_hex(proof: Option<&PuzzleProof>) -> String {
    match proof {
        None => "-".to_owned(),
        Some(p) => p.tag.iter().map(|b| format!("{b:02x}")).collect(),
    }
}

impl UsageRecord {
    fn message(
        peer: PeerId,
        client: u64,
        bytes: u64,
        objects: u32,
        nonce: Nonce,
        proof: Option<&PuzzleProof>,
    ) -> Vec<u8> {
        format!(
            "usage|{}|{client}|{bytes}|{objects}|{}|{}",
            peer.0,
            nonce.0,
            tag_hex(proof)
        )
        .into_bytes()
    }

    /// Signs a record with the provider-issued short-term key.
    pub fn sign(
        key: &[u8; 32],
        peer: PeerId,
        client: u64,
        bytes: u64,
        objects: u32,
        nonce: Nonce,
    ) -> UsageRecord {
        Self::sign_with_proof(key, peer, client, bytes, objects, nonce, None)
    }

    /// Signs a record carrying an accountability-puzzle proof. The
    /// proof tag is part of the signed message.
    #[allow(clippy::too_many_arguments)]
    pub fn sign_with_proof(
        key: &[u8; 32],
        peer: PeerId,
        client: u64,
        bytes: u64,
        objects: u32,
        nonce: Nonce,
        proof: Option<PuzzleProof>,
    ) -> UsageRecord {
        let tag = hmac_sha256(
            key,
            &Self::message(peer, client, bytes, objects, nonce, proof.as_ref()),
        );
        UsageRecord {
            peer,
            client,
            bytes,
            objects,
            nonce,
            proof,
            tag,
        }
    }

    /// Verifies the record against a key.
    pub fn verify(&self, key: &[u8; 32]) -> bool {
        verify_hmac_sha256(
            key,
            &Self::message(
                self.peer,
                self.client,
                self.bytes,
                self.objects,
                self.nonce,
                self.proof.as_ref(),
            ),
            &self.tag,
        )
    }

    /// Reassembles a record from its wire parts (durability adapter's
    /// WAL decode — the tag is carried verbatim, not re-signed).
    pub(crate) fn from_parts(
        peer: PeerId,
        client: u64,
        bytes: u64,
        objects: u32,
        nonce: Nonce,
        proof: Option<PuzzleProof>,
        tag: HmacTag,
    ) -> UsageRecord {
        UsageRecord {
            peer,
            client,
            bytes,
            objects,
            nonce,
            proof,
            tag,
        }
    }

    /// The signature tag (durability adapter's WAL encode).
    pub(crate) fn tag(&self) -> &HmacTag {
        &self.tag
    }

    /// An unsigned record for unit tests of non-crypto paths. Gated out
    /// of production builds: real records always carry a signature.
    #[cfg(any(test, feature = "testutil"))]
    #[doc(hidden)]
    pub fn unsigned_for_tests(peer: PeerId, bytes: u64) -> UsageRecord {
        UsageRecord {
            peer,
            client: 0,
            bytes,
            objects: 1,
            nonce: Nonce(0),
            proof: None,
            tag: HmacTag([0u8; 32]),
        }
    }
}

/// Why a record was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// HMAC verification failed (forged or altered).
    BadSignature,
    /// Nonce already seen (replay).
    Replay,
    /// Claims more bytes than the work the provider issued.
    ExceedsIssuedWork,
    /// No issuance is outstanding for this (client, peer).
    UnknownIssuance,
    /// The accountability-puzzle policy is on and the record's proof is
    /// missing or does not verify against the authentic bytes — a
    /// fabricated retrieval (confirmed misbehavior, fed to the fabric
    /// reputation ledger).
    UnbackedServe,
}

/// The accountability-puzzle verdict attached to a settlement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PuzzleCheck {
    /// No puzzle policy applies (defense off).
    NotRequired,
    /// The proof verified against the authentic bytes.
    Verified,
    /// The proof is missing or wrong: the serve is unbacked.
    Unbacked,
}

#[derive(Clone, Debug)]
pub(crate) struct Issuance {
    pub(crate) key: [u8; 32],
    pub(crate) max_bytes: u64,
    /// The object paths mapped to the peer (sorted), so a puzzle proof
    /// can be verified against the authentic bytes at settle time.
    pub(crate) objects: Vec<String>,
}

/// Derives the short-term `(client, peer)` key from the provider's
/// master secret. Factored out so the durability adapter can derive the
/// key *before* logging — the WAL records the derived key, and the
/// master secret never touches stable storage.
pub fn derive_issue_key(master: &[u8; 32], client: u64, peer: PeerId, max_bytes: u64) -> [u8; 32] {
    hmac_sha256(
        master,
        format!("issue|{client}|{}|{max_bytes}", peer.0).as_bytes(),
    )
    .0
}

/// Provider-side accounting state.
#[derive(Debug, Default)]
pub struct Accounting {
    /// (client, peer) → outstanding issuance.
    issuances: BTreeMap<(u64, u32), Issuance>,
    nonces: NonceRegistry,
    /// Accepted bytes per peer (the payment basis).
    accepted: BTreeMap<PeerId, u64>,
    /// Issuances granted per peer (for anomaly normalization).
    issued_count: BTreeMap<PeerId, u64>,
    /// Rejections per peer with reasons.
    rejections: Vec<(PeerId, RejectReason)>,
    /// The accountability-puzzle policy, when the defense is on.
    /// Provider configuration, not payment state — it is not part of
    /// the durable snapshot and is re-set after recovery.
    puzzle: Option<PuzzleSpec>,
    /// Data bytes the provider touched verifying puzzle proofs (the
    /// honest-path overhead E25c budgets). Transient measurement.
    verify_work_bytes: u64,
}

impl Accounting {
    /// Fresh accounting state.
    pub fn new() -> Accounting {
        Accounting::default()
    }

    /// Turns the accountability-puzzle defense on: every subsequent
    /// settlement must carry a proof verifiable against the authentic
    /// bytes of its issuance's objects.
    pub fn set_puzzle(&mut self, spec: PuzzleSpec) {
        self.puzzle = Some(spec);
    }

    /// The active puzzle policy, if any (wrapper pages publish it).
    pub fn puzzle_spec(&self) -> Option<&PuzzleSpec> {
        self.puzzle.as_ref()
    }

    /// Issues a short-term key for `(client, peer)` covering at most
    /// `max_bytes` of work (the bytes the wrapper mapped to that peer).
    /// Returns the key to embed in the wrapper page.
    pub fn issue(
        &mut self,
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        master: &[u8; 32],
    ) -> [u8; 32] {
        self.issue_with_objects(client, peer, max_bytes, &[], master)
    }

    /// [`Accounting::issue`] recording the object paths mapped to the
    /// peer, so the puzzle defense can verify proofs at settle time.
    pub fn issue_with_objects(
        &mut self,
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        objects: &[String],
        master: &[u8; 32],
    ) -> [u8; 32] {
        let key = derive_issue_key(master, client, peer, max_bytes);
        self.apply_issue(client, peer, max_bytes, objects.to_vec(), key);
        key
    }

    /// Records an issuance whose key was already derived — the replay
    /// path of the durability adapter.
    pub(crate) fn apply_issue(
        &mut self,
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        mut objects: Vec<String>,
        key: [u8; 32],
    ) {
        objects.sort();
        self.issuances.insert(
            (client, peer.0),
            Issuance {
                key,
                max_bytes,
                objects,
            },
        );
        *self.issued_count.entry(peer).or_default() += 1;
    }

    /// Checks a record's accountability-puzzle proof under `spec`,
    /// resolving each issued object path to its authentic bytes. A
    /// record is [`PuzzleCheck::Unbacked`] when the proof is absent,
    /// when any issued object cannot be resolved (the provider cannot
    /// confirm backing), or when the sampled replay disagrees.
    ///
    /// Read-only so the durability adapter can compute the verdict
    /// *before* logging the settlement — replay then re-applies the
    /// logged verdict instead of needing the object bytes again.
    /// Returns the verdict plus the data bytes the verification walked
    /// (the provider's overhead currency).
    pub fn check_puzzle<F>(
        &self,
        record: &UsageRecord,
        spec: &PuzzleSpec,
        mut resolve: F,
    ) -> (PuzzleCheck, u64)
    where
        F: FnMut(&str) -> Option<Bytes>,
    {
        let Some(iss) = self.issuances.get(&(record.client, record.peer.0)) else {
            // No issuance: the settle path rejects as UnknownIssuance
            // before the puzzle is consulted.
            return (PuzzleCheck::NotRequired, 0);
        };
        let Some(proof) = record.proof.as_ref() else {
            return (PuzzleCheck::Unbacked, 0);
        };
        let mut data = Vec::new();
        for path in &iss.objects {
            match resolve(path) {
                Some(body) => data.extend_from_slice(&body),
                None => return (PuzzleCheck::Unbacked, 0),
            }
        }
        let challenge = spec.challenge(record.client, record.peer, record.nonce);
        let (ok, work) = puzzle::verify(&challenge, &data, proof, &spec.params);
        hpop_obs::metrics()
            .counter("nocdn.acct.puzzle.verify_bytes")
            .add(work.data_bytes);
        let check = if ok {
            PuzzleCheck::Verified
        } else {
            PuzzleCheck::Unbacked
        };
        (check, work.data_bytes)
    }

    /// Settles one uploaded record: verify, replay-check, work-check.
    /// With the puzzle policy on, this no-resolver form cannot confirm
    /// backing and therefore rejects every record as
    /// [`RejectReason::UnbackedServe`] — use [`Accounting::settle_with`]
    /// and hand it the provider's object store.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] and records it against the peer.
    pub fn settle(&mut self, record: &UsageRecord) -> Result<(), RejectReason> {
        self.settle_with(record, |_| None)
    }

    /// [`Accounting::settle`] with access to the authentic object
    /// bytes, so the accountability-puzzle policy (when set) can verify
    /// the record's proof of serving.
    pub fn settle_with<F>(&mut self, record: &UsageRecord, resolve: F) -> Result<(), RejectReason>
    where
        F: FnMut(&str) -> Option<Bytes>,
    {
        let check = match self.puzzle {
            None => PuzzleCheck::NotRequired,
            Some(spec) => {
                let (check, work) = self.check_puzzle(record, &spec, resolve);
                self.verify_work_bytes += work;
                check
            }
        };
        self.settle_checked(record, check)
    }

    /// The settlement core, taking a precomputed puzzle verdict (the
    /// durability adapter logs the verdict with the record and replays
    /// it deterministically).
    pub(crate) fn settle_checked(
        &mut self,
        record: &UsageRecord,
        check: PuzzleCheck,
    ) -> Result<(), RejectReason> {
        let Some(iss) = self.issuances.get(&(record.client, record.peer.0)) else {
            self.rejections
                .push((record.peer, RejectReason::UnknownIssuance));
            return Err(RejectReason::UnknownIssuance);
        };
        if !record.verify(&iss.key) {
            self.rejections
                .push((record.peer, RejectReason::BadSignature));
            return Err(RejectReason::BadSignature);
        }
        if record.bytes > iss.max_bytes {
            self.rejections
                .push((record.peer, RejectReason::ExceedsIssuedWork));
            return Err(RejectReason::ExceedsIssuedWork);
        }
        if check == PuzzleCheck::Unbacked {
            self.rejections
                .push((record.peer, RejectReason::UnbackedServe));
            hpop_obs::metrics()
                .counter("nocdn.acct.puzzle.unbacked_rejected")
                .incr();
            return Err(RejectReason::UnbackedServe);
        }
        if !self.nonces.accept(&record.peer.0.to_string(), record.nonce) {
            self.rejections.push((record.peer, RejectReason::Replay));
            return Err(RejectReason::Replay);
        }
        *self.accepted.entry(record.peer).or_default() += record.bytes;
        Ok(())
    }

    /// Accepted (payable) bytes for a peer.
    pub fn payable_bytes(&self, peer: PeerId) -> u64 {
        self.accepted.get(&peer).copied().unwrap_or(0)
    }

    /// All rejections so far.
    pub fn rejections(&self) -> &[(PeerId, RejectReason)] {
        &self.rejections
    }

    /// Rejections charged to one peer.
    pub fn rejection_count(&self, peer: PeerId) -> usize {
        self.rejections.iter().filter(|(p, _)| *p == peer).count()
    }

    /// Peers with confirmed fabricated serves (puzzle rejections),
    /// worst first — the feed into the fabric reputation ledger: a
    /// [`RejectReason::UnbackedServe`] is cryptographic evidence of
    /// fabrication, not an anomaly-score suspicion.
    pub fn confirmed_offenders(&self) -> Vec<(PeerId, u32)> {
        let mut counts: BTreeMap<PeerId, u32> = BTreeMap::new();
        for &(peer, reason) in &self.rejections {
            if reason == RejectReason::UnbackedServe {
                *counts.entry(peer).or_default() += 1;
            }
        }
        let mut out: Vec<(PeerId, u32)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Data bytes spent verifying puzzle proofs so far (the provider's
    /// honest-path overhead, budgeted by E25c).
    pub fn puzzle_verify_bytes(&self) -> u64 {
        self.verify_work_bytes
    }

    /// Per-issuance payment rates (accepted bytes / issuances), the
    /// anomaly-score raw material.
    fn payment_rates(&self) -> Vec<(PeerId, f64)> {
        self.issued_count
            .iter()
            .map(|(&p, &n)| {
                let bytes = self.accepted.get(&p).copied().unwrap_or(0);
                (p, bytes as f64 / n.max(1) as f64)
            })
            .collect()
    }

    /// Payment-rate anomaly scores: a peer's accepted bytes per
    /// issuance divided by a **trimmed baseline** — the lower-quartile
    /// rate of the population — rather than the raw median. Inflation
    /// attacks can only push rates *up*, so the low end of the
    /// distribution stays honest until more than three quarters of the
    /// population colludes; the raw median is attacker-controlled as
    /// soon as colluders reach 50% (the E25 laundering campaign), which
    /// would make every honest peer look cheap instead of the
    /// colluders looking expensive.
    pub fn anomaly_scores(&self) -> BTreeMap<PeerId, f64> {
        let rates = self.payment_rates();
        if rates.is_empty() {
            return BTreeMap::new();
        }
        let mut sorted: Vec<f64> = rates.iter().map(|&(_, r)| r).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let baseline = sorted[sorted.len() / 4].max(1.0);
        rates.into_iter().map(|(p, r)| (p, r / baseline)).collect()
    }

    /// Median absolute deviation of the trimmed (lower-half) rates: the
    /// robust spread estimate [`Accounting::flag_anomalies`] uses to
    /// avoid ratio-flagging tight honest populations.
    fn trimmed_mad(&self) -> (f64, f64) {
        let mut sorted: Vec<f64> = self.payment_rates().iter().map(|&(_, r)| r).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        if sorted.is_empty() {
            return (0.0, 0.0);
        }
        let baseline = sorted[sorted.len() / 4];
        let lower = &sorted[..(sorted.len() / 2).max(1)];
        let mut dev: Vec<f64> = lower.iter().map(|r| (r - baseline).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (baseline, dev[dev.len() / 2])
    }

    /// Every private field by reference, for the durability adapter's
    /// snapshot encoding.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &BTreeMap<(u64, u32), Issuance>,
        &NonceRegistry,
        &BTreeMap<PeerId, u64>,
        &BTreeMap<PeerId, u64>,
        &[(PeerId, RejectReason)],
    ) {
        (
            &self.issuances,
            &self.nonces,
            &self.accepted,
            &self.issued_count,
            &self.rejections,
        )
    }

    /// Rebuilds accounting state from snapshot-decoded parts
    /// (durability adapter only).
    pub(crate) fn restore(
        issuances: BTreeMap<(u64, u32), Issuance>,
        nonces: NonceRegistry,
        accepted: BTreeMap<PeerId, u64>,
        issued_count: BTreeMap<PeerId, u64>,
        rejections: Vec<(PeerId, RejectReason)>,
    ) -> Accounting {
        Accounting {
            issuances,
            nonces,
            accepted,
            issued_count,
            rejections,
            puzzle: None,
            verify_work_bytes: 0,
        }
    }

    /// Peers whose trimmed-baseline score exceeds `threshold` (e.g.
    /// 3.0) **and** whose rate sits more than three MADs above the
    /// trimmed population — a peer must be both relatively and robustly
    /// anomalous to be flagged.
    pub fn flag_anomalies(&self, threshold: f64) -> Vec<PeerId> {
        let (baseline, mad) = self.trimmed_mad();
        self.anomaly_scores()
            .into_iter()
            .filter(|&(p, s)| {
                let rate = self
                    .payment_rates()
                    .iter()
                    .find(|&&(q, _)| q == p)
                    .map(|&(_, r)| r)
                    .unwrap_or(0.0);
                s > threshold && (rate - baseline) > 3.0 * mad
            })
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_crypto::puzzle::PuzzleParams;

    const MASTER: [u8; 32] = [42u8; 32];

    fn issue_and_sign(
        acct: &mut Accounting,
        client: u64,
        peer: PeerId,
        max: u64,
        claim: u64,
        nonce: u64,
    ) -> UsageRecord {
        let key = acct.issue(client, peer, max, &MASTER);
        UsageRecord::sign(&key, peer, client, claim, 3, Nonce(nonce as u128))
    }

    #[test]
    fn honest_record_settles() {
        let mut acct = Accounting::new();
        let r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 900, 1);
        assert_eq!(acct.settle(&r), Ok(()));
        assert_eq!(acct.payable_bytes(PeerId(1)), 900);
    }

    #[test]
    fn altered_bytes_fail_signature() {
        let mut acct = Accounting::new();
        let mut r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 500, 1);
        r.bytes = 5000; // peer inflates after signing
        assert_eq!(acct.settle(&r), Err(RejectReason::BadSignature));
        assert_eq!(acct.payable_bytes(PeerId(1)), 0);
        assert_eq!(acct.rejection_count(PeerId(1)), 1);
    }

    #[test]
    fn replays_rejected() {
        let mut acct = Accounting::new();
        let r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 500, 7);
        assert!(acct.settle(&r).is_ok());
        assert_eq!(acct.settle(&r), Err(RejectReason::Replay));
        assert_eq!(acct.payable_bytes(PeerId(1)), 500);
    }

    #[test]
    fn work_crosscheck_caps_claims() {
        let mut acct = Accounting::new();
        // Client colludes: signs an inflated record with the real key.
        let r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 999_999, 1);
        assert_eq!(acct.settle(&r), Err(RejectReason::ExceedsIssuedWork));
    }

    #[test]
    fn unknown_issuance_rejected() {
        let mut acct = Accounting::new();
        let r = UsageRecord::sign(&[0u8; 32], PeerId(9), 5, 10, 1, Nonce(1));
        assert_eq!(acct.settle(&r), Err(RejectReason::UnknownIssuance));
    }

    #[test]
    fn anomaly_scores_flag_colluders() {
        let mut acct = Accounting::new();
        // Nine honest peers: ~500 bytes per issuance.
        for p in 0..9u32 {
            for c in 0..5u64 {
                let client = c * 100 + p as u64;
                let r = issue_and_sign(&mut acct, client, PeerId(p), 1000, 500, client);
                acct.settle(&r).unwrap();
            }
        }
        // One colluding peer cycles maximal fake downloads.
        for c in 0..50u64 {
            let r = issue_and_sign(&mut acct, 10_000 + c, PeerId(9), 1000, 1000, 90_000 + c);
            acct.settle(&r).unwrap();
        }
        // Per-issuance rate: honest 500, colluder 1000 → score ~2.
        let scores = acct.anomaly_scores();
        assert!(scores[&PeerId(9)] > 1.8, "score {}", scores[&PeerId(9)]);
        let flagged = acct.flag_anomalies(1.8);
        assert_eq!(flagged, vec![PeerId(9)]);
    }

    /// Satellite regression: when colluders are the *majority*, the raw
    /// median is attacker-controlled — the old median-based score gave
    /// every colluder 1.0 (invisible) and every honest peer 0.5. The
    /// trimmed baseline anchors on the honest low end instead.
    #[test]
    fn majority_collusion_still_flagged() {
        let mut acct = Accounting::new();
        let mut nonce = 0u64;
        // Four honest peers at ~500/issuance.
        for p in 0..4u32 {
            for c in 0..10u64 {
                nonce += 1;
                let r = issue_and_sign(&mut acct, c * 100 + p as u64, PeerId(p), 1000, 500, nonce);
                acct.settle(&r).unwrap();
            }
        }
        // SIX colluders (60% of the population) at the full 1000.
        for p in 4..10u32 {
            for c in 0..10u64 {
                nonce += 1;
                let r = issue_and_sign(
                    &mut acct,
                    5000 + c * 100 + p as u64,
                    PeerId(p),
                    1000,
                    1000,
                    nonce,
                );
                acct.settle(&r).unwrap();
            }
        }
        let scores = acct.anomaly_scores();
        for p in 0..4u32 {
            assert!(
                (scores[&PeerId(p)] - 1.0).abs() < 0.01,
                "honest peer {p} score {}",
                scores[&PeerId(p)]
            );
        }
        let flagged = acct.flag_anomalies(1.8);
        assert_eq!(
            flagged,
            (4..10).map(PeerId).collect::<Vec<_>>(),
            "all six majority colluders flagged, no honest peer"
        );
    }

    #[test]
    fn empty_accounting_edge_cases() {
        let acct = Accounting::new();
        assert!(acct.anomaly_scores().is_empty());
        assert!(acct.flag_anomalies(1.0).is_empty());
        assert_eq!(acct.payable_bytes(PeerId(0)), 0);
    }

    fn puzzle_setup() -> (Accounting, PuzzleSpec, Bytes) {
        let mut acct = Accounting::new();
        let spec = PuzzleSpec::for_epoch(&MASTER, 1, PuzzleParams::default());
        acct.set_puzzle(spec);
        (acct, spec, Bytes::from(vec![7u8; 20_000]))
    }

    #[test]
    fn backed_record_settles_under_puzzle_policy() {
        let (mut acct, spec, body) = puzzle_setup();
        let key = acct.issue_with_objects(1, PeerId(2), 20_000, &["/a.bin".to_owned()], &MASTER);
        let nonce = Nonce(5);
        let challenge = spec.challenge(1, PeerId(2), nonce);
        let (proof, _) = puzzle::solve(&challenge, &body, &spec.params);
        let r = UsageRecord::sign_with_proof(&key, PeerId(2), 1, 20_000, 1, nonce, Some(proof));
        let body2 = body.clone();
        assert_eq!(acct.settle_with(&r, |_| Some(body2.clone())), Ok(()));
        assert_eq!(acct.payable_bytes(PeerId(2)), 20_000);
        assert!(acct.puzzle_verify_bytes() > 0);
    }

    #[test]
    fn unbacked_record_rejected_and_confirmed() {
        let (mut acct, _spec, body) = puzzle_setup();
        let key = acct.issue_with_objects(1, PeerId(2), 20_000, &["/a.bin".to_owned()], &MASTER);
        // Fabricated retrieval: signed with the real key, but no proof.
        let r = UsageRecord::sign(&key, PeerId(2), 1, 20_000, 1, Nonce(5));
        assert_eq!(
            acct.settle_with(&r, |_| Some(body.clone())),
            Err(RejectReason::UnbackedServe)
        );
        assert_eq!(acct.payable_bytes(PeerId(2)), 0);
        assert_eq!(acct.confirmed_offenders(), vec![(PeerId(2), 1)]);
    }

    #[test]
    fn wrong_data_proof_rejected() {
        let (mut acct, spec, body) = puzzle_setup();
        let key = acct.issue_with_objects(1, PeerId(2), 20_000, &["/a.bin".to_owned()], &MASTER);
        let nonce = Nonce(5);
        let challenge = spec.challenge(1, PeerId(2), nonce);
        // Proof over garbage the peer invented instead of the content.
        let (proof, _) = puzzle::solve(&challenge, &vec![0u8; 20_000], &spec.params);
        let r = UsageRecord::sign_with_proof(&key, PeerId(2), 1, 20_000, 1, nonce, Some(proof));
        assert_eq!(
            acct.settle_with(&r, |_| Some(body.clone())),
            Err(RejectReason::UnbackedServe)
        );
    }

    #[test]
    fn stripped_proof_fails_signature() {
        let (mut acct, spec, body) = puzzle_setup();
        let key = acct.issue_with_objects(1, PeerId(2), 20_000, &["/a.bin".to_owned()], &MASTER);
        let nonce = Nonce(5);
        let challenge = spec.challenge(1, PeerId(2), nonce);
        let (proof, _) = puzzle::solve(&challenge, &body, &spec.params);
        let mut r = UsageRecord::sign_with_proof(&key, PeerId(2), 1, 20_000, 1, nonce, Some(proof));
        r.proof = None; // stripping the proof breaks the signature
        assert_eq!(
            acct.settle_with(&r, |_| Some(body.clone())),
            Err(RejectReason::BadSignature)
        );
    }

    #[test]
    fn no_resolver_settle_fails_closed_under_policy() {
        let (mut acct, spec, body) = puzzle_setup();
        let key = acct.issue_with_objects(1, PeerId(2), 20_000, &["/a.bin".to_owned()], &MASTER);
        let nonce = Nonce(5);
        let challenge = spec.challenge(1, PeerId(2), nonce);
        let (proof, _) = puzzle::solve(&challenge, &body, &spec.params);
        let r = UsageRecord::sign_with_proof(&key, PeerId(2), 1, 20_000, 1, nonce, Some(proof));
        // Even a valid proof cannot be confirmed without the bytes.
        assert_eq!(acct.settle(&r), Err(RejectReason::UnbackedServe));
    }
}
