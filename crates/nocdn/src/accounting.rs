//! Usage records and provider-side accounting.
//!
//! §IV-B: "the script transfers a usage record to each peer. The usage
//! report is secured via a cryptographic signature using the secret key
//! furnished by the content provider and includes a nonce to prevent
//! replay. The NoCDN peers accumulate usage records and periodically
//! upload them to the content provider for payment." And: "an
//! unscrupulous peer has an incentive to inflate the contribution they
//! report … NoCDN must be able to protect content providers from such
//! behavior."
//!
//! Protection layers implemented here:
//! 1. **HMAC signatures** under per-(client, peer) short-term keys — a
//!    peer cannot forge or alter a record without detection.
//! 2. **Nonce registry** — replayed records are rejected.
//! 3. **Work cross-check** — the provider knows what it mapped to each
//!    peer, so a record claiming more bytes than the issued work is
//!    rejected.
//! 4. **Anomaly scoring** — collusion (peer + client inventing traffic)
//!    is surfaced by comparing per-peer payment rates against the
//!    population median (the paper's "anomalous behavior detection").

use crate::peer::PeerId;
use hpop_crypto::hmac::{hmac_sha256, verify_hmac_sha256, HmacTag};
use hpop_crypto::nonce::{Nonce, NonceRegistry};
use std::collections::BTreeMap;

/// A client-signed record of bytes served by one peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageRecord {
    /// The serving peer.
    pub peer: PeerId,
    /// The client the bytes were served to.
    pub client: u64,
    /// Goodput bytes the client verified from this peer.
    pub bytes: u64,
    /// Objects delivered.
    pub objects: u32,
    /// Anti-replay nonce.
    pub nonce: Nonce,
    tag: HmacTag,
}

impl UsageRecord {
    fn message(peer: PeerId, client: u64, bytes: u64, objects: u32, nonce: Nonce) -> Vec<u8> {
        format!("usage|{}|{client}|{bytes}|{objects}|{}", peer.0, nonce.0).into_bytes()
    }

    /// Signs a record with the provider-issued short-term key.
    pub fn sign(
        key: &[u8; 32],
        peer: PeerId,
        client: u64,
        bytes: u64,
        objects: u32,
        nonce: Nonce,
    ) -> UsageRecord {
        let tag = hmac_sha256(key, &Self::message(peer, client, bytes, objects, nonce));
        UsageRecord {
            peer,
            client,
            bytes,
            objects,
            nonce,
            tag,
        }
    }

    /// Verifies the record against a key.
    pub fn verify(&self, key: &[u8; 32]) -> bool {
        verify_hmac_sha256(
            key,
            &Self::message(self.peer, self.client, self.bytes, self.objects, self.nonce),
            &self.tag,
        )
    }

    /// Reassembles a record from its wire parts (durability adapter's
    /// WAL decode — the tag is carried verbatim, not re-signed).
    pub(crate) fn from_parts(
        peer: PeerId,
        client: u64,
        bytes: u64,
        objects: u32,
        nonce: Nonce,
        tag: HmacTag,
    ) -> UsageRecord {
        UsageRecord {
            peer,
            client,
            bytes,
            objects,
            nonce,
            tag,
        }
    }

    /// The signature tag (durability adapter's WAL encode).
    pub(crate) fn tag(&self) -> &HmacTag {
        &self.tag
    }

    /// An unsigned record for unit tests of non-crypto paths.
    #[doc(hidden)]
    pub fn unsigned_for_tests(peer: PeerId, bytes: u64) -> UsageRecord {
        UsageRecord {
            peer,
            client: 0,
            bytes,
            objects: 1,
            nonce: Nonce(0),
            tag: HmacTag([0u8; 32]),
        }
    }
}

/// Why a record was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// HMAC verification failed (forged or altered).
    BadSignature,
    /// Nonce already seen (replay).
    Replay,
    /// Claims more bytes than the work the provider issued.
    ExceedsIssuedWork,
    /// No issuance is outstanding for this (client, peer).
    UnknownIssuance,
}

#[derive(Clone, Debug)]
pub(crate) struct Issuance {
    pub(crate) key: [u8; 32],
    pub(crate) max_bytes: u64,
}

/// Derives the short-term `(client, peer)` key from the provider's
/// master secret. Factored out so the durability adapter can derive the
/// key *before* logging — the WAL records the derived key, and the
/// master secret never touches stable storage.
pub fn derive_issue_key(master: &[u8; 32], client: u64, peer: PeerId, max_bytes: u64) -> [u8; 32] {
    hmac_sha256(
        master,
        format!("issue|{client}|{}|{max_bytes}", peer.0).as_bytes(),
    )
    .0
}

/// Provider-side accounting state.
#[derive(Debug, Default)]
pub struct Accounting {
    /// (client, peer) → outstanding issuance.
    issuances: BTreeMap<(u64, u32), Issuance>,
    nonces: NonceRegistry,
    /// Accepted bytes per peer (the payment basis).
    accepted: BTreeMap<PeerId, u64>,
    /// Issuances granted per peer (for anomaly normalization).
    issued_count: BTreeMap<PeerId, u64>,
    /// Rejections per peer with reasons.
    rejections: Vec<(PeerId, RejectReason)>,
}

impl Accounting {
    /// Fresh accounting state.
    pub fn new() -> Accounting {
        Accounting::default()
    }

    /// Issues a short-term key for `(client, peer)` covering at most
    /// `max_bytes` of work (the bytes the wrapper mapped to that peer).
    /// Returns the key to embed in the wrapper page.
    pub fn issue(
        &mut self,
        client: u64,
        peer: PeerId,
        max_bytes: u64,
        master: &[u8; 32],
    ) -> [u8; 32] {
        let key = derive_issue_key(master, client, peer, max_bytes);
        self.apply_issue(client, peer, max_bytes, key);
        key
    }

    /// Records an issuance whose key was already derived — the replay
    /// path of the durability adapter.
    pub(crate) fn apply_issue(&mut self, client: u64, peer: PeerId, max_bytes: u64, key: [u8; 32]) {
        self.issuances
            .insert((client, peer.0), Issuance { key, max_bytes });
        *self.issued_count.entry(peer).or_default() += 1;
    }

    /// Settles one uploaded record: verify, replay-check, work-check.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] and records it against the peer.
    pub fn settle(&mut self, record: &UsageRecord) -> Result<(), RejectReason> {
        let Some(iss) = self.issuances.get(&(record.client, record.peer.0)) else {
            self.rejections
                .push((record.peer, RejectReason::UnknownIssuance));
            return Err(RejectReason::UnknownIssuance);
        };
        if !record.verify(&iss.key) {
            self.rejections
                .push((record.peer, RejectReason::BadSignature));
            return Err(RejectReason::BadSignature);
        }
        if record.bytes > iss.max_bytes {
            self.rejections
                .push((record.peer, RejectReason::ExceedsIssuedWork));
            return Err(RejectReason::ExceedsIssuedWork);
        }
        if !self.nonces.accept(&record.peer.0.to_string(), record.nonce) {
            self.rejections.push((record.peer, RejectReason::Replay));
            return Err(RejectReason::Replay);
        }
        *self.accepted.entry(record.peer).or_default() += record.bytes;
        Ok(())
    }

    /// Accepted (payable) bytes for a peer.
    pub fn payable_bytes(&self, peer: PeerId) -> u64 {
        self.accepted.get(&peer).copied().unwrap_or(0)
    }

    /// All rejections so far.
    pub fn rejections(&self) -> &[(PeerId, RejectReason)] {
        &self.rejections
    }

    /// Rejections charged to one peer.
    pub fn rejection_count(&self, peer: PeerId) -> usize {
        self.rejections.iter().filter(|(p, _)| *p == peer).count()
    }

    /// Payment-rate anomaly scores: a peer's accepted bytes per issuance
    /// divided by the population median of the same quantity. Honest
    /// peers cluster near 1.0; colluding cliques that cycle fake
    /// downloads through themselves stand out well above it.
    pub fn anomaly_scores(&self) -> BTreeMap<PeerId, f64> {
        let mut rates: Vec<(PeerId, f64)> = self
            .issued_count
            .iter()
            .map(|(&p, &n)| {
                let bytes = self.accepted.get(&p).copied().unwrap_or(0);
                (p, bytes as f64 / n.max(1) as f64)
            })
            .collect();
        if rates.is_empty() {
            return BTreeMap::new();
        }
        let mut sorted: Vec<f64> = rates.iter().map(|&(_, r)| r).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let median = sorted[sorted.len() / 2].max(1.0);
        rates.drain(..).map(|(p, r)| (p, r / median)).collect()
    }

    /// Every private field by reference, for the durability adapter's
    /// snapshot encoding.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &BTreeMap<(u64, u32), Issuance>,
        &NonceRegistry,
        &BTreeMap<PeerId, u64>,
        &BTreeMap<PeerId, u64>,
        &[(PeerId, RejectReason)],
    ) {
        (
            &self.issuances,
            &self.nonces,
            &self.accepted,
            &self.issued_count,
            &self.rejections,
        )
    }

    /// Rebuilds accounting state from snapshot-decoded parts
    /// (durability adapter only).
    pub(crate) fn restore(
        issuances: BTreeMap<(u64, u32), Issuance>,
        nonces: NonceRegistry,
        accepted: BTreeMap<PeerId, u64>,
        issued_count: BTreeMap<PeerId, u64>,
        rejections: Vec<(PeerId, RejectReason)>,
    ) -> Accounting {
        Accounting {
            issuances,
            nonces,
            accepted,
            issued_count,
            rejections,
        }
    }

    /// Peers whose anomaly score exceeds `threshold` (e.g. 3.0).
    pub fn flag_anomalies(&self, threshold: f64) -> Vec<PeerId> {
        self.anomaly_scores()
            .into_iter()
            .filter(|&(_, s)| s > threshold)
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASTER: [u8; 32] = [42u8; 32];

    fn issue_and_sign(
        acct: &mut Accounting,
        client: u64,
        peer: PeerId,
        max: u64,
        claim: u64,
        nonce: u64,
    ) -> UsageRecord {
        let key = acct.issue(client, peer, max, &MASTER);
        UsageRecord::sign(&key, peer, client, claim, 3, Nonce(nonce as u128))
    }

    #[test]
    fn honest_record_settles() {
        let mut acct = Accounting::new();
        let r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 900, 1);
        assert_eq!(acct.settle(&r), Ok(()));
        assert_eq!(acct.payable_bytes(PeerId(1)), 900);
    }

    #[test]
    fn altered_bytes_fail_signature() {
        let mut acct = Accounting::new();
        let mut r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 500, 1);
        r.bytes = 5000; // peer inflates after signing
        assert_eq!(acct.settle(&r), Err(RejectReason::BadSignature));
        assert_eq!(acct.payable_bytes(PeerId(1)), 0);
        assert_eq!(acct.rejection_count(PeerId(1)), 1);
    }

    #[test]
    fn replays_rejected() {
        let mut acct = Accounting::new();
        let r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 500, 7);
        assert!(acct.settle(&r).is_ok());
        assert_eq!(acct.settle(&r), Err(RejectReason::Replay));
        assert_eq!(acct.payable_bytes(PeerId(1)), 500);
    }

    #[test]
    fn work_crosscheck_caps_claims() {
        let mut acct = Accounting::new();
        // Client colludes: signs an inflated record with the real key.
        let r = issue_and_sign(&mut acct, 1, PeerId(1), 1000, 999_999, 1);
        assert_eq!(acct.settle(&r), Err(RejectReason::ExceedsIssuedWork));
    }

    #[test]
    fn unknown_issuance_rejected() {
        let mut acct = Accounting::new();
        let r = UsageRecord::sign(&[0u8; 32], PeerId(9), 5, 10, 1, Nonce(1));
        assert_eq!(acct.settle(&r), Err(RejectReason::UnknownIssuance));
    }

    #[test]
    fn anomaly_scores_flag_colluders() {
        let mut acct = Accounting::new();
        // Nine honest peers: ~500 bytes per issuance.
        for p in 0..9u32 {
            for c in 0..5u64 {
                let client = c * 100 + p as u64;
                let r = issue_and_sign(&mut acct, client, PeerId(p), 1000, 500, client);
                acct.settle(&r).unwrap();
            }
        }
        // One colluding peer cycles maximal fake downloads.
        for c in 0..50u64 {
            let r = issue_and_sign(&mut acct, 10_000 + c, PeerId(9), 1000, 1000, 90_000 + c);
            acct.settle(&r).unwrap();
        }
        // Per-issuance rate: honest 500, colluder 1000 → score ~2.
        let scores = acct.anomaly_scores();
        assert!(scores[&PeerId(9)] > 1.8, "score {}", scores[&PeerId(9)]);
        let flagged = acct.flag_anomalies(1.8);
        assert_eq!(flagged, vec![PeerId(9)]);
    }

    #[test]
    fn empty_accounting_edge_cases() {
        let acct = Accounting::new();
        assert!(acct.anomaly_scores().is_empty());
        assert!(acct.flag_anomalies(1.0).is_empty());
        assert_eq!(acct.payable_bytes(PeerId(0)), 0);
    }
}
