//! Peer-selection policies.
//!
//! §IV-B calls peer selection "an open problem" without a traditional
//! CDN's secret sauce: "the standard metrics … also apply in the NoCDN
//! context — e.g., reachability, bandwidth, packet loss and delay.
//! However, there is also a trustworthiness element." These policies are
//! the ablation axis of experiment E4:
//!
//! - [`SelectionPolicy::Random`] — also the collusion mitigation
//!   ("including some randomness in the client-to-peer mappings").
//! - [`SelectionPolicy::RoundRobin`] — load spreading.
//! - [`SelectionPolicy::Proximity`] — lowest client↔peer RTT.
//! - [`SelectionPolicy::TrustWeighted`] — demote peers with integrity or
//!   accounting violations.

use crate::peer::PeerId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Information the provider tracks about each recruited peer.
#[derive(Clone, Debug, Default)]
pub struct PeerInfo {
    /// Estimated client→peer RTT in milliseconds (telemetry).
    pub rtt_ms: f64,
    /// Integrity/accounting violations observed.
    pub violations: u32,
}

/// How the provider maps page objects to peers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionPolicy {
    /// Uniform random peer per object.
    Random,
    /// Cycle through peers object by object.
    RoundRobin,
    /// Prefer the lowest-RTT peers.
    Proximity,
    /// Like proximity, but peers with violations are skipped entirely.
    TrustWeighted,
}

/// The provider's peer directory plus selection state.
#[derive(Debug, Default)]
pub struct PeerDirectory {
    peers: BTreeMap<PeerId, PeerInfo>,
    rr_cursor: usize,
}

impl PeerDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recruits a peer ("content providers recruit well-connected
    /// users").
    pub fn recruit(&mut self, id: PeerId, info: PeerInfo) {
        self.peers.insert(id, info);
    }

    /// Records a violation against a peer (integrity or accounting).
    pub fn record_violation(&mut self, id: PeerId) {
        if let Some(info) = self.peers.get_mut(&id) {
            info.violations += 1;
        }
    }

    /// Number of recruited peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no peers are recruited.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Peer info, if recruited.
    pub fn info(&self, id: PeerId) -> Option<&PeerInfo> {
        self.peers.get(&id)
    }

    /// Assigns a peer to each object per the policy.
    ///
    /// # Panics
    ///
    /// Panics if the directory is empty, or if `TrustWeighted` filters
    /// every peer out (the provider must fall back to origin serving —
    /// callers check [`PeerDirectory::trusted_count`] first).
    pub fn assign(
        &mut self,
        objects: &[String],
        policy: SelectionPolicy,
        rng: &mut StdRng,
    ) -> BTreeMap<String, PeerId> {
        assert!(!self.peers.is_empty(), "no peers recruited");
        let candidates: Vec<PeerId> = match policy {
            SelectionPolicy::TrustWeighted => {
                let ok: Vec<PeerId> = self
                    .peers
                    .iter()
                    .filter(|(_, i)| i.violations == 0)
                    .map(|(&p, _)| p)
                    .collect();
                assert!(!ok.is_empty(), "no trusted peers remain");
                ok
            }
            _ => self.peers.keys().copied().collect(),
        };
        let mut sorted_by_rtt = candidates.clone();
        sorted_by_rtt.sort_by(|a, b| {
            let ra = self.peers[a].rtt_ms;
            let rb = self.peers[b].rtt_ms;
            ra.partial_cmp(&rb).expect("finite RTTs").then(a.cmp(b))
        });
        let mut out = BTreeMap::new();
        for (i, obj) in objects.iter().enumerate() {
            let peer = match policy {
                SelectionPolicy::Random => candidates[rng.gen_range(0..candidates.len())],
                SelectionPolicy::RoundRobin => {
                    let p = candidates[self.rr_cursor % candidates.len()];
                    self.rr_cursor += 1;
                    p
                }
                SelectionPolicy::Proximity | SelectionPolicy::TrustWeighted => {
                    // Spread objects over the closest few peers rather
                    // than hammering only the single closest.
                    let window = sorted_by_rtt.len().min(3);
                    sorted_by_rtt[i % window]
                }
            };
            out.insert(obj.clone(), peer);
        }
        out
    }

    /// Peers with no violations.
    pub fn trusted_count(&self) -> usize {
        self.peers.values().filter(|i| i.violations == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn directory(n: u32) -> PeerDirectory {
        let mut d = PeerDirectory::new();
        for i in 0..n {
            d.recruit(
                PeerId(i),
                PeerInfo {
                    rtt_ms: 10.0 + i as f64 * 5.0,
                    violations: 0,
                },
            );
        }
        d
    }

    fn objects(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/obj{i}")).collect()
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut d = directory(4);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(8), SelectionPolicy::RoundRobin, &mut rng);
        let mut counts = BTreeMap::new();
        for p in a.values() {
            *counts.entry(*p).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn proximity_prefers_low_rtt() {
        let mut d = directory(5);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(9), SelectionPolicy::Proximity, &mut rng);
        // Only the 3 closest peers (ids 0,1,2) are used.
        assert!(a.values().all(|p| p.0 < 3), "{a:?}");
    }

    #[test]
    fn trust_weighted_excludes_violators() {
        let mut d = directory(3);
        d.record_violation(PeerId(0));
        d.record_violation(PeerId(0));
        assert_eq!(d.trusted_count(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(10), SelectionPolicy::TrustWeighted, &mut rng);
        assert!(a.values().all(|p| p.0 != 0));
        assert_eq!(d.info(PeerId(0)).unwrap().violations, 2);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_unpredictable_across() {
        let mut d1 = directory(10);
        let mut d2 = directory(10);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(
            d1.assign(&objects(20), SelectionPolicy::Random, &mut r1),
            d2.assign(&objects(20), SelectionPolicy::Random, &mut r2)
        );
        let mut r3 = StdRng::seed_from_u64(8);
        let mut d3 = directory(10);
        assert_ne!(
            d1.assign(&objects(20), SelectionPolicy::Random, &mut r1),
            d3.assign(&objects(20), SelectionPolicy::Random, &mut r3)
        );
    }

    #[test]
    #[should_panic(expected = "no trusted peers")]
    fn all_violators_panics_trust_policy() {
        let mut d = directory(1);
        d.record_violation(PeerId(0));
        let mut rng = StdRng::seed_from_u64(1);
        d.assign(&objects(1), SelectionPolicy::TrustWeighted, &mut rng);
    }

    #[test]
    #[should_panic(expected = "no peers recruited")]
    fn empty_directory_panics() {
        let mut d = PeerDirectory::new();
        let mut rng = StdRng::seed_from_u64(1);
        d.assign(&objects(1), SelectionPolicy::Random, &mut rng);
    }
}
