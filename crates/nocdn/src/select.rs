//! Peer-selection policies, backed by the fabric membership layer.
//!
//! §IV-B calls peer selection "an open problem" without a traditional
//! CDN's secret sauce: "the standard metrics … also apply in the NoCDN
//! context — e.g., reachability, bandwidth, packet loss and delay.
//! However, there is also a trustworthiness element." These policies are
//! the ablation axis of experiment E4:
//!
//! - [`SelectionPolicy::Random`] — also the collusion mitigation
//!   ("including some randomness in the client-to-peer mappings").
//! - [`SelectionPolicy::RoundRobin`] — load spreading.
//! - [`SelectionPolicy::Proximity`] — lowest client↔peer RTT.
//! - [`SelectionPolicy::TrustWeighted`] — demote peers with integrity or
//!   accounting violations.
//!
//! The directory is a thin service wrapper over `hpop-fabric`: recruited
//! peers become fabric membership records, violations land on the shared
//! [`ReputationLedger`], and liveness flows in from a gossip
//! [`PeerView`] via [`PeerDirectory::sync_from_view`] — dead peers are
//! evicted from assignment automatically, and [`PeerDirectory::reassign`]
//! retries in-flight objects against surviving peers.

use crate::peer::PeerId;
use hpop_fabric::{
    Advertisement, MembershipTable, PeerRecord, PeerState, PeerView, ReputationLedger, Violation,
};
use hpop_netsim::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Information the provider tracks about each recruited peer.
#[derive(Clone, Debug, Default)]
pub struct PeerInfo {
    /// Estimated client→peer RTT in milliseconds (telemetry).
    pub rtt_ms: f64,
    /// Integrity/accounting violations observed.
    pub violations: u32,
}

/// How the provider maps page objects to peers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionPolicy {
    /// Uniform random peer per object.
    Random,
    /// Cycle through peers object by object.
    RoundRobin,
    /// Prefer the lowest-RTT peers.
    Proximity,
    /// Like proximity, but peers with violations are skipped entirely.
    TrustWeighted,
}

/// Maps a NoCDN peer id into the fabric namespace.
fn fid(id: PeerId) -> hpop_fabric::PeerId {
    hpop_fabric::PeerId(id.0 as u64)
}

/// The provider's peer directory plus selection state: a service-local
/// view over the fabric membership substrate.
#[derive(Debug, Default)]
pub struct PeerDirectory {
    membership: MembershipTable,
    ledger: ReputationLedger,
    /// Fabric-observed per-peer uptime fractions (1.0 until synced).
    uptimes: BTreeMap<PeerId, f64>,
    rr_cursor: usize,
}

impl PeerDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recruits a peer ("content providers recruit well-connected
    /// users"): the peer joins the provider's membership table alive,
    /// and any pre-known violations seed the reputation ledger.
    pub fn recruit(&mut self, id: PeerId, info: PeerInfo) {
        self.membership.upsert(PeerRecord::alive(
            fid(id),
            Advertisement {
                rtt_ms: info.rtt_ms,
                ..Advertisement::default()
            },
            SimTime::ZERO,
        ));
        for _ in 0..info.violations {
            self.ledger.record_violation(fid(id), Violation::Integrity);
        }
        self.uptimes.entry(id).or_insert(1.0);
    }

    /// Records a violation against a peer (integrity or accounting) —
    /// forwarded to the fabric reputation ledger, so the same offense
    /// also demotes the peer as a backup target and waypoint.
    pub fn record_violation(&mut self, id: PeerId) {
        if self.membership.get(fid(id)).is_some() {
            self.ledger.record_violation(fid(id), Violation::Integrity);
        }
    }

    /// Records `count` confirmed accounting violations against a peer —
    /// the feed from [`crate::accounting::Accounting::confirmed_offenders`]:
    /// each puzzle-rejected (fabricated) usage record is cryptographic
    /// evidence, so it lands on the fabric ledger as
    /// [`Violation::Accounting`] and the trust-weighted selection policy
    /// stops routing traffic to the peer.
    pub fn record_accounting_violations(&mut self, id: PeerId, count: u32) {
        if self.membership.get(fid(id)).is_some() {
            for _ in 0..count {
                self.ledger.record_violation(fid(id), Violation::Accounting);
            }
        }
    }

    /// Number of recruited peers (any liveness state).
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// True when no peers are recruited.
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Peer info, if recruited (RTT from the advertisement, violations
    /// from the shared ledger).
    pub fn info(&self, id: PeerId) -> Option<PeerInfo> {
        self.membership.get(fid(id)).map(|r| PeerInfo {
            rtt_ms: r.advert.rtt_ms,
            violations: self.ledger.violations(fid(id)),
        })
    }

    /// The shared reputation ledger (read access for accounting layers).
    pub fn ledger(&self) -> &ReputationLedger {
        &self.ledger
    }

    /// Adopts liveness and uptime state from a gossip [`PeerView`]:
    /// recruited peers the fabric believes dead stop being assigned;
    /// peers it has refuted back to life return. Peers unknown to the
    /// view keep their current state.
    pub fn sync_from_view(&mut self, view: &PeerView) {
        let ids: Vec<hpop_fabric::PeerId> = self.membership.iter().map(|r| r.id).collect();
        for id in ids {
            let Some(entry) = view.get(id) else { continue };
            let Some(mut rec) = self.membership.get(id).cloned() else {
                continue;
            };
            rec.state = entry.state;
            self.membership.upsert(rec);
            self.uptimes
                .insert(PeerId(id.0 as u32), entry.uptime_fraction);
        }
    }

    /// Marks one peer dead (e.g. the provider's own probe failed
    /// before the gossip round confirmed it).
    pub fn mark_dead(&mut self, id: PeerId) {
        self.membership
            .set_state(fid(id), PeerState::Dead, SimTime::ZERO);
    }

    /// Peers currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.membership.alive_ids().len()
    }

    /// Alive candidate ids under a policy's trust filter, in id order.
    fn candidates(&self, policy: SelectionPolicy) -> Vec<PeerId> {
        self.membership
            .iter()
            .filter(|r| r.state.is_alive())
            .filter(|r| policy != SelectionPolicy::TrustWeighted || self.ledger.is_clean(r.id))
            .map(|r| PeerId(r.id.0 as u32))
            .collect()
    }

    fn rtt_of(&self, id: PeerId) -> f64 {
        self.membership
            .get(fid(id))
            .map_or(f64::INFINITY, |r| r.advert.rtt_ms)
    }

    /// Assigns a peer to each object per the policy. Only peers the
    /// membership layer believes alive are candidates.
    ///
    /// # Panics
    ///
    /// Panics if no recruited peer is alive, or if `TrustWeighted`
    /// filters every live peer out (the provider must fall back to
    /// origin serving — callers check [`PeerDirectory::trusted_count`]
    /// first).
    pub fn assign(
        &mut self,
        objects: &[String],
        policy: SelectionPolicy,
        rng: &mut StdRng,
    ) -> BTreeMap<String, PeerId> {
        assert!(
            !self.membership.is_empty() && self.alive_count() > 0,
            "no peers recruited"
        );
        let candidates = self.candidates(policy);
        assert!(!candidates.is_empty(), "no trusted peers remain");
        let mut sorted_by_rtt = candidates.clone();
        sorted_by_rtt.sort_by(|a, b| {
            let ra = self.rtt_of(*a);
            let rb = self.rtt_of(*b);
            ra.partial_cmp(&rb).expect("finite RTTs").then(a.cmp(b))
        });
        let mut out = BTreeMap::new();
        for (i, obj) in objects.iter().enumerate() {
            let peer = match policy {
                SelectionPolicy::Random => candidates[rng.gen_range(0..candidates.len())],
                SelectionPolicy::RoundRobin => {
                    let p = candidates[self.rr_cursor % candidates.len()];
                    self.rr_cursor += 1;
                    p
                }
                SelectionPolicy::Proximity | SelectionPolicy::TrustWeighted => {
                    // Spread objects over the closest few peers rather
                    // than hammering only the single closest.
                    let window = sorted_by_rtt.len().min(3);
                    sorted_by_rtt[i % window]
                }
            };
            out.insert(obj.clone(), peer);
        }
        out
    }

    /// Picks a replacement peer for one in-flight object after the
    /// peers in `failed` did not deliver: the nearest surviving
    /// candidate not yet tried. `None` means every live peer has been
    /// exhausted and the loader must fall back to the origin.
    pub fn reassign(&self, policy: SelectionPolicy, failed: &BTreeSet<PeerId>) -> Option<PeerId> {
        let mut survivors: Vec<PeerId> = self
            .candidates(policy)
            .into_iter()
            .filter(|p| !failed.contains(p))
            .collect();
        survivors.sort_by(|a, b| {
            self.rtt_of(*a)
                .partial_cmp(&self.rtt_of(*b))
                .expect("finite RTTs")
                .then(a.cmp(b))
        });
        survivors.first().copied()
    }

    /// Peers alive with no violations.
    pub fn trusted_count(&self) -> usize {
        self.membership
            .iter()
            .filter(|r| r.state.is_alive() && self.ledger.is_clean(r.id))
            .count()
    }

    /// Fabric-observed uptime fraction of a recruited peer (1.0 until
    /// a view sync provides churn history).
    pub fn uptime(&self, id: PeerId) -> Option<f64> {
        if self.membership.get(fid(id)).is_some() {
            Some(self.uptimes.get(&id).copied().unwrap_or(1.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn directory(n: u32) -> PeerDirectory {
        let mut d = PeerDirectory::new();
        for i in 0..n {
            d.recruit(
                PeerId(i),
                PeerInfo {
                    rtt_ms: 10.0 + i as f64 * 5.0,
                    violations: 0,
                },
            );
        }
        d
    }

    fn objects(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/obj{i}")).collect()
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut d = directory(4);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(8), SelectionPolicy::RoundRobin, &mut rng);
        let mut counts = BTreeMap::new();
        for p in a.values() {
            *counts.entry(*p).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn proximity_prefers_low_rtt() {
        let mut d = directory(5);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(9), SelectionPolicy::Proximity, &mut rng);
        // Only the 3 closest peers (ids 0,1,2) are used.
        assert!(a.values().all(|p| p.0 < 3), "{a:?}");
    }

    #[test]
    fn trust_weighted_excludes_violators() {
        let mut d = directory(3);
        d.record_violation(PeerId(0));
        d.record_violation(PeerId(0));
        assert_eq!(d.trusted_count(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(10), SelectionPolicy::TrustWeighted, &mut rng);
        assert!(a.values().all(|p| p.0 != 0));
        assert_eq!(d.info(PeerId(0)).unwrap().violations, 2);
        // The violation landed on the fabric ledger, not a private count.
        assert_eq!(d.ledger().violations(hpop_fabric::PeerId(0)), 2);
    }

    #[test]
    fn accounting_violations_demote_trust() {
        let mut d = directory(3);
        d.record_accounting_violations(PeerId(1), 3);
        assert_eq!(d.trusted_count(), 2);
        assert_eq!(d.info(PeerId(1)).unwrap().violations, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(10), SelectionPolicy::TrustWeighted, &mut rng);
        assert!(a.values().all(|p| p.0 != 1));
        // Unrecruited peers are ignored, not phantom-recorded.
        d.record_accounting_violations(PeerId(99), 5);
        assert_eq!(d.ledger().violations(hpop_fabric::PeerId(99)), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_unpredictable_across() {
        let mut d1 = directory(10);
        let mut d2 = directory(10);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(
            d1.assign(&objects(20), SelectionPolicy::Random, &mut r1),
            d2.assign(&objects(20), SelectionPolicy::Random, &mut r2)
        );
        let mut r3 = StdRng::seed_from_u64(8);
        let mut d3 = directory(10);
        assert_ne!(
            d1.assign(&objects(20), SelectionPolicy::Random, &mut r1),
            d3.assign(&objects(20), SelectionPolicy::Random, &mut r3)
        );
    }

    #[test]
    fn dead_peers_are_not_assigned() {
        let mut d = directory(4);
        d.mark_dead(PeerId(0));
        d.mark_dead(PeerId(2));
        assert_eq!(d.alive_count(), 2);
        assert_eq!(d.len(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let a = d.assign(&objects(12), SelectionPolicy::Random, &mut rng);
        assert!(a.values().all(|p| p.0 == 1 || p.0 == 3), "{a:?}");
    }

    #[test]
    fn reassign_skips_failed_and_dead_peers() {
        let mut d = directory(4);
        d.mark_dead(PeerId(0));
        let mut failed = BTreeSet::new();
        failed.insert(PeerId(1));
        // Nearest surviving untried peer: id 2 (rtt 20 < rtt 25).
        assert_eq!(
            d.reassign(SelectionPolicy::Proximity, &failed),
            Some(PeerId(2))
        );
        failed.insert(PeerId(2));
        failed.insert(PeerId(3));
        assert_eq!(d.reassign(SelectionPolicy::Proximity, &failed), None);
    }

    #[test]
    fn uptime_defaults_to_one_until_synced() {
        let d = directory(2);
        assert_eq!(d.uptime(PeerId(0)), Some(1.0));
        assert_eq!(d.uptime(PeerId(9)), None);
    }

    #[test]
    #[should_panic(expected = "no trusted peers")]
    fn all_violators_panics_trust_policy() {
        let mut d = directory(1);
        d.record_violation(PeerId(0));
        let mut rng = StdRng::seed_from_u64(1);
        d.assign(&objects(1), SelectionPolicy::TrustWeighted, &mut rng);
    }

    #[test]
    #[should_panic(expected = "no peers recruited")]
    fn empty_directory_panics() {
        let mut d = PeerDirectory::new();
        let mut rng = StdRng::seed_from_u64(1);
        d.assign(&objects(1), SelectionPolicy::Random, &mut rng);
    }

    #[test]
    #[should_panic(expected = "no peers recruited")]
    fn all_dead_panics_like_empty() {
        let mut d = directory(2);
        d.mark_dead(PeerId(0));
        d.mark_dead(PeerId(1));
        let mut rng = StdRng::seed_from_u64(1);
        d.assign(&objects(1), SelectionPolicy::Random, &mut rng);
    }
}
