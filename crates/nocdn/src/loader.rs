//! The client-side loader.
//!
//! §IV-B / Fig. 2, item (d): the loader "fetches all objects from the
//! peers, verifies the objects' hashes, assembles the objects into an
//! integrated webpage and invokes the rendering function … Upon
//! finishing the page download, the script transfers a usage record to
//! each peer."
//!
//! In the paper this is plain JavaScript served by the provider (so it
//! works in "unmodified browsers"); here it is the same state machine as
//! a deterministic Rust type. Corrupted or missing objects fall back to
//! the origin — one malicious peer cannot poison a page, it only loses
//! its payment.

use crate::accounting::UsageRecord;
use crate::origin::ContentProvider;
use crate::peer::{NoCdnPeer, PeerId};
use crate::wrapper::WrapperPage;
use bytes::Bytes;
use hpop_crypto::nonce::Nonce;
use hpop_crypto::sha256::Sha256;
use std::collections::BTreeMap;

/// What happened during one page load.
#[derive(Clone, Debug, Default)]
pub struct LoaderReport {
    /// Verified bytes obtained from peers, per peer.
    pub bytes_from_peers: BTreeMap<u32, u64>,
    /// Bytes fetched from the origin as integrity/availability fallback.
    pub bytes_from_origin: u64,
    /// Objects whose peer copy failed hash verification.
    pub corrupted: Vec<String>,
    /// Objects whose peer was unresponsive.
    pub unavailable: Vec<String>,
    /// The assembled page size (all objects verified).
    pub page_bytes: u64,
}

impl LoaderReport {
    /// True when every object verified, whatever the source.
    pub fn complete(&self) -> bool {
        self.page_bytes > 0
    }

    /// Total verified bytes obtained from peers.
    pub fn total_peer_bytes(&self) -> u64 {
        self.bytes_from_peers.values().sum()
    }
}

/// The loader state machine.
#[derive(Debug)]
pub struct PageLoader {
    client: u64,
    nonce_counter: u64,
}

impl PageLoader {
    /// A loader for one client session.
    pub fn new(client: u64) -> PageLoader {
        PageLoader {
            client,
            nonce_counter: 0,
        }
    }

    /// Executes a wrapper page: fetch every object from its assigned
    /// peer, verify hashes, fall back to the origin on corruption or
    /// unavailability, assemble, and hand signed usage records to the
    /// peers that served verified bytes.
    ///
    /// Returns the report and the assembled page body.
    pub fn load(
        &mut self,
        wrapper: &WrapperPage,
        peers: &mut BTreeMap<PeerId, NoCdnPeer>,
        origin: &mut ContentProvider,
    ) -> (LoaderReport, Bytes) {
        let mut report = LoaderReport::default();
        let mut assembled = Vec::new();
        let host = origin.host().to_owned();
        for (path, &peer_id) in &wrapper.object_map {
            let expected = &wrapper.hashes[path];
            let from_peer = peers
                .get_mut(&peer_id)
                .and_then(|p| p.serve(&host, path, origin));
            let verified = match from_peer {
                Some(body) => {
                    if Sha256::digest(&body).ct_eq(expected) {
                        *report.bytes_from_peers.entry(peer_id.0).or_default() += body.len() as u64;
                        Some(body)
                    } else {
                        report.corrupted.push(path.clone());
                        None
                    }
                }
                None => {
                    report.unavailable.push(path.clone());
                    None
                }
            };
            // Integrity/availability fallback: the origin itself.
            let body = match verified {
                Some(b) => b,
                None => {
                    let b = origin
                        .fetch_object(path)
                        .expect("origin always has its own objects");
                    report.bytes_from_origin += b.len() as u64;
                    debug_assert!(Sha256::digest(&b).ct_eq(expected));
                    b
                }
            };
            assembled.extend_from_slice(&body);
        }
        report.page_bytes = assembled.len() as u64;

        // Usage records: one per peer that served verified bytes, signed
        // with the provider-issued short-term key, nonce'd against replay.
        // With the puzzle policy on, the peer must first solve the
        // accountability puzzle over its issued objects — an honest peer
        // just served them, so they are in its cache.
        for (&peer_raw, &bytes) in &report.bytes_from_peers {
            let peer_id = PeerId(peer_raw);
            let Some(key) = wrapper.peer_keys.get(&peer_id) else {
                continue;
            };
            self.nonce_counter += 1;
            let issued_paths: Vec<String> = wrapper
                .object_map
                .iter()
                .filter(|&(_, &p)| p == peer_id)
                .map(|(path, _)| path.clone())
                .collect();
            let objects = issued_paths.len() as u32;
            let nonce = Nonce::from_parts(self.client, self.nonce_counter);
            let proof = wrapper.puzzle.as_ref().and_then(|spec| {
                let challenge = spec.challenge(self.client, peer_id, nonce);
                peers
                    .get_mut(&peer_id)
                    .and_then(|p| p.prove_serve(&host, &issued_paths, &challenge, &spec.params))
            });
            let record = UsageRecord::sign_with_proof(
                key,
                peer_id,
                self.client,
                bytes,
                objects,
                nonce,
                proof,
            );
            if let Some(p) = peers.get_mut(&peer_id) {
                p.accept_record(record);
            }
        }
        (report, Bytes::from(assembled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::Accounting;
    use crate::origin::PageSpec;
    use crate::peer::PeerBehavior;

    const MASTER: [u8; 32] = [42u8; 32];

    fn setup(
        behaviors: &[PeerBehavior],
    ) -> (
        ContentProvider,
        BTreeMap<PeerId, NoCdnPeer>,
        Accounting,
        WrapperPage,
    ) {
        let mut p = ContentProvider::new("news.example");
        p.put_object("/index.html", vec![b'h'; 1_000]);
        p.put_object("/a.css", vec![b'a'; 10_000]);
        p.put_object("/b.jpg", vec![b'b'; 100_000]);
        p.put_page(PageSpec {
            container: "/index.html".into(),
            embedded: vec!["/a.css".into(), "/b.jpg".into()],
        });
        let peers: BTreeMap<PeerId, NoCdnPeer> = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    PeerId(i as u32),
                    NoCdnPeer::with_behavior(PeerId(i as u32), b),
                )
            })
            .collect();
        // Round-robin object assignment across the peers.
        let objects = ["/index.html", "/a.css", "/b.jpg"];
        let assignments: BTreeMap<String, PeerId> = objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.to_string(), PeerId((i % behaviors.len()) as u32)))
            .collect();
        let mut acct = Accounting::new();
        let w = WrapperPage::generate(
            &mut p,
            "/index.html",
            1,
            &assignments,
            &mut acct,
            &MASTER,
            true,
        );
        (p, peers, acct, w)
    }

    #[test]
    fn honest_peers_serve_everything() {
        let (mut origin, mut peers, mut acct, w) = setup(&[PeerBehavior::Honest; 2]);
        let mut loader = PageLoader::new(1);
        let (report, page) = loader.load(&w, &mut peers, &mut origin);
        assert!(report.complete());
        assert_eq!(report.page_bytes, 111_000);
        assert_eq!(page.len(), 111_000);
        assert!(report.corrupted.is_empty());
        assert_eq!(report.bytes_from_origin, 0);
        assert_eq!(report.total_peer_bytes(), 111_000);
        // Records settle cleanly.
        for (_, peer) in peers.iter_mut() {
            for r in peer.upload_records() {
                acct.settle(&r).unwrap();
            }
        }
        assert_eq!(
            acct.payable_bytes(PeerId(0)) + acct.payable_bytes(PeerId(1)),
            111_000
        );
    }

    #[test]
    fn corruption_detected_and_fallback_used() {
        let (mut origin, mut peers, mut acct, w) =
            setup(&[PeerBehavior::Honest, PeerBehavior::CorruptsContent]);
        let mut loader = PageLoader::new(1);
        let (report, page) = loader.load(&w, &mut peers, &mut origin);
        // Object "/a.css" (index 1) was corrupted; detected 100%.
        assert_eq!(report.corrupted, vec!["/a.css".to_owned()]);
        assert_eq!(report.bytes_from_origin, 10_000);
        // The page still assembled correctly (user never sees bad bytes).
        assert_eq!(page.len(), 111_000);
        // The corrupting peer earns nothing for the corrupted object.
        for (_, peer) in peers.iter_mut() {
            for r in peer.upload_records() {
                let _ = acct.settle(&r);
            }
        }
        assert_eq!(acct.payable_bytes(PeerId(1)), 0);
    }

    #[test]
    fn unresponsive_peer_falls_back() {
        let (mut origin, mut peers, _acct, w) =
            setup(&[PeerBehavior::Unresponsive, PeerBehavior::Honest]);
        let mut loader = PageLoader::new(1);
        let (report, _page) = loader.load(&w, &mut peers, &mut origin);
        // Two objects were mapped to peer 0 (index.html, b.jpg).
        assert_eq!(report.unavailable.len(), 2);
        assert_eq!(report.bytes_from_origin, 101_000);
        assert!(report.complete());
    }

    #[test]
    fn inflated_uploads_rejected_by_accounting() {
        let (mut origin, mut peers, mut acct, w) =
            setup(&[PeerBehavior::InflatesUsage(50), PeerBehavior::Honest]);
        let mut loader = PageLoader::new(1);
        let _ = loader.load(&w, &mut peers, &mut origin);
        let mut rejected = 0;
        for (_, peer) in peers.iter_mut() {
            for r in peer.upload_records() {
                if acct.settle(&r).is_err() {
                    rejected += 1;
                }
            }
        }
        assert_eq!(rejected, 1);
        // The inflating peer is paid nothing.
        assert_eq!(acct.payable_bytes(PeerId(0)), 0);
        assert!(acct.payable_bytes(PeerId(1)) > 0);
    }

    /// With the accountability-puzzle defense on, honest loads settle
    /// with zero false rejections: the loader gathers proofs from the
    /// serving peers and the provider verifies them against its own
    /// bytes.
    #[test]
    fn puzzle_policy_honest_path_settles() {
        use crate::puzzle::PuzzleSpec;
        use hpop_crypto::puzzle::PuzzleParams;

        let mut p = ContentProvider::new("news.example");
        p.put_object("/index.html", vec![b'h'; 1_000]);
        p.put_object("/a.css", vec![b'a'; 10_000]);
        p.put_page(PageSpec {
            container: "/index.html".into(),
            embedded: vec!["/a.css".into()],
        });
        let mut peers: BTreeMap<PeerId, NoCdnPeer> = (0..2u32)
            .map(|i| (PeerId(i), NoCdnPeer::new(PeerId(i))))
            .collect();
        let assignments: BTreeMap<String, PeerId> = [
            ("/index.html".to_owned(), PeerId(0)),
            ("/a.css".to_owned(), PeerId(1)),
        ]
        .into();
        let mut acct = Accounting::new();
        acct.set_puzzle(PuzzleSpec::for_epoch(&MASTER, 1, PuzzleParams::default()));
        let w = WrapperPage::generate(
            &mut p,
            "/index.html",
            1,
            &assignments,
            &mut acct,
            &MASTER,
            true,
        );
        assert!(w.puzzle.is_some());
        let mut loader = PageLoader::new(1);
        let (report, _) = loader.load(&w, &mut peers, &mut p);
        assert!(report.complete());
        for (_, peer) in peers.iter_mut() {
            assert!(peer.puzzle_work_bytes > 0, "honest peers solved puzzles");
            for r in peer.upload_records() {
                assert!(r.proof.is_some());
                acct.settle_with(&r, |path| p.peek_object(path).cloned())
                    .unwrap();
            }
        }
        assert_eq!(
            acct.payable_bytes(PeerId(0)) + acct.payable_bytes(PeerId(1)),
            11_000
        );
        assert!(acct.rejections().is_empty(), "zero honest false rejections");
    }

    #[test]
    fn all_origin_when_every_peer_is_bad() {
        let (mut origin, mut peers, _, w) = setup(&[PeerBehavior::CorruptsContent; 3]);
        let mut loader = PageLoader::new(1);
        let (report, page) = loader.load(&w, &mut peers, &mut origin);
        assert_eq!(report.corrupted.len(), 3);
        assert_eq!(report.bytes_from_origin, 111_000);
        assert_eq!(page.len(), 111_000);
        assert_eq!(report.total_peer_bytes(), 0);
    }
}
