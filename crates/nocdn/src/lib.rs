//! # hpop-nocdn — CDN-less content delivery (paper §IV-B)
//!
//! "Ultrabroadband affords the opportunity for an alternative approach to
//! achieving scalable content delivery whereby content providers recruit
//! well-connected users to allow their HPoPs to be effectively used as
//! 'edge servers' in an ad hoc CDN … we eliminate the third-party CDN
//! altogether. We highlight this distinction by calling our approach
//! NoCDN."
//!
//! Because peers are *untrusted* (unlike a CDN's own servers), the design
//! has no loose handoffs: the provider serves a signed **wrapper page**
//! and everything else is orchestrated by the client-side **loader**
//! (standard JavaScript in the paper; a deterministic state machine
//! here), which verifies every object hash and signs usage records with
//! provider-issued short-term keys.
//!
//! - [`origin`] — the content provider's origin server and page catalog.
//! - [`peer`] — recruited HPoP peers: reverse proxies with virtual
//!   hosting, caches, and (for experiments) malicious behaviors.
//! - [`wrapper`] — wrapper-page generation: peer map, per-object
//!   SHA-256 hashes, short-term keys.
//! - [`loader`] — the client loader: fetch, verify, fall back to origin
//!   on corruption, assemble, sign usage records.
//! - [`accounting`] — provider-side verification of usage records:
//!   HMAC checks, nonce replay, work cross-checks, collusion/anomaly
//!   detection.
//! - [`durable`] — crash-consistent accounting: issuances and the
//!   nonce replay registry behind a write-ahead log, so a provider
//!   restart cannot be exploited for double settlement.
//! - [`puzzle`] — the provider-side accountability-puzzle policy
//!   (CAPnet-style): per-epoch seeds and challenge binding, so a usage
//!   record is payable only with a verified data-dependent proof of
//!   serving.
//! - [`attack`] — adversarial accounting campaigns (Sybil swarms,
//!   collusion at scale, record laundering, adaptive throttling) and
//!   the executor that measures attacker profit with the defense on
//!   and off (experiment E25).
//! - [`select`] — peer-selection policies (random / round-robin /
//!   proximity / trust-weighted) — the ablation §IV-B calls an open
//!   problem.
//! - [`chunked`] — multi-peer range-request downloads ("Leveraging
//!   Redundancy"), including the resilient client
//!   ([`chunked::ResilientFetcher`]): breaker-gated peer selection,
//!   budgeted retries, p99-informed hedging and origin fallback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

pub mod accounting;
pub mod attack;
pub mod chunked;
pub mod durable;
pub mod loader;
pub mod origin;
pub mod peer;
pub mod puzzle;
pub mod select;
pub mod wrapper;

pub use accounting::{Accounting, UsageRecord};
pub use chunked::{ChunkedReport, ResilientFetcher};
pub use durable::DurableAccounting;
pub use loader::{LoaderReport, PageLoader};
pub use origin::{ContentProvider, PageSpec};
pub use peer::{NoCdnPeer, PeerBehavior, PeerId};
pub use puzzle::PuzzleSpec;
pub use select::SelectionPolicy;
pub use wrapper::WrapperPage;
