//! Recruited HPoP peers: reverse proxies with caches.
//!
//! §IV-B: "Each NoCDN peer acts as a normal reverse proxy when
//! processing user requests — i.e., the peer serves the requested object
//! from its cache if available or, if not, obtains the object from the
//! origin server, forwards it to the user, and caches it locally …
//! standard Apache in reverse proxy mode with virtual hosting — to allow
//! a peer to sign up for content delivery with multiple content
//! providers."
//!
//! Since "users must explicitly sign up to become a peer … there is more
//! danger that an attacker would sign up with an intent of corrupting
//! the content", peers carry a [`PeerBehavior`] the integrity and
//! accounting experiments exercise.

use crate::accounting::UsageRecord;
use crate::origin::ContentProvider;
use bytes::Bytes;
use hpop_crypto::puzzle::{self, PuzzleChallenge, PuzzleParams, PuzzleProof};
use std::collections::BTreeMap;

/// Identifies a recruited peer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerId(pub u32);

/// How a peer behaves (the threat model of §IV-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PeerBehavior {
    /// Faithful reverse proxy.
    #[default]
    Honest,
    /// Corrupts every object it serves (content-integrity attack).
    CorruptsContent,
    /// Serves honestly but inflates the byte counts of the usage records
    /// it uploads by this factor (accounting attack).
    InflatesUsage(u32),
    /// Offline/unresponsive (failure injection).
    Unresponsive,
    /// Serves only the first half of every object (truncation fault:
    /// same-prefix bytes, so only length/hash checks reveal it).
    Truncates,
    /// Serves honestly to real clients, but also participates in an
    /// attack campaign: it countersigns fabricated usage records that
    /// colluding (often Sybil) clients mint for traffic that never
    /// happened. The serving path is indistinguishable from
    /// [`PeerBehavior::Honest`] — the fraud is entirely in the
    /// accounting plane, which is what makes the campaign hard to catch
    /// without the accountability puzzle (experiment E25).
    Colluding,
}

/// A recruited HPoP acting as an edge server.
#[derive(Clone, Debug)]
pub struct NoCdnPeer {
    id: PeerId,
    behavior: PeerBehavior,
    /// (host, path) → cached object (virtual hosting: many providers on
    /// one appliance).
    cache: BTreeMap<(String, String), Bytes>,
    /// Usage records accumulated from clients, pending upload.
    pending_records: Vec<UsageRecord>,
    /// Bytes this peer actually served to clients (ground truth the
    /// accounting experiment compares reported bytes against).
    pub bytes_served: u64,
    /// Cache hits / misses.
    pub cache_hits: u64,
    /// Cache misses (origin fills).
    pub cache_misses: u64,
    /// Data bytes this peer walked solving accountability puzzles (the
    /// attacker/honest work currency experiment E25 budgets).
    pub puzzle_work_bytes: u64,
}

impl NoCdnPeer {
    /// Creates an honest peer.
    pub fn new(id: PeerId) -> NoCdnPeer {
        NoCdnPeer {
            id,
            behavior: PeerBehavior::Honest,
            cache: BTreeMap::new(),
            pending_records: Vec::new(),
            bytes_served: 0,
            cache_hits: 0,
            cache_misses: 0,
            puzzle_work_bytes: 0,
        }
    }

    /// Creates a peer with an explicit behavior.
    pub fn with_behavior(id: PeerId, behavior: PeerBehavior) -> NoCdnPeer {
        NoCdnPeer {
            behavior,
            ..NoCdnPeer::new(id)
        }
    }

    /// The peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's configured behavior.
    pub fn behavior(&self) -> PeerBehavior {
        self.behavior
    }

    /// Serves an object for `host`/`path` as a reverse proxy: cache hit,
    /// or origin fill then cache. Returns `None` when unresponsive or
    /// the origin lacks the object.
    pub fn serve(&mut self, host: &str, path: &str, origin: &mut ContentProvider) -> Option<Bytes> {
        if self.behavior == PeerBehavior::Unresponsive {
            return None;
        }
        let key = (host.to_owned(), path.to_owned());
        let m = hpop_obs::metrics();
        let body = match self.cache.get(&key) {
            Some(b) => {
                self.cache_hits += 1;
                m.counter("nocdn.peer.cache_hit").incr();
                b.clone()
            }
            None => {
                let b = origin.fetch_object(path)?;
                self.cache_misses += 1;
                m.counter("nocdn.peer.cache_miss").incr();
                self.cache.insert(key, b.clone());
                b
            }
        };
        let out = match self.behavior {
            PeerBehavior::CorruptsContent => corrupt(&body),
            PeerBehavior::Truncates => body.slice(..body.len() / 2),
            _ => body,
        };
        self.bytes_served += out.len() as u64;
        m.histogram("nocdn.serve.bytes").record(out.len() as u64);
        Some(out)
    }

    /// Accepts a client's signed usage record for later upload.
    pub fn accept_record(&mut self, record: UsageRecord) {
        self.pending_records.push(record);
    }

    /// Uploads accumulated records to the provider (returning them),
    /// applying the inflation attack if configured. "The NoCDN peers
    /// accumulate usage records and periodically upload them to the
    /// content provider for payment."
    pub fn upload_records(&mut self) -> Vec<UsageRecord> {
        let mut records = std::mem::take(&mut self.pending_records);
        if let PeerBehavior::InflatesUsage(factor) = self.behavior {
            for r in &mut records {
                // The peer can alter the claimed bytes — but not re-sign,
                // since the signing key belongs to the client+provider.
                r.bytes *= factor as u64;
            }
        }
        records
    }

    /// Solves the accountability puzzle over the peer's cached copies
    /// of `paths` (sorted order, the provider's canonical concatenation)
    /// under `challenge`. Returns `None` when any object is not cached
    /// — a peer that never held the bytes cannot produce a proof, which
    /// is the entire defense. The data bytes walked are charged to
    /// [`NoCdnPeer::puzzle_work_bytes`].
    pub fn prove_serve(
        &mut self,
        host: &str,
        paths: &[String],
        challenge: &PuzzleChallenge,
        params: &PuzzleParams,
    ) -> Option<PuzzleProof> {
        let mut sorted: Vec<&String> = paths.iter().collect();
        sorted.sort();
        let mut data = Vec::new();
        for path in sorted {
            let body = self.cache.get(&(host.to_owned(), path.clone()))?;
            data.extend_from_slice(body);
        }
        let (proof, work) = puzzle::solve(challenge, &data, params);
        self.puzzle_work_bytes += work.data_bytes;
        Some(proof)
    }

    /// Number of cached objects.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// Deterministic corruption: flip one byte in every 4 KiB block (so any
/// range-request chunk of the object is affected), same length — only
/// hash checks can catch it.
fn corrupt(body: &Bytes) -> Bytes {
    if body.is_empty() {
        return Bytes::from_static(b"\xff");
    }
    let mut v = body.to_vec();
    let mut i = 0;
    while i < v.len() {
        v[i] ^= 0xff;
        i += 4096;
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> ContentProvider {
        let mut p = ContentProvider::new("news.example");
        p.put_object("/a.css", vec![1u8; 100]);
        p
    }

    #[test]
    fn cache_fill_then_hit() {
        let mut o = origin();
        let mut peer = NoCdnPeer::new(PeerId(1));
        let b1 = peer.serve("news.example", "/a.css", &mut o).unwrap();
        assert_eq!(b1.len(), 100);
        assert_eq!(o.origin_requests, 1);
        let _ = peer.serve("news.example", "/a.css", &mut o).unwrap();
        // Second request: no extra origin traffic.
        assert_eq!(o.origin_requests, 1);
        assert_eq!((peer.cache_hits, peer.cache_misses), (1, 1));
        assert_eq!(peer.bytes_served, 200);
        assert_eq!(peer.cache_len(), 1);
    }

    #[test]
    fn virtual_hosting_separates_providers() {
        let mut o1 = origin();
        let mut o2 = ContentProvider::new("video.example");
        o2.put_object("/a.css", vec![2u8; 50]);
        let mut peer = NoCdnPeer::new(PeerId(1));
        let b1 = peer.serve("news.example", "/a.css", &mut o1).unwrap();
        let b2 = peer.serve("video.example", "/a.css", &mut o2).unwrap();
        assert_ne!(b1, b2);
        assert_eq!(peer.cache_len(), 2);
    }

    #[test]
    fn corrupting_peer_alters_bytes() {
        let mut o = origin();
        let mut peer = NoCdnPeer::with_behavior(PeerId(2), PeerBehavior::CorruptsContent);
        let b = peer.serve("news.example", "/a.css", &mut o).unwrap();
        assert_ne!(&b[..], &[1u8; 100][..]);
        assert_eq!(b.len(), 100); // same size — only hashes reveal it
    }

    #[test]
    fn unresponsive_peer_serves_nothing() {
        let mut o = origin();
        let mut peer = NoCdnPeer::with_behavior(PeerId(3), PeerBehavior::Unresponsive);
        assert!(peer.serve("news.example", "/a.css", &mut o).is_none());
        assert_eq!(o.origin_requests, 0);
    }

    #[test]
    fn prove_serve_requires_cached_bytes() {
        let mut o = origin();
        let mut peer = NoCdnPeer::new(PeerId(5));
        let chal = PuzzleChallenge([7u8; 32]);
        let params = PuzzleParams::default();
        let paths = vec!["/a.css".to_owned()];
        // Never served → nothing cached → no proof possible.
        assert!(peer
            .prove_serve("news.example", &paths, &chal, &params)
            .is_none());
        peer.serve("news.example", "/a.css", &mut o).unwrap();
        let proof = peer
            .prove_serve("news.example", &paths, &chal, &params)
            .unwrap();
        assert!(peer.puzzle_work_bytes > 0);
        let (ok, _) = puzzle::verify(&chal, &[1u8; 100], &proof, &params);
        assert!(ok, "proof verifies against the authentic bytes");
    }

    #[test]
    fn inflation_alters_uploaded_records_only() {
        let mut peer = NoCdnPeer::with_behavior(PeerId(4), PeerBehavior::InflatesUsage(10));
        peer.accept_record(UsageRecord::unsigned_for_tests(PeerId(4), 100));
        let up = peer.upload_records();
        assert_eq!(up[0].bytes, 1000);
        // A second upload has nothing left.
        assert!(peer.upload_records().is_empty());
    }
}
