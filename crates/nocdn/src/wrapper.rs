//! Wrapper-page generation.
//!
//! §IV-B / Fig. 2: on a page request, "the content provider returns a
//! *wrapper page*, which (a) lists the IP address of a peer from which to
//! fetch the container object, (b) maps the URL for each recursively
//! embedded object to the IP address of a peer …, (c) includes a
//! cryptographic hash of all page objects, as well as a unique
//! short-term secret key for each peer listed …, and (d) includes a
//! JavaScript loader script."
//!
//! The origin thus serves only this small page; everything heavy comes
//! from peers — the offload experiment's core mechanism.

use crate::accounting::Accounting;
use crate::origin::ContentProvider;
use crate::peer::PeerId;
use crate::puzzle::PuzzleSpec;
use hpop_crypto::sha256::{Digest, Sha256};
use std::collections::BTreeMap;

/// Approximate serialized size of the loader script. §IV-B notes it is
/// "generic and can be cached by the browsers", so it is excluded from
/// per-request wrapper bytes after the first visit.
pub const LOADER_SCRIPT_BYTES: u64 = 4_096;

/// The wrapper page for one client's page view.
#[derive(Clone, Debug)]
pub struct WrapperPage {
    /// The page's container path.
    pub page: String,
    /// The requesting client (the provider's session id for it).
    pub client: u64,
    /// Object path → peer assigned to serve it. The container object is
    /// in here too (§IV-B item (a)).
    pub object_map: BTreeMap<String, PeerId>,
    /// Object path → SHA-256 of the authentic bytes (§IV-B item (c)).
    pub hashes: BTreeMap<String, Digest>,
    /// Peer → short-term secret key for usage-record signing.
    pub peer_keys: BTreeMap<PeerId, [u8; 32]>,
    /// The provider's accountability-puzzle policy for this epoch, when
    /// the defense is on: peers must attach a proof of serving to every
    /// usage record (see [`crate::puzzle`]).
    pub puzzle: Option<PuzzleSpec>,
    /// Whether the (cacheable) loader script was included this time.
    pub includes_loader: bool,
}

impl WrapperPage {
    /// Generates a wrapper page at the provider.
    ///
    /// `assignments` maps each page object to the peer chosen by the
    /// selection policy; `accounting` records each peer's issued work so
    /// later usage claims can be cross-checked; the wrapper's wire size
    /// is charged to the origin's counters.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown or an assignment is missing — both
    /// provider-side bugs, not runtime conditions.
    pub fn generate(
        provider: &mut ContentProvider,
        page_path: &str,
        client: u64,
        assignments: &BTreeMap<String, PeerId>,
        accounting: &mut Accounting,
        master_key: &[u8; 32],
        first_visit: bool,
    ) -> WrapperPage {
        let page = provider
            .page(page_path)
            .unwrap_or_else(|| panic!("unknown page {page_path}"))
            .clone();
        let mut object_map = BTreeMap::new();
        let mut hashes = BTreeMap::new();
        let mut per_peer_bytes: BTreeMap<PeerId, u64> = BTreeMap::new();
        let mut per_peer_objects: BTreeMap<PeerId, Vec<String>> = BTreeMap::new();
        for obj in page.objects() {
            let peer = *assignments
                .get(obj)
                .unwrap_or_else(|| panic!("no peer assigned for {obj}"));
            let body = provider
                .peek_object(obj)
                .unwrap_or_else(|| panic!("page object {obj} missing"));
            object_map.insert(obj.to_owned(), peer);
            hashes.insert(obj.to_owned(), Sha256::digest(body));
            *per_peer_bytes.entry(peer).or_default() += body.len() as u64;
            per_peer_objects
                .entry(peer)
                .or_default()
                .push(obj.to_owned());
        }
        let mut peer_keys = BTreeMap::new();
        for (&peer, &max_bytes) in &per_peer_bytes {
            let key = accounting.issue_with_objects(
                client,
                peer,
                max_bytes,
                &per_peer_objects[&peer],
                master_key,
            );
            peer_keys.insert(peer, key);
        }
        let wrapper = WrapperPage {
            page: page_path.to_owned(),
            client,
            object_map,
            hashes,
            peer_keys,
            puzzle: accounting.puzzle_spec().copied(),
            includes_loader: first_visit,
        };
        provider.count_wrapper(wrapper.wire_size());
        wrapper
    }

    /// Approximate wire size: per-object map + hash entries, per-peer
    /// keys, plus the loader script on first visit.
    pub fn wire_size(&self) -> u64 {
        let per_object: u64 = self
            .object_map
            .keys()
            .map(|p| p.len() as u64 + 8 + 32) // path + peer addr + hash
            .sum();
        let per_peer = self.peer_keys.len() as u64 * 40; // addr + key
        let base = 256; // headers, markup
        base + per_object
            + per_peer
            + if self.includes_loader {
                LOADER_SCRIPT_BYTES
            } else {
                0
            }
    }

    /// The peers this wrapper references.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.peer_keys.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::PageSpec;

    const MASTER: [u8; 32] = [42u8; 32];

    fn provider() -> ContentProvider {
        let mut p = ContentProvider::new("news.example");
        p.put_object("/index.html", vec![b'h'; 2_000]);
        p.put_object("/style.css", vec![b'c'; 10_000]);
        p.put_object("/hero.jpg", vec![b'j'; 500_000]);
        p.put_page(PageSpec {
            container: "/index.html".into(),
            embedded: vec!["/style.css".into(), "/hero.jpg".into()],
        });
        p
    }

    fn assign_all(peer: PeerId) -> BTreeMap<String, PeerId> {
        ["/index.html", "/style.css", "/hero.jpg"]
            .iter()
            .map(|s| (s.to_string(), peer))
            .collect()
    }

    #[test]
    fn wrapper_carries_hashes_and_keys() {
        let mut p = provider();
        let mut acct = Accounting::new();
        let w = WrapperPage::generate(
            &mut p,
            "/index.html",
            1,
            &assign_all(PeerId(3)),
            &mut acct,
            &MASTER,
            true,
        );
        assert_eq!(w.object_map.len(), 3);
        assert_eq!(w.hashes.len(), 3);
        assert_eq!(w.peer_keys.len(), 1);
        assert!(w.peer_keys.contains_key(&PeerId(3)));
        // The hash matches the authentic object.
        let expect = Sha256::digest(p.peek_object("/hero.jpg").unwrap());
        assert_eq!(w.hashes["/hero.jpg"], expect);
    }

    #[test]
    fn wrapper_is_tiny_compared_to_page() {
        let mut p = provider();
        let mut acct = Accounting::new();
        let w = WrapperPage::generate(
            &mut p,
            "/index.html",
            1,
            &assign_all(PeerId(0)),
            &mut acct,
            &MASTER,
            false,
        );
        let page_bytes = p.page_bytes("/index.html").unwrap();
        assert!(
            w.wire_size() * 100 < page_bytes,
            "wrapper {} vs page {page_bytes}",
            w.wire_size()
        );
        // The origin was charged only the wrapper.
        assert_eq!(p.wrapper_bytes, w.wire_size());
        assert_eq!(p.origin_bytes, 0);
    }

    #[test]
    fn loader_script_only_on_first_visit() {
        let mut p = provider();
        let mut acct = Accounting::new();
        let first = WrapperPage::generate(
            &mut p,
            "/index.html",
            1,
            &assign_all(PeerId(0)),
            &mut acct,
            &MASTER,
            true,
        );
        let later = WrapperPage::generate(
            &mut p,
            "/index.html",
            1,
            &assign_all(PeerId(0)),
            &mut acct,
            &MASTER,
            false,
        );
        assert_eq!(first.wire_size() - later.wire_size(), LOADER_SCRIPT_BYTES);
    }

    #[test]
    fn issued_work_matches_mapped_bytes() {
        let mut p = provider();
        let mut acct = Accounting::new();
        // Split objects across two peers.
        let mut assignments = assign_all(PeerId(1));
        assignments.insert("/hero.jpg".into(), PeerId(2));
        let w = WrapperPage::generate(
            &mut p,
            "/index.html",
            7,
            &assignments,
            &mut acct,
            &MASTER,
            false,
        );
        assert_eq!(w.peers().count(), 2);
        // Peer 2 was issued exactly the hero image's 500 KB; a claim
        // above that is rejected downstream (tested in accounting).
        use crate::accounting::UsageRecord;
        use hpop_crypto::nonce::Nonce;
        let key = w.peer_keys[&PeerId(2)];
        let ok = UsageRecord::sign(&key, PeerId(2), 7, 500_000, 1, Nonce(1));
        assert!(acct.settle(&ok).is_ok());
        let over = UsageRecord::sign(&key, PeerId(2), 7, 500_001, 1, Nonce(2));
        assert!(acct.settle(&over).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown page")]
    fn unknown_page_panics() {
        let mut p = provider();
        let mut acct = Accounting::new();
        WrapperPage::generate(
            &mut p,
            "/ghost.html",
            1,
            &BTreeMap::new(),
            &mut acct,
            &MASTER,
            true,
        );
    }
}
