//! Durable fabric state: incarnation numbers and the reputation ledger.
//!
//! ## Why incarnations must survive a crash
//!
//! SWIM refutation is incarnation-based: a rejoining peer overrides the
//! death certificates circulating about it by re-announcing at a
//! *higher* incarnation than any record the membership holds. A cleanly
//! partitioned appliance remembers its incarnation and the scheme just
//! works — but a *crashed* appliance restarts with amnesia. If it
//! rejoins at incarnation 0 while the neighborhood holds `Dead@N`, its
//! announcements lose every merge until enough gossip about its own
//! death reaches it to trigger self-defense bumps past `N`. During that
//! window the peer is up yet believed dead — the "rejoin window" the
//! detector scoring used to special-case. [`IncarnationStore`] removes
//! the window at its source: every self-incarnation change is written
//! through to stable storage, and [`crate::Fabric::set_up`] resumes a
//! rejoining peer at `max(in-memory, persisted) + 1`, which is strictly
//! above anything the membership can hold.
//!
//! ## Why the ledger must survive a crash
//!
//! §IV-C: "a misbehaving peer can be expelled from the collective" —
//! but only if the evidence survives the collective's own restarts. A
//! reputation ledger that forgets on reboot gives every offender a
//! clean slate each power cut. [`DurableReputation`] WAL-logs each
//! violation; scores are replayed (same multiplicative order, same
//! floats) or restored from snapshots bit-for-bit.

use crate::member::PeerId;
use crate::reputation::{PeerLedgerEntry, ReputationLedger, Violation};
use hpop_durability::codec::{ByteReader, ByteWriter};
use hpop_durability::{DurabilityConfig, Durable, Persistent, RecoveryReport};
use hpop_netsim::storage::{DiskError, SimDisk};
use std::collections::BTreeMap;

/// Peer id → highest self-incarnation ever announced.
#[derive(Clone, Debug, Default)]
pub struct IncMap {
    map: BTreeMap<u64, u64>,
}

impl Durable for IncMap {
    fn fresh() -> IncMap {
        IncMap::default()
    }

    fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.map.len() as u64);
        for (id, inc) in &self.map {
            w.u64(*id).u64(*inc);
        }
        w.into_bytes()
    }

    fn decode_state(bytes: &[u8]) -> Option<IncMap> {
        let mut r = ByteReader::new(bytes);
        let n = r.u64()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let id = r.u64()?;
            map.insert(id, r.u64()?);
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(IncMap { map })
    }

    fn apply(&mut self, op: &[u8]) {
        let mut r = ByteReader::new(op);
        if let (Some(id), Some(inc)) = (r.u64(), r.u64()) {
            let cur = self.map.entry(id).or_insert(0);
            *cur = (*cur).max(inc);
        }
    }
}

/// Write-through store of each appliance's own incarnation number —
/// the NVRAM that survives power loss and lets a crashed peer rejoin
/// above every stale record about it.
#[derive(Clone, Debug)]
pub struct IncarnationStore {
    inner: Persistent<IncMap>,
}

impl IncarnationStore {
    /// Opens (recovers or initializes) the store under `dir`.
    pub fn open(disk: SimDisk, dir: &str, cfg: DurabilityConfig) -> Result<Self, DiskError> {
        Ok(IncarnationStore {
            inner: Persistent::open(disk, dir, cfg)?,
        })
    }

    /// Durably records that `id` announced incarnation `inc`. Values
    /// only ever ratchet upward; recording a stale lower value is a
    /// committed no-op.
    pub fn record(&mut self, id: PeerId, inc: u64) -> Result<(), DiskError> {
        let mut w = ByteWriter::new();
        w.u64(id.0).u64(inc);
        self.inner.execute(&w.into_bytes())
    }

    /// The highest incarnation ever recorded for `id` (0 if none).
    pub fn get(&self, id: PeerId) -> u64 {
        self.inner.state().map.get(&id.0).copied().unwrap_or(0)
    }

    /// How the last open recovered.
    pub fn last_recovery(&self) -> &RecoveryReport {
        self.inner.last_recovery()
    }

    /// Highest committed op sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.inner.committed_seq()
    }

    /// The underlying device.
    pub fn disk(&self) -> &SimDisk {
        self.inner.disk()
    }

    /// Tears down the process, keeping the platters.
    pub fn into_disk(self) -> SimDisk {
        self.inner.into_disk()
    }
}

fn violation_to_u8(v: Violation) -> u8 {
    match v {
        Violation::Integrity => 0,
        Violation::Accounting => 1,
        Violation::Misrouting => 2,
        Violation::ShardLoss => 3,
        Violation::Unresponsive => 4,
    }
}

fn violation_from_u8(v: u8) -> Option<Violation> {
    match v {
        0 => Some(Violation::Integrity),
        1 => Some(Violation::Accounting),
        2 => Some(Violation::Misrouting),
        3 => Some(Violation::ShardLoss),
        4 => Some(Violation::Unresponsive),
        _ => None,
    }
}

/// [`ReputationLedger`] as a [`Durable`] state. Scores are stored as
/// raw f64 bits, so a snapshot round-trip is exact; replay reproduces
/// them identically because violations apply in committed order.
#[derive(Clone, Debug, Default)]
pub struct RepState {
    ledger: ReputationLedger,
}

impl Durable for RepState {
    fn fresh() -> RepState {
        RepState::default()
    }

    fn encode_state(&self) -> Vec<u8> {
        let entries = self.ledger.entries();
        let mut w = ByteWriter::new();
        w.u64(entries.len() as u64);
        for (id, e) in entries {
            w.u64(id.0)
                .u32(e.total)
                .f64(e.score)
                .u64(e.counts.len() as u64);
            for (kind, n) in &e.counts {
                w.u8(violation_to_u8(*kind)).u32(*n);
            }
        }
        w.into_bytes()
    }

    fn decode_state(bytes: &[u8]) -> Option<RepState> {
        let mut r = ByteReader::new(bytes);
        let n = r.u64()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let id = PeerId(r.u64()?);
            let total = r.u32()?;
            let score = r.f64()?;
            let n_counts = r.u64()?;
            let mut counts = BTreeMap::new();
            for _ in 0..n_counts {
                let kind = violation_from_u8(r.u8()?)?;
                counts.insert(kind, r.u32()?);
            }
            entries.insert(
                id,
                PeerLedgerEntry {
                    counts,
                    total,
                    score,
                },
            );
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(RepState {
            ledger: ReputationLedger::restore(entries),
        })
    }

    fn apply(&mut self, op: &[u8]) {
        let mut r = ByteReader::new(op);
        if let (Some(id), Some(kind)) = (r.u64(), r.u8().and_then(violation_from_u8)) {
            self.ledger.record_violation(PeerId(id), kind);
        }
    }
}

/// Crash-consistent reputation: every recorded violation is durable
/// before it is acknowledged, so offenders do not get a clean slate
/// from a reboot.
#[derive(Clone, Debug)]
pub struct DurableReputation {
    inner: Persistent<RepState>,
}

impl DurableReputation {
    /// Opens (recovers or initializes) the ledger under `dir`.
    pub fn open(disk: SimDisk, dir: &str, cfg: DurabilityConfig) -> Result<Self, DiskError> {
        Ok(DurableReputation {
            inner: Persistent::open(disk, dir, cfg)?,
        })
    }

    /// Durable [`ReputationLedger::record_violation`]; returns the new
    /// score.
    pub fn record_violation(&mut self, id: PeerId, kind: Violation) -> Result<f64, DiskError> {
        let mut w = ByteWriter::new();
        w.u64(id.0).u8(violation_to_u8(kind));
        self.inner.execute(&w.into_bytes())?;
        Ok(self.inner.state().ledger.score(id))
    }

    /// Read-only view of the recovered/live ledger.
    pub fn ledger(&self) -> &ReputationLedger {
        &self.inner.state().ledger
    }

    /// How the last open recovered.
    pub fn last_recovery(&self) -> &RecoveryReport {
        self.inner.last_recovery()
    }

    /// The underlying device.
    pub fn disk(&self) -> &SimDisk {
        self.inner.disk()
    }

    /// Tears down the process, keeping the platters.
    pub fn into_disk(self) -> SimDisk {
        self.inner.into_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpop_durability::crash_matrix;

    #[test]
    fn incarnations_ratchet_and_survive_restart() {
        let mut store =
            IncarnationStore::open(SimDisk::new(3), "inc", DurabilityConfig::default()).unwrap();
        store.record(PeerId(7), 3).unwrap();
        store.record(PeerId(7), 9).unwrap();
        store.record(PeerId(7), 5).unwrap(); // stale: committed no-op
        store.record(PeerId(8), 1).unwrap();
        assert_eq!(store.get(PeerId(7)), 9);

        let mut disk = store.into_disk();
        disk.restart();
        let store = IncarnationStore::open(disk, "inc", DurabilityConfig::default()).unwrap();
        assert_eq!(store.get(PeerId(7)), 9);
        assert_eq!(store.get(PeerId(8)), 1);
        assert_eq!(store.get(PeerId(9)), 0);
    }

    #[test]
    fn reputation_scores_survive_restart_bit_for_bit() {
        let mut rep =
            DurableReputation::open(SimDisk::new(4), "rep", DurabilityConfig::default()).unwrap();
        rep.record_violation(PeerId(1), Violation::Integrity)
            .unwrap();
        rep.record_violation(PeerId(1), Violation::Unresponsive)
            .unwrap();
        rep.record_violation(PeerId(2), Violation::ShardLoss)
            .unwrap();
        let s1 = rep.ledger().score(PeerId(1));
        let s2 = rep.ledger().score(PeerId(2));

        let mut disk = rep.into_disk();
        disk.restart();
        let rep = DurableReputation::open(disk, "rep", DurabilityConfig::default()).unwrap();
        assert_eq!(rep.ledger().score(PeerId(1)).to_bits(), s1.to_bits());
        assert_eq!(rep.ledger().score(PeerId(2)).to_bits(), s2.to_bits());
        assert_eq!(rep.ledger().violations(PeerId(1)), 2);
        assert_eq!(
            rep.ledger().violations_of(PeerId(1), Violation::Integrity),
            1
        );
    }

    #[test]
    fn crash_matrix_over_incarnation_and_reputation_ops() {
        let cfg = DurabilityConfig {
            max_segment_bytes: 128,
            snapshot_every_ops: 4,
            keep_snapshots: 2,
        };
        let inc_ops: Vec<Vec<u8>> = (0..10u64)
            .map(|i| {
                let mut w = ByteWriter::new();
                w.u64(i % 3).u64(i + 1);
                w.into_bytes()
            })
            .collect();
        crash_matrix::<IncMap>(5, cfg, &inc_ops);

        let rep_ops: Vec<Vec<u8>> = (0..10u64)
            .map(|i| {
                let mut w = ByteWriter::new();
                w.u64(i % 4).u8((i % 5) as u8);
                w.into_bytes()
            })
            .collect();
        crash_matrix::<RepState>(6, cfg, &rep_ops);
    }
}
