//! [`Fabric`]: the SWIM-style gossip layer, simulated deterministically.
//!
//! The fabric runs in one of two [`GossipMode`]s:
//!
//! - **[`GossipMode::Delta`]** (the default): every protocol period
//!   each *up* appliance probes `1 + gossip_fanout` acquaintances with
//!   a ping; the ack proves the target alive at its stated incarnation.
//!   Membership *changes* (joins, suspicions, refutations, deaths) ride
//!   piggybacked on those pings/acks: each node keeps a bounded queue
//!   of recently-changed records and retransmits each at most
//!   `retransmit_factor · ⌈log₂ n⌉` times under a per-message byte
//!   budget ([`FabricConfig::piggyback_budget_bytes`]). Because only
//!   changes travel, steady-state traffic is O(n) headers per round
//!   instead of O(n²) records. Convergence after partitions is still
//!   guaranteed by **digest anti-entropy** on a slow timer: every
//!   `digest_sync_every` periods (staggered by node id) a node swaps
//!   `(id, incarnation, state)` digests with one target and only the
//!   records one side is missing are shipped. Failure detection is
//!   probe-driven: a ping into a dead appliance goes unanswered, the
//!   prober marks the target [`PeerState::Suspect`], and the suspicion
//!   piggybacks outward; after `suspect_periods` without refutation the
//!   suspect is declared [`PeerState::Dead`].
//!
//! - **[`GossipMode::FullSync`]**: the legacy push-pull anti-entropy —
//!   both sides exchange entire membership tables on every contact and
//!   failure detection is phi-accrual per (observer, subject) via
//!   [`PhiDetector`]. Kept as the baseline the `exp_gossip_bytes`
//!   experiment compares against.
//!
//! In both modes records carry incarnation numbers and merge under
//! SWIM precedence ([`MembershipTable::merge_record`]); a peer that
//! comes back bumps its incarnation, which overrides suspicion and
//! death certificates everywhere it propagates.
//!
//! Byte accounting is honest: every message is really serialized (see
//! [`crate::wire`]) into a reusable scratch buffer and its exact length
//! is charged to `fabric.gossip.bytes` (piggyback payload split out
//! into `fabric.gossip.delta_bytes`, digest traffic into
//! `fabric.gossip.digest_bytes`). The tick path is allocation-free in
//! steady state: candidate lists, chosen targets, record staging and
//! the wire buffer all live in reusable scratch storage.
//!
//! The fabric is driven from outside: a churn schedule (see
//! `hpop_netsim::churn`) calls [`Fabric::set_up`] at transition times
//! (or [`Fabric::crash`] for a power-loss restart that also wipes the
//! appliance's in-memory state) and [`Fabric::tick`] once per period.
//! Ground truth stays inside the fabric ([`GroundTruth`] below), which
//! is what lets it *score its own detector*: detection latency
//! (down-transition → first `Dead` declaration) lands in the
//! `fabric.detect.latency_ms` histogram, and any declaration against a
//! peer that is physically up counts as
//! `fabric.detect.false_positive` — with no rejoin-window exemption. A
//! rejoining peer re-announces at an incarnation above every record
//! circulating about it (its historical maximum survives crashes when
//! an [`crate::persist::IncarnationStore`] is attached), bootstraps
//! its table with a digest sync and broadcasts the refutation to every
//! up peer, so stale death declarations cannot land after a rejoin in
//! the first place.

use crate::detector::PhiDetector;
use crate::member::{Advertisement, MembershipTable, PeerId, PeerRecord, PeerState};
use crate::persist::IncarnationStore;
use crate::reputation::{ReputationLedger, Violation};
use crate::view::{PeerEntry, PeerView};
use crate::wire;
use hpop_netsim::time::{SimDuration, SimTime};
use hpop_obs::{CounterHandle, HistogramHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Hard cap on a node's piggyback queue; beyond it the oldest delta is
/// dropped (digest anti-entropy will repair whatever gets lost).
const QUEUE_CAP: usize = 1024;

/// Which dissemination strategy the fabric runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GossipMode {
    /// Legacy push-pull anti-entropy: full membership tables travel in
    /// both directions on every contact; phi-accrual failure detection.
    FullSync,
    /// SWIM-style delta piggybacking on ping/ack traffic plus digest
    /// anti-entropy on a slow timer; probe-failure suspicion.
    Delta,
}

/// Tuning knobs of the gossip layer.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Protocol period: one gossip round per period.
    pub period: SimDuration,
    /// Extra contacts per round beyond the probe target.
    pub gossip_fanout: usize,
    /// Dissemination strategy (delta piggybacking by default).
    pub mode: GossipMode,
    /// Phi level at which an alive peer becomes suspect (full-sync
    /// mode only; delta mode suspects on probe failure).
    pub phi_threshold: f64,
    /// Periods a suspect may linger unrefuted before being declared dead.
    pub suspect_periods: u32,
    /// Sliding-window size of each phi detector (full-sync mode).
    pub detector_window: usize,
    /// Periods after which terminal (dead/left) records are evicted
    /// from membership tables.
    pub evict_after_periods: u32,
    /// λ in the per-delta retransmit bound λ·⌈log₂ n⌉ (delta mode).
    pub retransmit_factor: u32,
    /// Byte budget of one serialized ping/ack including piggybacked
    /// deltas (delta mode).
    pub piggyback_budget_bytes: usize,
    /// Digest anti-entropy cadence in periods (delta mode): a node
    /// initiates one digest sync whenever `period_index ≡ id.0`
    /// modulo this value, so syncs stagger across the membership.
    pub digest_sync_every: u64,
    /// Seed for every random choice the layer makes.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            period: SimDuration::from_secs(1),
            gossip_fanout: 2,
            mode: GossipMode::Delta,
            phi_threshold: 6.0,
            suspect_periods: 2,
            detector_window: 16,
            evict_after_periods: 300,
            retransmit_factor: 3,
            piggyback_budget_bytes: 512,
            digest_sync_every: 120,
            seed: 0x5eedfab,
        }
    }
}

/// `⌈log₂ n⌉`-scaled retransmit bound for one queued delta.
fn retransmit_limit(lambda: u32, table_len: usize) -> u32 {
    let n = table_len.max(2) as u32;
    let ceil_log2 = 32 - (n - 1).leading_zeros();
    (lambda * ceil_log2).max(1)
}

/// Per-node runtime state: the node's own record plus everything it
/// believes and suspects about others.
#[derive(Clone, Debug)]
struct NodeRuntime {
    table: MembershipTable,
    /// Phi detectors per subject (full-sync mode only).
    detectors: BTreeMap<PeerId, PhiDetector>,
    suspect_since: BTreeMap<PeerId, SimTime>,
    /// Freshest self-refresh timestamp seen per peer (full-sync
    /// evidence clock).
    evidence_at: BTreeMap<PeerId, SimTime>,
    /// Piggyback queue: recently-changed peers with remaining
    /// retransmit credit (delta mode).
    queue: VecDeque<(PeerId, u32)>,
}

impl NodeRuntime {
    fn new() -> NodeRuntime {
        NodeRuntime {
            table: MembershipTable::new(),
            detectors: BTreeMap::new(),
            suspect_since: BTreeMap::new(),
            evidence_at: BTreeMap::new(),
            queue: VecDeque::new(),
        }
    }
}

/// (Re-)arms the piggyback credit for `id` on this node's queue.
fn enqueue_delta(node: &mut NodeRuntime, id: PeerId, lambda: u32) {
    let limit = retransmit_limit(lambda, node.table.len());
    if let Some(entry) = node.queue.iter_mut().find(|(p, _)| *p == id) {
        entry.1 = limit;
        return;
    }
    if node.queue.len() >= QUEUE_CAP {
        node.queue.pop_front();
    }
    node.queue.push_back((id, limit));
}

/// Serializes a ping/ack from `sender` into `msg`, draining up to a
/// budget's worth of piggyback queue into it (and into `deltas` for
/// in-process application). Returns the sender's incarnation.
fn encode_ping(
    node: &mut NodeRuntime,
    sender: PeerId,
    tag: u8,
    budget: usize,
    msg: &mut Vec<u8>,
    deltas: &mut Vec<PeerRecord>,
) -> u64 {
    deltas.clear();
    let incarnation = node.table.get(sender).map_or(0, |r| r.incarnation);
    wire::begin_ping(msg, tag, sender, incarnation);
    for _ in 0..node.queue.len() {
        if deltas.len() == u8::MAX as usize || msg.len() + wire::RECORD_BYTES > budget {
            break;
        }
        let (pid, remaining) = node.queue.pop_front().expect("loop bound");
        let Some(rec) = node.table.get(pid) else {
            continue; // evicted since it was queued
        };
        wire::push_record(msg, rec);
        deltas.push(*rec);
        if remaining > 1 {
            node.queue.push_back((pid, remaining - 1));
        }
    }
    incarnation
}

/// Ground-truth uptime accounting for one peer.
#[derive(Clone, Copy, Debug)]
struct Uptime {
    joined_at: SimTime,
    up_since: Option<SimTime>,
    total_up: SimDuration,
}

impl Uptime {
    fn fraction(&self, now: SimTime) -> f64 {
        let lifetime = now.saturating_since(self.joined_at).as_secs_f64();
        if lifetime <= 0.0 {
            return 1.0;
        }
        let mut up = self.total_up.as_secs_f64();
        if let Some(since) = self.up_since {
            up += now.saturating_since(since).as_secs_f64();
        }
        (up / lifetime).clamp(0.0, 1.0)
    }
}

/// Ground truth the fabric scores its own detector against: who is
/// physically up, uptime accounting, and the start of any ongoing
/// downtime (the detection-latency anchor).
#[derive(Clone, Debug, Default)]
struct GroundTruth {
    up: BTreeSet<PeerId>,
    uptime: BTreeMap<PeerId, Uptime>,
    /// Currently-down peers → when they went down.
    open_down: BTreeMap<PeerId, SimTime>,
}

impl GroundTruth {
    fn join(&mut self, id: PeerId, now: SimTime) {
        self.up.insert(id);
        self.uptime.insert(
            id,
            Uptime {
                joined_at: now,
                up_since: Some(now),
                total_up: SimDuration::ZERO,
            },
        );
    }
}

/// Counters the experiments and property tests read back.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    /// Serialized bytes of every gossip message shipped.
    pub gossip_bytes: u64,
    /// Subset of `gossip_bytes`: piggybacked delta payload on pings/acks.
    pub delta_bytes: u64,
    /// Subset of `gossip_bytes`: digest messages and their record replies.
    pub digest_bytes: u64,
    /// Digest anti-entropy syncs initiated.
    pub digest_syncs: u64,
    /// Gossip contacts performed (probe round-trips, digest syncs, or
    /// full-sync exchanges depending on mode).
    pub exchanges: u64,
    /// `Dead` declarations that matched ground truth.
    pub true_detections: u64,
    /// `Dead` declarations against a peer that was physically up when
    /// declared. There is no rejoin-window exemption: a declaration
    /// that lands after its subject rejoined counts here.
    pub false_positives: u64,
    /// Per-declaration latencies (ms) from the down-transition to each
    /// observer's declaration.
    pub detection_latency_ms: Vec<f64>,
}

/// Cached handles into the global metrics registry so the tick path
/// never re-hashes metric names.
#[derive(Clone)]
struct FabricMetrics {
    gossip_bytes: CounterHandle,
    delta_bytes: CounterHandle,
    digest_bytes: CounterHandle,
    digest_syncs: CounterHandle,
    false_positive: CounterHandle,
    latency_ms: HistogramHandle,
    queue_depth: HistogramHandle,
}

impl FabricMetrics {
    fn new() -> FabricMetrics {
        let m = hpop_obs::metrics();
        FabricMetrics {
            gossip_bytes: m.counter("fabric.gossip.bytes"),
            delta_bytes: m.counter("fabric.gossip.delta_bytes"),
            digest_bytes: m.counter("fabric.gossip.digest_bytes"),
            digest_syncs: m.counter("fabric.gossip.digest_syncs"),
            false_positive: m.counter("fabric.detect.false_positive"),
            latency_ms: m.histogram("fabric.detect.latency_ms"),
            queue_depth: m.histogram("fabric.gossip.piggyback.depth"),
        }
    }
}

impl fmt::Debug for FabricMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FabricMetrics { .. }")
    }
}

/// Reusable buffers for the tick path: taken with `mem::take`, cleared,
/// used, and put back, so steady-state rounds allocate nothing.
#[derive(Clone, Debug, Default)]
struct Scratch {
    ids: Vec<PeerId>,
    candidates: Vec<PeerId>,
    chosen: Vec<PeerId>,
    introducers: Vec<PeerId>,
    recs_a: Vec<PeerRecord>,
    recs_b: Vec<PeerRecord>,
    to_suspect: Vec<PeerId>,
    to_kill: Vec<PeerId>,
    msg: Vec<u8>,
}

/// The gossip membership layer over a set of appliances.
#[derive(Clone, Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    now: SimTime,
    /// Protocol periods elapsed (drives the staggered digest timer).
    period_index: u64,
    rng: StdRng,
    nodes: BTreeMap<PeerId, NodeRuntime>,
    truth: GroundTruth,
    ledger: ReputationLedger,
    stats: FabricStats,
    metrics: FabricMetrics,
    scratch: Scratch,
    next_id: u64,
    /// Optional write-through persistence of self-incarnation numbers
    /// (one map keyed by peer id stands in for each appliance's own
    /// NVRAM). Attached, a crashed peer rejoins above everything it
    /// ever announced; absent, it relies on the self-defense race.
    inc_store: Option<IncarnationStore>,
}

impl Fabric {
    /// An empty fabric starting at the sim epoch.
    pub fn new(cfg: FabricConfig) -> Fabric {
        Fabric {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            now: SimTime::ZERO,
            period_index: 0,
            nodes: BTreeMap::new(),
            truth: GroundTruth::default(),
            ledger: ReputationLedger::new(),
            stats: FabricStats::default(),
            metrics: FabricMetrics::new(),
            scratch: Scratch::default(),
            next_id: 0,
            inc_store: None,
        }
    }

    /// Attaches persistent incarnation storage: every self-incarnation
    /// bump any member announces is written through, and a rejoin
    /// resumes above the persisted maximum. This is what keeps a
    /// [`Fabric::crash`]-then-rejoin windowless even though the crashed
    /// appliance forgot its own incarnation.
    pub fn attach_incarnation_store(&mut self, store: IncarnationStore) {
        self.inc_store = Some(store);
    }

    /// Detaches the incarnation store (e.g. to restart it through its
    /// own simulated disk). Persistence stops until re-attached.
    pub fn take_incarnation_store(&mut self) -> Option<IncarnationStore> {
        self.inc_store.take()
    }

    /// Best-effort write-through of a self-incarnation bump. A
    /// persistence failure degrades the next rejoin to the legacy
    /// self-defense race instead of halting gossip.
    fn persist_incarnation(&mut self, id: PeerId, inc: u64) {
        if let Some(store) = self.inc_store.as_mut() {
            let _ = store.record(id, inc);
        }
    }

    /// The current sim time as seen by the fabric.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The config in force.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Number of peers ever joined.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no peer has joined.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ground truth: is this peer physically up?
    pub fn is_up(&self, id: PeerId) -> bool {
        self.truth.up.contains(&id)
    }

    /// A new appliance joins (initially up). It bootstraps from one
    /// random up introducer — a digest sync in delta mode (the
    /// newcomer pulls the whole membership, the introducer learns it
    /// back and relays its record), a push-pull exchange in full-sync
    /// mode; everyone else hears through subsequent gossip.
    pub fn join(&mut self, advert: Advertisement) -> PeerId {
        let id = PeerId(self.next_id);
        self.next_id += 1;
        let mut node = NodeRuntime::new();
        node.table.upsert(PeerRecord::alive(id, advert, self.now));
        self.nodes.insert(id, node);
        self.truth.join(id, self.now);
        let mut intros = std::mem::take(&mut self.scratch.introducers);
        intros.clear();
        intros.extend(self.truth.up.iter().copied().filter(|&p| p != id));
        let intro = (!intros.is_empty()).then(|| intros[self.rng.gen_range(0..intros.len())]);
        self.scratch.introducers = intros;
        if let Some(intro) = intro {
            match self.cfg.mode {
                GossipMode::Delta => self.digest_sync(id, intro),
                GossipMode::FullSync => self.full_sync_exchange(id, intro),
            }
        }
        id
    }

    /// Flips a peer's ground-truth liveness (driven by the churn
    /// schedule). Coming back up bumps the peer's incarnation past both
    /// its in-memory value and anything it ever persisted, so its
    /// re-announcement refutes every suspicion or death certificate
    /// circulating about it — including ones a crash made it forget.
    pub fn set_up(&mut self, id: PeerId, up: bool) {
        let Some(acc) = self.truth.uptime.get_mut(&id) else {
            return;
        };
        if up && !self.truth.up.contains(&id) {
            acc.up_since = Some(self.now);
            self.truth.up.insert(id);
            self.truth.open_down.remove(&id);
            let persisted = self.inc_store.as_ref().map_or(0, |s| s.get(id));
            let lambda = self.cfg.retransmit_factor;
            let node = self.nodes.get_mut(&id).expect("joined peers have nodes");
            let mut me = node
                .table
                .get(id)
                .copied()
                .unwrap_or_else(|| PeerRecord::alive(id, Advertisement::default(), self.now));
            me.incarnation = me.incarnation.max(persisted) + 1;
            me.state = PeerState::Alive;
            me.updated_at = self.now;
            let new_inc = me.incarnation;
            node.table.upsert(me);
            // Amnesty epoch: silence observed while this node was
            // itself down is not evidence of anyone's death. Stale
            // suspicions and heartbeat histories restart from now —
            // otherwise a rebooted observer mass-suspects every peer
            // it does not contact in its first round back. Records
            // still held as Suspect are demoted back to Alive at the
            // same incarnation (direct upsert — merge precedence would
            // refuse a rank downgrade); any peer that really died
            // stays refutable, and fresher remote evidence re-wins on
            // the next merge.
            node.suspect_since.clear();
            node.detectors.clear();
            node.evidence_at.clear();
            let mut demoted = std::mem::take(&mut self.scratch.recs_a);
            demoted.clear();
            demoted.extend(
                node.table
                    .iter()
                    .filter(|r| r.state == PeerState::Suspect)
                    .copied(),
            );
            for rec in demoted.iter_mut() {
                rec.state = PeerState::Alive;
                node.table.upsert(*rec);
            }
            self.scratch.recs_a = demoted;
            if self.cfg.mode == GossipMode::Delta {
                enqueue_delta(node, id, lambda);
            } else {
                let window = self.cfg.detector_window;
                let period_s = self.cfg.period.as_secs_f64();
                let now = self.now;
                for rec in node.table.iter() {
                    if rec.id == id {
                        continue;
                    }
                    let mut d = PhiDetector::new(window, period_s);
                    d.heartbeat(now);
                    node.detectors.insert(rec.id, d);
                    node.evidence_at.insert(rec.id, now);
                }
            }
            self.persist_incarnation(id, new_inc);
            // Re-announce through EVERY up peer so the incarnation
            // bump outraces in-flight death declarations everywhere at
            // once — this broadcast, plus persisted incarnations, is
            // what closes the old "rejoin window" without a scoring
            // exemption. The first delta-mode contact is a digest sync
            // so a crash-wiped table re-bootstraps the membership (and
            // learns of any circulating death certificate about
            // itself, triggering an immediate self-defense bump that
            // the remaining probes then spread).
            let mut intros = std::mem::take(&mut self.scratch.introducers);
            intros.clear();
            intros.extend(self.truth.up.iter().copied().filter(|&p| p != id));
            for (k, &target) in intros.iter().enumerate() {
                match self.cfg.mode {
                    GossipMode::Delta if k == 0 => self.digest_sync(id, target),
                    GossipMode::Delta => self.probe(id, target),
                    GossipMode::FullSync => self.full_sync_exchange(id, target),
                }
            }
            self.scratch.introducers = intros;
        } else if !up && self.truth.up.remove(&id) {
            if let Some(since) = acc.up_since.take() {
                acc.total_up += self.now.saturating_since(since);
            }
            self.truth.open_down.insert(id, self.now);
        }
    }

    /// Re-announces `id`'s advertisement at a bumped incarnation while
    /// it stays up — the overload-control hook. A saturated appliance
    /// derates its advertised capacity
    /// ([`Advertisement::derated`]) so [`PeerView`] capacity ranking
    /// routes *new* work around it, then restores the full
    /// advertisement when the flash crowd passes. The incarnation bump
    /// is what makes the new advertisement win SWIM merge precedence
    /// on every observer — the exact mechanism rejoin refutation
    /// already uses, so no wire-format change is needed.
    ///
    /// No-op for peers that are down or never joined (a down peer's
    /// next `set_up` re-announces whatever its table holds).
    ///
    /// [`PeerView`]: crate::view::PeerView
    pub fn re_advertise(&mut self, id: PeerId, advert: Advertisement) {
        if !self.truth.up.contains(&id) {
            return;
        }
        let persisted = self.inc_store.as_ref().map_or(0, |s| s.get(id));
        let lambda = self.cfg.retransmit_factor;
        let Some(node) = self.nodes.get_mut(&id) else {
            return;
        };
        let mut me = node
            .table
            .get(id)
            .copied()
            .unwrap_or_else(|| PeerRecord::alive(id, advert, self.now));
        me.incarnation = me.incarnation.max(persisted) + 1;
        me.state = PeerState::Alive;
        me.advert = advert;
        me.updated_at = self.now;
        let new_inc = me.incarnation;
        node.table.upsert(me);
        if self.cfg.mode == GossipMode::Delta {
            enqueue_delta(node, id, lambda);
        }
        self.persist_incarnation(id, new_inc);
        // Push the update through every up peer immediately: an
        // overload signal that trickles out over many rounds arrives
        // after the crowd it was meant to deflect.
        let mut intros = std::mem::take(&mut self.scratch.introducers);
        intros.clear();
        intros.extend(self.truth.up.iter().copied().filter(|&p| p != id));
        for &target in intros.iter() {
            match self.cfg.mode {
                GossipMode::Delta => self.probe(id, target),
                GossipMode::FullSync => self.full_sync_exchange(id, target),
            }
        }
        self.scratch.introducers = intros;
    }

    /// Convenience wrapper: re-announces `id` at `factor` of its
    /// *currently advertised* capacity. Escalating overload can call
    /// this repeatedly (the derating compounds); recovery should call
    /// [`Fabric::re_advertise`] with the appliance's full configured
    /// advertisement.
    pub fn derate(&mut self, id: PeerId, factor: f64) {
        let Some(current) = self
            .nodes
            .get(&id)
            .and_then(|n| n.table.get(id))
            .map(|r| r.advert)
        else {
            return;
        };
        self.re_advertise(id, current.derated(factor));
    }

    /// Simulates a power-loss crash: the appliance goes down AND loses
    /// every piece of in-memory state — membership table, detectors,
    /// suspicion clocks, piggyback queue, its own incarnation. Only
    /// the advertisement survives (it is configuration, not runtime
    /// state). A later `set_up(id, true)` is then an *amnesiac*
    /// rejoin: with an attached [`IncarnationStore`] the peer resumes
    /// above every incarnation it ever announced; without one it
    /// restarts at 1 and must win the self-defense race against its
    /// own death certificates.
    pub fn crash(&mut self, id: PeerId) {
        self.set_up(id, false);
        let now = self.now;
        if let Some(node) = self.nodes.get_mut(&id) {
            let advert = node.table.get(id).map(|r| r.advert).unwrap_or_default();
            let mut fresh = NodeRuntime::new();
            fresh.table.upsert(PeerRecord::alive(id, advert, now));
            *node = fresh;
        }
    }

    /// Advances the clock one protocol period and runs a gossip round
    /// for every up node. Returns the new sim time.
    pub fn tick(&mut self) -> SimTime {
        self.now += self.cfg.period;
        self.period_index += 1;
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        ids.extend(self.truth.up.iter().copied());
        for &id in &ids {
            if let Some(node) = self.nodes.get_mut(&id) {
                node.table.touch_self(id, self.now);
            }
        }
        for &id in &ids {
            self.round_for(id);
        }
        let cutoff_periods = self.cfg.evict_after_periods as u64;
        let cutoff = SimTime::from_nanos(
            self.now
                .as_nanos()
                .saturating_sub(self.cfg.period.as_nanos().saturating_mul(cutoff_periods)),
        );
        for &id in &ids {
            if let Some(node) = self.nodes.get_mut(&id) {
                node.table.evict_terminal_before(cutoff);
            }
        }
        self.scratch.ids = ids;
        self.now
    }

    /// Runs `n` ticks back to back.
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.tick();
        }
    }

    fn round_for(&mut self, id: PeerId) {
        let delta = self.cfg.mode == GossipMode::Delta;
        if delta {
            if let Some(node) = self.nodes.get(&id) {
                self.metrics.queue_depth.record(node.queue.len() as u64);
            }
        }
        // Pick the probe target plus fanout extra targets among
        // non-terminal acquaintances.
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        candidates.clear();
        if let Some(node) = self.nodes.get(&id) {
            candidates.extend(
                node.table
                    .iter()
                    .filter(|r| r.id != id && !matches!(r.state, PeerState::Dead | PeerState::Left))
                    .map(|r| r.id),
            );
        }
        if !candidates.is_empty() {
            let mut chosen = std::mem::take(&mut self.scratch.chosen);
            chosen.clear();
            // SWIM probes a single target per protocol period — deltas
            // ride the ping and the ack, so dissemination needs no
            // extra contacts. Full-table push-pull spreads per-contact,
            // so it keeps the probe-plus-fanout contact count.
            let contacts = if delta {
                1
            } else {
                (1 + self.cfg.gossip_fanout).min(candidates.len())
            };
            for _ in 0..contacts {
                // Rejection-free pick: scan from a random start offset.
                let start = self.rng.gen_range(0..candidates.len());
                for off in 0..candidates.len() {
                    let c = candidates[(start + off) % candidates.len()];
                    if !chosen.contains(&c) {
                        chosen.push(c);
                        break;
                    }
                }
            }
            let every = self.cfg.digest_sync_every.max(1);
            let digest_due = delta && self.period_index % every == id.0 % every;
            for (k, &target) in chosen.iter().enumerate() {
                if delta {
                    if k == 0 && digest_due {
                        self.digest_sync(id, target);
                    } else {
                        self.probe(id, target);
                    }
                } else if self.truth.up.contains(&target) {
                    self.full_sync_exchange(id, target);
                }
                // A down target simply doesn't answer. In full-sync
                // mode that means no evidence — the observer's phi for
                // it keeps growing; in delta mode probe() suspects it
                // on the spot.
            }
            self.scratch.chosen = chosen;
        }
        self.scratch.candidates = candidates;
        self.assess(id);
    }

    fn account_ping(&mut self, len: usize) {
        let payload = (len - wire::PING_HEADER_BYTES) as u64;
        self.stats.gossip_bytes += len as u64;
        self.stats.delta_bytes += payload;
        self.metrics.gossip_bytes.add(len as u64);
        self.metrics.delta_bytes.add(payload);
    }

    fn account_digest(&mut self, len: usize) {
        self.stats.gossip_bytes += len as u64;
        self.stats.digest_bytes += len as u64;
        self.metrics.gossip_bytes.add(len as u64);
        self.metrics.digest_bytes.add(len as u64);
    }

    /// One probe round-trip `a → b → a` with piggybacked deltas (delta
    /// mode). An unanswered probe raises suspicion immediately: in a
    /// loss-free simulation the only reason a ping goes unanswered is
    /// that the target is really down.
    fn probe(&mut self, a: PeerId, b: PeerId) {
        let budget = self.cfg.piggyback_budget_bytes;
        let lambda = self.cfg.retransmit_factor;
        let mut msg = std::mem::take(&mut self.scratch.msg);
        let mut deltas = std::mem::take(&mut self.scratch.recs_a);
        let Some(node_a) = self.nodes.get_mut(&a) else {
            self.scratch.msg = msg;
            self.scratch.recs_a = deltas;
            return;
        };
        let inc_a = encode_ping(node_a, a, wire::TAG_PING, budget, &mut msg, &mut deltas);
        self.account_ping(msg.len());
        self.stats.exchanges += 1;
        if !self.truth.up.contains(&b) {
            self.suspect_from_probe(a, b);
        } else {
            self.apply_ping(b, a, inc_a, &deltas, lambda);
            let node_b = self.nodes.get_mut(&b).expect("up peers have nodes");
            let inc_b = encode_ping(node_b, b, wire::TAG_ACK, budget, &mut msg, &mut deltas);
            self.account_ping(msg.len());
            self.apply_ping(a, b, inc_b, &deltas, lambda);
        }
        self.scratch.msg = msg;
        self.scratch.recs_a = deltas;
    }

    /// Marks an unresponsive probe target suspect and queues the
    /// suspicion for dissemination.
    fn suspect_from_probe(&mut self, observer: PeerId, target: PeerId) {
        let now = self.now;
        let lambda = self.cfg.retransmit_factor;
        let Some(node) = self.nodes.get_mut(&observer) else {
            return;
        };
        let alive = node
            .table
            .get(target)
            .is_some_and(|r| r.state == PeerState::Alive);
        if alive && node.table.set_state(target, PeerState::Suspect, now) {
            node.suspect_since.entry(target).or_insert(now);
            enqueue_delta(node, target, lambda);
        }
    }

    /// Ingests a ping/ack at `dst`: the header is a heartbeat for the
    /// sender, the piggybacked deltas merge under SWIM precedence.
    fn apply_ping(
        &mut self,
        dst: PeerId,
        sender: PeerId,
        sender_inc: u64,
        deltas: &[PeerRecord],
        lambda: u32,
    ) {
        let now = self.now;
        // Deltas merge BEFORE the header heartbeat. The header carries
        // only an incarnation; synthesizing an alive record from it
        // copies the advertisement we already hold, and doing that
        // first would let the copy win merge precedence over a
        // same-incarnation delta carrying the sender's *new*
        // advertisement (re-announced capacity would never propagate).
        for rec in deltas {
            self.apply_record(dst, *rec, lambda);
        }
        if let Some(node) = self.nodes.get_mut(&dst) {
            // The header proves the sender alive at `sender_inc`. A
            // sender we have never heard of carries no advertisement,
            // so we wait for its record to arrive as a delta or digest
            // reply instead of fabricating one.
            if let Some(cur) = node.table.get(sender) {
                let fresher = sender_inc > cur.incarnation
                    || (sender_inc == cur.incarnation && cur.state != PeerState::Alive);
                if fresher {
                    let mut rec = *cur;
                    rec.state = PeerState::Alive;
                    rec.incarnation = sender_inc;
                    rec.updated_at = now;
                    node.table.upsert(rec);
                    enqueue_delta(node, sender, lambda);
                }
                node.suspect_since.remove(&sender);
            }
        }
    }

    /// Merges one gossiped record at `dst` (delta mode), re-queuing it
    /// for relay when it changed the local belief. A record about
    /// `dst` itself triggers SWIM self-defense instead of a merge.
    fn apply_record(&mut self, dst: PeerId, rec: PeerRecord, lambda: u32) {
        let now = self.now;
        let Some(node) = self.nodes.get_mut(&dst) else {
            return;
        };
        if rec.id == dst {
            // Someone believes something non-alive about me: refute by
            // bumping my incarnation past theirs (and persist the bump
            // so not even a crash can roll me back under it).
            let mut bumped = None;
            if rec.state != PeerState::Alive {
                let mut me = *node.table.get(dst).expect("self record");
                if rec.incarnation >= me.incarnation {
                    me.incarnation = rec.incarnation + 1;
                    me.state = PeerState::Alive;
                    me.updated_at = now;
                    node.table.upsert(me);
                    enqueue_delta(node, dst, lambda);
                    bumped = Some(me.incarnation);
                }
            }
            if let Some(inc) = bumped {
                self.persist_incarnation(dst, inc);
            }
            return;
        }
        if node.table.merge_record(&rec) {
            enqueue_delta(node, rec.id, lambda);
            match rec.state {
                // Grace runs from when the suspicion was *raised* (the
                // origin's timestamp), not from when it arrived here.
                PeerState::Suspect => {
                    node.suspect_since.entry(rec.id).or_insert(rec.updated_at);
                }
                _ => {
                    node.suspect_since.remove(&rec.id);
                }
            }
        }
    }

    /// Digest anti-entropy between `a` and `b`: swap per-peer
    /// `(id, incarnation, state)` summaries, then ship only the records
    /// each side is missing or holds stale.
    fn digest_sync(&mut self, a: PeerId, b: PeerId) {
        let lambda = self.cfg.retransmit_factor;
        let mut msg = std::mem::take(&mut self.scratch.msg);
        let Some(node_a) = self.nodes.get(&a) else {
            self.scratch.msg = msg;
            return;
        };
        wire::begin_list(&mut msg, wire::TAG_DIGEST, a);
        for rec in node_a.table.iter() {
            wire::push_digest_entry(&mut msg, rec.id, rec.incarnation, rec.state);
        }
        self.account_digest(msg.len());
        self.stats.exchanges += 1;
        self.stats.digest_syncs += 1;
        self.metrics.digest_syncs.incr();
        if !self.truth.up.contains(&b) {
            self.suspect_from_probe(a, b);
            self.scratch.msg = msg;
            return;
        }
        let node_b = self.nodes.get(&b).expect("up peers have nodes");
        wire::begin_list(&mut msg, wire::TAG_DIGEST, b);
        for rec in node_b.table.iter() {
            wire::push_digest_entry(&mut msg, rec.id, rec.incarnation, rec.state);
        }
        self.account_digest(msg.len());
        // Merge-join the two id-sorted tables: whatever one side holds
        // fresher (or exclusively) goes to the other.
        let mut send_to_b = std::mem::take(&mut self.scratch.recs_a);
        let mut send_to_a = std::mem::take(&mut self.scratch.recs_b);
        send_to_b.clear();
        send_to_a.clear();
        {
            let node_a = self.nodes.get(&a).expect("checked above");
            let node_b = self.nodes.get(&b).expect("checked above");
            let mut ia = node_a.table.iter().peekable();
            let mut ib = node_b.table.iter().peekable();
            loop {
                match (ia.peek(), ib.peek()) {
                    (Some(ra), Some(rb)) => match ra.id.cmp(&rb.id) {
                        std::cmp::Ordering::Less => {
                            send_to_b.push(**ra);
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            send_to_a.push(**rb);
                            ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            if fresher(ra, rb) {
                                send_to_b.push(**ra);
                            } else if fresher(rb, ra) {
                                send_to_a.push(**rb);
                            }
                            ia.next();
                            ib.next();
                        }
                    },
                    (Some(ra), None) => {
                        send_to_b.push(**ra);
                        ia.next();
                    }
                    (None, Some(rb)) => {
                        send_to_a.push(**rb);
                        ib.next();
                    }
                    (None, None) => break,
                }
            }
        }
        for (sender, recs) in [(a, &send_to_b), (b, &send_to_a)] {
            if !recs.is_empty() {
                wire::begin_list(&mut msg, wire::TAG_RECORDS, sender);
                for rec in recs.iter() {
                    wire::push_record(&mut msg, rec);
                }
                self.account_digest(msg.len());
            }
        }
        for &rec in &send_to_b {
            self.apply_record(b, rec, lambda);
        }
        for &rec in &send_to_a {
            self.apply_record(a, rec, lambda);
        }
        self.scratch.msg = msg;
        self.scratch.recs_a = send_to_b;
        self.scratch.recs_b = send_to_a;
    }

    /// Legacy push-pull anti-entropy between two up nodes (full-sync
    /// mode): each merges the other's entire table and harvests
    /// evidence-of-life timestamps for its phi detectors.
    fn full_sync_exchange(&mut self, a: PeerId, b: PeerId) {
        let mut recs_a = std::mem::take(&mut self.scratch.recs_a);
        let mut recs_b = std::mem::take(&mut self.scratch.recs_b);
        let mut msg = std::mem::take(&mut self.scratch.msg);
        recs_a.clear();
        recs_b.clear();
        let present = match (self.nodes.get(&a), self.nodes.get(&b)) {
            (Some(na), Some(nb)) => {
                recs_a.extend(na.table.iter().copied());
                recs_b.extend(nb.table.iter().copied());
                true
            }
            _ => false,
        };
        if present {
            for (sender, recs) in [(a, &recs_a), (b, &recs_b)] {
                wire::begin_list(&mut msg, wire::TAG_RECORDS, sender);
                for rec in recs.iter() {
                    wire::push_record(&mut msg, rec);
                }
                self.stats.gossip_bytes += msg.len() as u64;
                self.metrics.gossip_bytes.add(msg.len() as u64);
            }
            self.stats.exchanges += 1;
            self.apply_full_sync(a, &recs_b, b);
            self.apply_full_sync(b, &recs_a, a);
        }
        self.scratch.recs_a = recs_a;
        self.scratch.recs_b = recs_b;
        self.scratch.msg = msg;
    }

    /// Merges a full table received at `dst` and feeds the phi
    /// detectors with evidence of life (full-sync mode).
    fn apply_full_sync(&mut self, dst: PeerId, recs: &[PeerRecord], direct_peer: PeerId) {
        let now = self.now;
        let window = self.cfg.detector_window;
        let period_s = self.cfg.period.as_secs_f64();
        let node = self.nodes.get_mut(&dst).expect("exchange peers exist");
        let mut self_bump = None;
        for rec in recs {
            if rec.id == dst {
                // Others' beliefs about me: refute anything but alive
                // by bumping my incarnation (SWIM self-defense).
                if rec.state != PeerState::Alive {
                    let mut me = *node.table.get(dst).expect("self record");
                    if rec.incarnation >= me.incarnation {
                        me.incarnation = rec.incarnation + 1;
                        me.state = PeerState::Alive;
                        me.updated_at = now;
                        node.table.upsert(me);
                        self_bump = Some(me.incarnation);
                    }
                }
                continue;
            }
            let prev_inc = node.table.get(rec.id).map(|r| r.incarnation);
            node.table.merge_record(rec);
            // A higher incarnation starts a fresh detector epoch: the
            // inter-arrival history straddling the subject's downtime
            // (one huge gap) would otherwise inflate the windowed mean
            // and stall detection of its *next* failure.
            if prev_inc.is_some_and(|p| rec.incarnation > p) {
                node.detectors.remove(&rec.id);
                node.evidence_at.remove(&rec.id);
            }
            // Evidence of life: the subject's own refresh timestamp,
            // or the direct contact itself.
            let evidence = if rec.id == direct_peer {
                Some(now)
            } else if rec.state == PeerState::Alive {
                Some(rec.updated_at)
            } else {
                None
            };
            if let Some(at) = evidence {
                let freshest = node.evidence_at.entry(rec.id).or_insert(SimTime::ZERO);
                if at > *freshest || rec.id == direct_peer {
                    *freshest = at;
                    node.detectors
                        .entry(rec.id)
                        .or_insert_with(|| PhiDetector::new(window, period_s))
                        .heartbeat(at);
                    // Fresh life evidence clears any local suspicion.
                    node.suspect_since.remove(&rec.id);
                    if let Some(r) = node.table.get(rec.id) {
                        if r.state == PeerState::Suspect && r.incarnation == rec.incarnation {
                            let mut r = *r;
                            r.state = PeerState::Alive;
                            node.table.upsert(r);
                        }
                    }
                }
            }
        }
        // The exchange itself is direct-contact evidence: stamp our
        // copy of the peer so the freshness travels when we relay it.
        node.table.refresh_evidence(direct_peer, now);
        if let Some(inc) = self_bump {
            self.persist_incarnation(dst, inc);
        }
    }

    /// Applies the failure detector for one observer. Full-sync mode
    /// promotes over-threshold alive peers to suspect (phi-accrual);
    /// both modes declare suspects dead once the grace period from the
    /// *origin* of the suspicion has passed.
    fn assess(&mut self, observer: PeerId) {
        let now = self.now;
        let grace = self
            .cfg
            .period
            .saturating_mul(self.cfg.suspect_periods as u64);
        let threshold = self.cfg.phi_threshold;
        let full = self.cfg.mode == GossipMode::FullSync;
        let lambda = self.cfg.retransmit_factor;
        let mut to_suspect = std::mem::take(&mut self.scratch.to_suspect);
        let mut to_kill = std::mem::take(&mut self.scratch.to_kill);
        to_suspect.clear();
        to_kill.clear();
        if let Some(node) = self.nodes.get(&observer) {
            for rec in node.table.iter() {
                if rec.id == observer {
                    continue;
                }
                match rec.state {
                    PeerState::Alive if full => {
                        let phi = node.detectors.get(&rec.id).map_or(0.0, |d| d.phi(now))
                            + self.ledger.phi_bonus(rec.id);
                        if phi > threshold {
                            to_suspect.push(rec.id);
                        }
                    }
                    PeerState::Suspect => {
                        let since = node.suspect_since.get(&rec.id).copied().unwrap_or({
                            // Delta mode: the suspicion's origin time
                            // travelled on the record itself.
                            if full {
                                now
                            } else {
                                rec.updated_at
                            }
                        });
                        if now.saturating_since(since) >= grace {
                            to_kill.push(rec.id);
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(node) = self.nodes.get_mut(&observer) {
            for &id in &to_suspect {
                if node.table.set_state(id, PeerState::Suspect, now) {
                    node.suspect_since.entry(id).or_insert(now);
                }
            }
        }
        for &id in &to_kill {
            let node = self.nodes.get_mut(&observer).expect("observer exists");
            if node.table.set_state(id, PeerState::Dead, now) {
                node.suspect_since.remove(&id);
                if !full {
                    enqueue_delta(node, id, lambda);
                }
                self.score_declaration(id);
            }
        }
        self.scratch.to_suspect = to_suspect;
        self.scratch.to_kill = to_kill;
    }

    /// Scores one `Dead` declaration against ground truth: either the
    /// subject is genuinely down right now, or this is a false
    /// positive. There is no third category any more — rejoining peers
    /// resume above every circulating death certificate (persisted
    /// incarnations + the rejoin broadcast), so a declaration landing
    /// after its subject came back is a detector bug, not an artifact
    /// to excuse.
    fn score_declaration(&mut self, subject: PeerId) {
        if let Some(&down_at) = self.truth.open_down.get(&subject) {
            let latency_ms = self.now.saturating_since(down_at).as_millis_f64();
            self.stats.true_detections += 1;
            self.stats.detection_latency_ms.push(latency_ms);
            self.metrics.latency_ms.record(latency_ms.round() as u64);
        } else {
            self.stats.false_positives += 1;
            self.metrics.false_positive.incr();
        }
    }

    /// The membership as one observer currently believes it, joined
    /// with the shared ledger and ground-truth uptime accounting.
    ///
    /// Returns an empty view for unknown observers.
    pub fn view(&self, observer: PeerId) -> PeerView {
        let Some(node) = self.nodes.get(&observer) else {
            return PeerView::default();
        };
        let entries = node
            .table
            .iter()
            .map(|r| PeerEntry {
                id: r.id,
                state: r.state,
                advert: r.advert,
                uptime_fraction: self.uptime_fraction(r.id),
                reputation: self.ledger.score(r.id),
            })
            .collect();
        PeerView::new(entries)
    }

    /// The omniscient view: every joined peer with its ground-truth
    /// liveness. Experiments use it as the accuracy baseline.
    pub fn ground_truth_view(&self) -> PeerView {
        let entries = self
            .nodes
            .keys()
            .filter_map(|&id| {
                let advert = self.nodes[&id].table.get(id)?.advert;
                Some(PeerEntry {
                    id,
                    state: if self.truth.up.contains(&id) {
                        PeerState::Alive
                    } else {
                        PeerState::Dead
                    },
                    advert,
                    uptime_fraction: self.uptime_fraction(id),
                    reputation: self.ledger.score(id),
                })
            })
            .collect();
        PeerView::new(entries)
    }

    /// Ground-truth fraction of its lifetime this peer has been up.
    pub fn uptime_fraction(&self, id: PeerId) -> f64 {
        self.truth
            .uptime
            .get(&id)
            .map_or(0.0, |u| u.fraction(self.now))
    }

    /// Read access to the shared reputation ledger.
    pub fn ledger(&self) -> &ReputationLedger {
        &self.ledger
    }

    /// Records a service-observed violation on the shared ledger.
    pub fn record_violation(&mut self, id: PeerId, kind: Violation) -> f64 {
        self.ledger.record_violation(id, kind)
    }

    /// Detector/gossip statistics so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The ids every *up* node currently believes alive, per node —
    /// the convergence witness the property tests assert on.
    pub fn alive_sets_of_up_nodes(&self) -> Vec<(PeerId, BTreeSet<PeerId>)> {
        self.truth
            .up
            .iter()
            .map(|&id| {
                let set: BTreeSet<PeerId> = self.nodes[&id].table.alive_ids().into_iter().collect();
                (id, set)
            })
            .collect()
    }

    /// The `id → incarnation` map of peers one up node believes alive
    /// (empty for unknown or down observers) — the witness the
    /// delta-vs-full-sync equivalence property compares.
    pub fn alive_incarnations(&self, observer: PeerId) -> BTreeMap<PeerId, u64> {
        if !self.truth.up.contains(&observer) {
            return BTreeMap::new();
        }
        self.nodes[&observer]
            .table
            .iter()
            .filter(|r| r.state.is_alive())
            .map(|r| (r.id, r.incarnation))
            .collect()
    }
}

/// SWIM freshness order: does `x` carry strictly newer knowledge than
/// `y` about the same peer?
fn fresher(x: &PeerRecord, y: &PeerRecord) -> bool {
    x.incarnation > y.incarnation
        || (x.incarnation == y.incarnation && x.state.rank() > y.state.rank())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric_of(n: u64) -> Fabric {
        let mut f = Fabric::new(FabricConfig::default());
        for _ in 0..n {
            f.join(Advertisement::default());
        }
        f
    }

    fn full_sync_fabric_of(n: u64) -> Fabric {
        let mut f = Fabric::new(FabricConfig {
            mode: GossipMode::FullSync,
            ..FabricConfig::default()
        });
        for _ in 0..n {
            f.join(Advertisement::default());
        }
        f
    }

    #[test]
    fn membership_spreads_to_all_nodes() {
        let mut f = fabric_of(16);
        f.run_rounds(8); // ~2·log2(16)
        for (_, alive) in f.alive_sets_of_up_nodes() {
            assert_eq!(alive.len(), 16, "every node should know all 16 alive");
        }
    }

    #[test]
    fn membership_spreads_in_full_sync_mode_too() {
        let mut f = full_sync_fabric_of(16);
        f.run_rounds(8);
        for (_, alive) in f.alive_sets_of_up_nodes() {
            assert_eq!(alive.len(), 16, "every node should know all 16 alive");
        }
    }

    #[test]
    fn dead_peer_is_detected_and_agreed_on() {
        let mut f = fabric_of(12);
        f.run_rounds(8);
        let victim = PeerId(3);
        f.set_up(victim, false);
        f.run_rounds(40);
        for (id, alive) in f.alive_sets_of_up_nodes() {
            assert!(
                !alive.contains(&victim),
                "node {id} still believes {victim} alive"
            );
        }
        assert!(f.stats().true_detections >= 1);
        assert_eq!(f.stats().false_positives, 0);
        let lat = &f.stats().detection_latency_ms;
        assert!(!lat.is_empty());
        // Probe-failure suspicion detects within seconds of sim time.
        assert!(lat.iter().all(|&ms| ms < 60_000.0), "{lat:?}");
    }

    #[test]
    fn rejoin_refutes_death_certificate() {
        let mut f = fabric_of(10);
        f.run_rounds(8);
        let victim = PeerId(2);
        f.set_up(victim, false);
        f.run_rounds(40);
        f.set_up(victim, true);
        f.run_rounds(12);
        let mut seen_alive = 0;
        for (_, alive) in f.alive_sets_of_up_nodes() {
            if alive.contains(&victim) {
                seen_alive += 1;
            }
        }
        assert_eq!(seen_alive, 10, "rejoin should spread to every node");
    }

    #[test]
    fn derated_peer_is_demoted_by_capacity_ranking() {
        use crate::view::RankBy;
        let mut f = fabric_of(8);
        f.run_rounds(8);
        let overloaded = PeerId(5);
        let observer = PeerId(0);
        let before = f.view(observer).ranked(RankBy::Capacity);
        assert!(before.contains(&overloaded));

        // The saturated appliance re-announces at 10% capacity; the
        // incarnation bump makes it win merge precedence everywhere.
        f.derate(overloaded, 0.1);
        f.run_rounds(8);
        let ranked = f.view(observer).ranked(RankBy::Capacity);
        assert_eq!(
            ranked.last(),
            Some(&overloaded),
            "derated peer should sink to the bottom of capacity ranking"
        );
        assert!(
            ranked.contains(&overloaded),
            "derated, not dead: it stays selectable"
        );
        let seen = f.view(observer);
        let entry = seen.entries().iter().find(|e| e.id == overloaded).unwrap();
        assert!((entry.advert.uplink_mbps - 100.0).abs() < 1e-6);

        // Recovery restores the full advertisement and the ranking.
        f.re_advertise(overloaded, Advertisement::default());
        f.run_rounds(8);
        let seen = f.view(observer);
        let entry = seen.entries().iter().find(|e| e.id == overloaded).unwrap();
        assert!((entry.advert.uplink_mbps - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn quiet_network_has_no_false_positives() {
        let mut f = fabric_of(20);
        f.run_rounds(200);
        assert_eq!(f.stats().false_positives, 0);
        assert_eq!(f.stats().true_detections, 0);
    }

    #[test]
    fn view_reflects_beliefs_and_ledger() {
        let mut f = fabric_of(6);
        f.run_rounds(6);
        f.record_violation(PeerId(1), Violation::Integrity);
        let v = f.view(PeerId(0));
        assert_eq!(v.len(), 6);
        assert!(v.is_alive(PeerId(1)));
        assert!(v.get(PeerId(1)).unwrap().reputation < 1.0);
        assert_eq!(f.ledger().violations(PeerId(1)), 1);
    }

    #[test]
    fn uptime_fraction_tracks_downtime() {
        let mut f = fabric_of(2);
        f.run_rounds(50);
        assert!((f.uptime_fraction(PeerId(0)) - 1.0).abs() < 1e-9);
        f.set_up(PeerId(1), false);
        f.run_rounds(50);
        let up = f.uptime_fraction(PeerId(1));
        assert!((up - 0.5).abs() < 0.02, "expected ~0.5, got {up}");
    }

    #[test]
    fn gossip_bytes_accumulate() {
        let mut f = fabric_of(8);
        f.run_rounds(5);
        assert!(f.stats().gossip_bytes > 0);
        assert!(f.stats().exchanges > 0);
    }

    #[test]
    fn delta_mode_ships_far_fewer_bytes_than_full_sync() {
        let rounds = 60;
        let mut delta = fabric_of(24);
        delta.run_rounds(rounds);
        let mut full = full_sync_fabric_of(24);
        full.run_rounds(rounds);
        let (d, f) = (delta.stats().gossip_bytes, full.stats().gossip_bytes);
        assert!(
            d * 10 < f,
            "delta mode should be >10x cheaper even at n=24: {d} vs {f}"
        );
    }

    #[test]
    fn piggyback_respects_byte_budget() {
        let budget = FabricConfig::default().piggyback_budget_bytes;
        let mut node = NodeRuntime::new();
        for i in 0..40u64 {
            let rec = PeerRecord::alive(PeerId(i), Advertisement::default(), SimTime::ZERO);
            node.table.upsert(rec);
            enqueue_delta(&mut node, PeerId(i), 3);
        }
        let mut msg = Vec::new();
        let mut deltas = Vec::new();
        encode_ping(
            &mut node,
            PeerId(0),
            wire::TAG_PING,
            budget,
            &mut msg,
            &mut deltas,
        );
        assert!(msg.len() <= budget, "{} > {budget}", msg.len());
        let max_deltas = (budget - wire::PING_HEADER_BYTES) / wire::RECORD_BYTES;
        assert_eq!(deltas.len(), max_deltas);
        assert!(!node.queue.is_empty(), "unsent deltas stay queued");
    }

    #[test]
    fn retransmit_limit_scales_with_log_n() {
        assert_eq!(retransmit_limit(3, 2), 3);
        assert_eq!(retransmit_limit(3, 16), 12);
        assert_eq!(retransmit_limit(3, 100), 21);
        assert_eq!(retransmit_limit(3, 0), 3); // clamped to n=2
        assert_eq!(retransmit_limit(0, 100), 1); // at least one send
    }

    #[test]
    fn rejoin_leaves_no_detection_window() {
        // One period down raises suspicions (probe failures) without
        // the grace expiring; the rejoin broadcast must refute them
        // before any observer declares — there is no scoring exemption
        // left to hide a late declaration behind.
        let mut f = fabric_of(10);
        f.run_rounds(8);
        let victim = PeerId(2);
        f.set_up(victim, false);
        f.tick();
        f.set_up(victim, true);
        f.run_rounds(30);
        assert_eq!(f.stats().false_positives, 0);
        for (id, alive) in f.alive_sets_of_up_nodes() {
            assert!(
                alive.contains(&victim),
                "node {id} missing rejoined {victim}"
            );
        }
    }

    #[test]
    fn crashed_peer_with_persisted_incarnation_rejoins_cleanly() {
        use hpop_durability::DurabilityConfig;
        use hpop_netsim::storage::SimDisk;

        let mut f = fabric_of(10);
        let store =
            IncarnationStore::open(SimDisk::new(9), "inc", DurabilityConfig::default()).unwrap();
        f.attach_incarnation_store(store);
        f.run_rounds(8);
        let victim = PeerId(4);
        // Raise the victim's incarnation through a few flap cycles so
        // a post-crash rejoin at 0 would genuinely lose merges.
        for _ in 0..3 {
            f.set_up(victim, false);
            f.run_rounds(1);
            f.set_up(victim, true);
            f.run_rounds(4);
        }
        let pre_crash_inc = f.alive_incarnations(victim)[&victim];
        assert!(pre_crash_inc >= 3);
        // Power loss: runtime state gone, the world declares it dead.
        f.crash(victim);
        f.run_rounds(40);
        assert!(f.stats().true_detections >= 1);
        f.set_up(victim, true);
        let rejoined_inc = f.alive_incarnations(victim)[&victim];
        assert!(
            rejoined_inc > pre_crash_inc,
            "rejoined at {rejoined_inc}, pre-crash was {pre_crash_inc}"
        );
        f.run_rounds(12);
        for (id, alive) in f.alive_sets_of_up_nodes() {
            assert!(alive.contains(&victim), "node {id} missing {victim}");
        }
        assert_eq!(f.stats().false_positives, 0);
    }

    #[test]
    fn amnesiac_rejoin_without_store_recovers_via_self_defense() {
        let mut f = fabric_of(8);
        f.run_rounds(8);
        let victim = PeerId(3);
        for _ in 0..2 {
            f.set_up(victim, false);
            f.tick();
            f.set_up(victim, true);
            f.run_rounds(4);
        }
        f.crash(victim);
        f.run_rounds(40);
        // No store attached: the victim rejoins at incarnation 1 —
        // below the circulating death certificates — but the bootstrap
        // digest sync hands it its own `Dead` record, the self-defense
        // bump jumps past it, and the rest of the broadcast spreads
        // the refutation.
        f.set_up(victim, true);
        f.run_rounds(12);
        for (id, alive) in f.alive_sets_of_up_nodes() {
            assert!(alive.contains(&victim), "node {id} missing {victim}");
        }
        assert_eq!(f.stats().false_positives, 0);
    }

    #[test]
    fn digest_sync_reconciles_divergent_tables() {
        // Latecomers whose join deltas have long expired are still
        // learned through the digest timer.
        let mut f = fabric_of(6);
        f.run_rounds(5);
        let newcomer = f.join(Advertisement::default());
        // Enough rounds for at least two digest cycles at every node.
        f.run_rounds(2 * FabricConfig::default().digest_sync_every as u32);
        for (id, alive) in f.alive_sets_of_up_nodes() {
            assert!(alive.contains(&newcomer), "node {id} missing {newcomer}");
        }
    }

    #[test]
    fn delta_and_digest_bytes_are_split_out() {
        let mut f = fabric_of(10);
        f.set_up(PeerId(4), false);
        f.run_rounds(2 * FabricConfig::default().digest_sync_every as u32);
        let s = f.stats();
        assert!(s.delta_bytes > 0, "churn should produce piggyback bytes");
        assert!(s.digest_syncs > 0, "digest timer should have fired");
        assert!(s.digest_bytes > 0);
        assert!(s.gossip_bytes >= s.delta_bytes + s.digest_bytes);
    }

    #[test]
    fn unknown_observer_views_nothing() {
        let f = fabric_of(3);
        assert!(f.view(PeerId(99)).is_empty());
    }
}
