//! [`Fabric`]: the SWIM-style gossip layer, simulated deterministically.
//!
//! Every protocol period each *up* appliance (a) refreshes its own
//! record, (b) picks one random acquaintance and performs a push-pull
//! anti-entropy exchange (the probe doubles as a heartbeat), and (c)
//! repeats the exchange with `gossip_fanout` extra targets. Membership
//! records carry incarnation numbers and merge under SWIM precedence
//! ([`MembershipTable::merge_record`]), so knowledge — including death
//! certificates — spreads in O(log n) rounds.
//!
//! Failure detection is phi-accrual per (observer, subject): every
//! piece of evidence of life (a direct exchange, or a gossiped record
//! with a fresher self-refresh timestamp) feeds the observer's
//! [`PhiDetector`] for that subject. When `phi + reputation bonus`
//! crosses the threshold the subject is marked [`PeerState::Suspect`];
//! after a grace of `suspect_periods` without refutation it is declared
//! [`PeerState::Dead`]. A peer that comes back bumps its incarnation,
//! which overrides suspicion and death everywhere it propagates.
//!
//! The fabric is driven from outside: a churn schedule (see
//! `hpop_netsim::churn`) calls [`Fabric::set_up`] at transition times
//! and [`Fabric::tick`] once per period. Ground truth stays inside the
//! fabric, which is what lets it *score its own detector*: detection
//! latency (down-transition → first `Dead` declaration) lands in the
//! `fabric.detect.latency_ms` histogram and premature declarations in
//! the `fabric.detect.false_positive` counter.

use crate::detector::PhiDetector;
use crate::member::{Advertisement, MembershipTable, PeerId, PeerRecord, PeerState};
use crate::reputation::{ReputationLedger, Violation};
use crate::view::{PeerEntry, PeerView};
use hpop_netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Serialized size of one membership record on the wire (id +
/// incarnation + state + advertisement + refresh timestamp).
const ENTRY_BYTES: u64 = 56;

/// Tuning knobs of the gossip layer.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Protocol period: one gossip round per period.
    pub period: SimDuration,
    /// Extra anti-entropy targets per round beyond the probe target.
    pub gossip_fanout: usize,
    /// Phi level at which an alive peer becomes suspect.
    pub phi_threshold: f64,
    /// Periods a suspect may linger unrefuted before being declared dead.
    pub suspect_periods: u32,
    /// Sliding-window size of each phi detector.
    pub detector_window: usize,
    /// Periods after which terminal (dead/left) records are evicted
    /// from membership tables.
    pub evict_after_periods: u32,
    /// Seed for every random choice the layer makes.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            period: SimDuration::from_secs(1),
            gossip_fanout: 2,
            phi_threshold: 6.0,
            suspect_periods: 2,
            detector_window: 16,
            evict_after_periods: 300,
            seed: 0x5eedfab,
        }
    }
}

/// Per-node runtime state: the node's own record plus everything it
/// believes and suspects about others.
#[derive(Clone, Debug)]
struct NodeRuntime {
    table: MembershipTable,
    detectors: BTreeMap<PeerId, PhiDetector>,
    suspect_since: BTreeMap<PeerId, SimTime>,
    /// Freshest self-refresh timestamp seen per peer (evidence clock).
    evidence_at: BTreeMap<PeerId, SimTime>,
}

/// Ground-truth uptime accounting for one peer.
#[derive(Clone, Copy, Debug)]
struct Uptime {
    joined_at: SimTime,
    up_since: Option<SimTime>,
    total_up: SimDuration,
}

impl Uptime {
    fn fraction(&self, now: SimTime) -> f64 {
        let lifetime = now.saturating_since(self.joined_at).as_secs_f64();
        if lifetime <= 0.0 {
            return 1.0;
        }
        let mut up = self.total_up.as_secs_f64();
        if let Some(since) = self.up_since {
            up += now.saturating_since(since).as_secs_f64();
        }
        (up / lifetime).clamp(0.0, 1.0)
    }
}

/// Counters the experiments and property tests read back.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    /// Anti-entropy bytes shipped (both directions of every exchange).
    pub gossip_bytes: u64,
    /// Push-pull exchanges performed.
    pub exchanges: u64,
    /// `Dead` declarations that matched ground truth.
    pub true_detections: u64,
    /// `Dead` declarations against a peer that was actually up.
    pub false_positives: u64,
    /// Per-declaration latencies (ms) from the down-transition to each
    /// observer's declaration.
    pub detection_latency_ms: Vec<f64>,
}

/// The gossip membership layer over a set of appliances.
#[derive(Clone, Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    now: SimTime,
    rng: StdRng,
    nodes: BTreeMap<PeerId, NodeRuntime>,
    /// Ground truth: which peers are physically up right now.
    up: BTreeSet<PeerId>,
    uptime: BTreeMap<PeerId, Uptime>,
    /// Ground truth: when each currently-down peer went down.
    went_down_at: BTreeMap<PeerId, SimTime>,
    ledger: ReputationLedger,
    stats: FabricStats,
    next_id: u64,
}

impl Fabric {
    /// An empty fabric starting at the sim epoch.
    pub fn new(cfg: FabricConfig) -> Fabric {
        Fabric {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            now: SimTime::ZERO,
            nodes: BTreeMap::new(),
            up: BTreeSet::new(),
            uptime: BTreeMap::new(),
            went_down_at: BTreeMap::new(),
            ledger: ReputationLedger::new(),
            stats: FabricStats::default(),
            next_id: 0,
        }
    }

    /// The current sim time as seen by the fabric.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The config in force.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Number of peers ever joined.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no peer has joined.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ground truth: is this peer physically up?
    pub fn is_up(&self, id: PeerId) -> bool {
        self.up.contains(&id)
    }

    /// A new appliance joins (initially up). It learns the membership
    /// from one random up introducer (push-pull), who learns it back;
    /// everyone else hears through subsequent gossip.
    pub fn join(&mut self, advert: Advertisement) -> PeerId {
        let id = PeerId(self.next_id);
        self.next_id += 1;
        let mut table = MembershipTable::new();
        table.upsert(PeerRecord::alive(id, advert, self.now));
        self.nodes.insert(
            id,
            NodeRuntime {
                table,
                detectors: BTreeMap::new(),
                suspect_since: BTreeMap::new(),
                evidence_at: BTreeMap::new(),
            },
        );
        self.up.insert(id);
        self.uptime.insert(
            id,
            Uptime {
                joined_at: self.now,
                up_since: Some(self.now),
                total_up: SimDuration::ZERO,
            },
        );
        let introducers: Vec<PeerId> = self.up.iter().copied().filter(|&p| p != id).collect();
        if !introducers.is_empty() {
            let intro = introducers[self.rng.gen_range(0..introducers.len())];
            self.exchange(id, intro);
        }
        id
    }

    /// Flips a peer's ground-truth liveness (driven by the churn
    /// schedule). Coming back up bumps the peer's incarnation so its
    /// re-announcement refutes any suspicion or death certificate
    /// circulating about it.
    pub fn set_up(&mut self, id: PeerId, up: bool) {
        let Some(acc) = self.uptime.get_mut(&id) else {
            return;
        };
        if up && !self.up.contains(&id) {
            acc.up_since = Some(self.now);
            self.up.insert(id);
            self.went_down_at.remove(&id);
            let node = self.nodes.get_mut(&id).expect("joined peers have nodes");
            let mut me = node
                .table
                .get(id)
                .cloned()
                .unwrap_or_else(|| PeerRecord::alive(id, Advertisement::default(), self.now));
            me.incarnation += 1;
            me.state = PeerState::Alive;
            me.updated_at = self.now;
            node.table.upsert(me);
            // Re-announce through a few random up introducers so the
            // incarnation bump outraces in-flight death declarations.
            let introducers: Vec<PeerId> = self.up.iter().copied().filter(|&p| p != id).collect();
            if !introducers.is_empty() {
                let start = self.rng.gen_range(0..introducers.len());
                for off in 0..introducers.len().min(1 + self.cfg.gossip_fanout) {
                    self.exchange(id, introducers[(start + off) % introducers.len()]);
                }
            }
        } else if !up && self.up.remove(&id) {
            if let Some(since) = acc.up_since.take() {
                acc.total_up += self.now.saturating_since(since);
            }
            self.went_down_at.insert(id, self.now);
        }
    }

    /// Advances the clock one protocol period and runs a gossip round
    /// for every up node. Returns the new sim time.
    pub fn tick(&mut self) -> SimTime {
        self.now += self.cfg.period;
        let ids: Vec<PeerId> = self.up.iter().copied().collect();
        for id in &ids {
            self.refresh_self(*id);
        }
        for id in &ids {
            self.round_for(*id);
        }
        let cutoff_periods = self.cfg.evict_after_periods as u64;
        let cutoff = SimTime::from_nanos(
            self.now
                .as_nanos()
                .saturating_sub(self.cfg.period.as_nanos().saturating_mul(cutoff_periods)),
        );
        for id in &ids {
            if let Some(node) = self.nodes.get_mut(id) {
                node.table.evict_terminal_before(cutoff);
            }
        }
        self.now
    }

    /// Runs `n` ticks back to back.
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.tick();
        }
    }

    fn refresh_self(&mut self, id: PeerId) {
        if let Some(node) = self.nodes.get_mut(&id) {
            if let Some(me) = node.table.get(id).cloned() {
                let mut me = me;
                me.state = PeerState::Alive;
                me.updated_at = self.now;
                node.table.upsert(me);
            }
        }
    }

    fn round_for(&mut self, id: PeerId) {
        // Pick the probe target plus fanout extra anti-entropy targets
        // among non-terminal acquaintances.
        let candidates: Vec<PeerId> = self
            .nodes
            .get(&id)
            .map(|n| {
                n.table
                    .iter()
                    .filter(|r| r.id != id && !matches!(r.state, PeerState::Dead | PeerState::Left))
                    .map(|r| r.id)
                    .collect()
            })
            .unwrap_or_default();
        if !candidates.is_empty() {
            let contacts = 1 + self.cfg.gossip_fanout;
            let mut chosen = BTreeSet::new();
            for _ in 0..contacts.min(candidates.len()) {
                // Rejection-free pick: scan from a random start offset.
                let start = self.rng.gen_range(0..candidates.len());
                for off in 0..candidates.len() {
                    let c = candidates[(start + off) % candidates.len()];
                    if chosen.insert(c) {
                        break;
                    }
                }
            }
            for target in chosen {
                if self.up.contains(&target) {
                    self.exchange(id, target);
                }
                // A down target simply doesn't answer: no evidence, no
                // bytes — the observer's phi for it keeps growing.
            }
        }
        self.assess(id);
    }

    /// Push-pull anti-entropy between two up nodes: each merges the
    /// other's table and harvests evidence-of-life timestamps.
    fn exchange(&mut self, a: PeerId, b: PeerId) {
        let (Some(na), Some(nb)) = (self.nodes.get(&a), self.nodes.get(&b)) else {
            return;
        };
        let recs_a: Vec<PeerRecord> = na.table.iter().cloned().collect();
        let recs_b: Vec<PeerRecord> = nb.table.iter().cloned().collect();
        self.stats.gossip_bytes += (recs_a.len() + recs_b.len()) as u64 * ENTRY_BYTES;
        self.stats.exchanges += 1;
        hpop_obs::metrics()
            .counter("fabric.gossip.bytes")
            .add((recs_a.len() + recs_b.len()) as u64 * ENTRY_BYTES);
        let now = self.now;
        let window = self.cfg.detector_window;
        let period_s = self.cfg.period.as_secs_f64();
        let mut apply = |dst: PeerId, recs: &[PeerRecord], direct_peer: PeerId| {
            let node = self.nodes.get_mut(&dst).expect("exchange peers exist");
            for rec in recs {
                if rec.id == dst {
                    // Others' beliefs about me: refute anything but alive
                    // by bumping my incarnation (SWIM self-defense).
                    if rec.state != PeerState::Alive {
                        let mut me = node.table.get(dst).cloned().expect("self record");
                        if rec.incarnation >= me.incarnation {
                            me.incarnation = rec.incarnation + 1;
                            me.state = PeerState::Alive;
                            me.updated_at = now;
                            node.table.upsert(me);
                        }
                    }
                    continue;
                }
                node.table.merge_record(rec);
                // Evidence of life: the subject's own refresh timestamp,
                // or the direct contact itself.
                let evidence = if rec.id == direct_peer {
                    Some(now)
                } else if rec.state == PeerState::Alive {
                    Some(rec.updated_at)
                } else {
                    None
                };
                if let Some(at) = evidence {
                    let freshest = node.evidence_at.entry(rec.id).or_insert(SimTime::ZERO);
                    if at > *freshest || rec.id == direct_peer {
                        *freshest = at;
                        node.detectors
                            .entry(rec.id)
                            .or_insert_with(|| PhiDetector::new(window, period_s))
                            .heartbeat(at);
                        // Fresh life evidence clears any local suspicion.
                        node.suspect_since.remove(&rec.id);
                        if let Some(r) = node.table.get(rec.id) {
                            if r.state == PeerState::Suspect && r.incarnation == rec.incarnation {
                                let mut r = r.clone();
                                r.state = PeerState::Alive;
                                node.table.upsert(r);
                            }
                        }
                    }
                }
            }
        };
        apply(a, &recs_b, b);
        apply(b, &recs_a, a);
    }

    /// Applies the failure detector: walks the observer's table,
    /// promotes over-threshold alive peers to suspect, and suspects
    /// past the grace period to dead.
    fn assess(&mut self, observer: PeerId) {
        let now = self.now;
        let grace = self
            .cfg
            .period
            .saturating_mul(self.cfg.suspect_periods as u64);
        let threshold = self.cfg.phi_threshold;
        // Collect decisions first (borrow discipline), then apply.
        let mut to_suspect = Vec::new();
        let mut to_kill = Vec::new();
        {
            let Some(node) = self.nodes.get(&observer) else {
                return;
            };
            for rec in node.table.iter() {
                if rec.id == observer {
                    continue;
                }
                match rec.state {
                    PeerState::Alive => {
                        let phi = node.detectors.get(&rec.id).map_or(0.0, |d| d.phi(now))
                            + self.ledger.phi_bonus(rec.id);
                        if phi > threshold {
                            to_suspect.push(rec.id);
                        }
                    }
                    PeerState::Suspect => {
                        let since = node.suspect_since.get(&rec.id).copied().unwrap_or(now);
                        if now.saturating_since(since) >= grace {
                            to_kill.push(rec.id);
                        }
                    }
                    _ => {}
                }
            }
        }
        let node = self.nodes.get_mut(&observer).expect("observer exists");
        for id in to_suspect {
            node.table.set_state(id, PeerState::Suspect, now);
            node.suspect_since.entry(id).or_insert(now);
        }
        let mut declared: Vec<PeerId> = Vec::new();
        for id in to_kill {
            if node.table.set_state(id, PeerState::Dead, now) {
                node.suspect_since.remove(&id);
                declared.push(id);
            }
        }
        for id in declared {
            self.score_declaration(id);
        }
    }

    /// Scores one `Dead` declaration against ground truth.
    fn score_declaration(&mut self, subject: PeerId) {
        let m = hpop_obs::metrics();
        if let Some(&down_at) = self.went_down_at.get(&subject) {
            let latency_ms = self.now.saturating_since(down_at).as_millis_f64();
            self.stats.true_detections += 1;
            self.stats.detection_latency_ms.push(latency_ms);
            m.histogram("fabric.detect.latency_ms")
                .record(latency_ms.round() as u64);
        } else {
            self.stats.false_positives += 1;
            m.counter("fabric.detect.false_positive").incr();
        }
    }

    /// The membership as one observer currently believes it, joined
    /// with the shared ledger and ground-truth uptime accounting.
    ///
    /// Returns an empty view for unknown observers.
    pub fn view(&self, observer: PeerId) -> PeerView {
        let Some(node) = self.nodes.get(&observer) else {
            return PeerView::default();
        };
        let entries = node
            .table
            .iter()
            .map(|r| PeerEntry {
                id: r.id,
                state: r.state,
                advert: r.advert,
                uptime_fraction: self.uptime_fraction(r.id),
                reputation: self.ledger.score(r.id),
            })
            .collect();
        PeerView::new(entries)
    }

    /// The omniscient view: every joined peer with its ground-truth
    /// liveness. Experiments use it as the accuracy baseline.
    pub fn ground_truth_view(&self) -> PeerView {
        let entries = self
            .nodes
            .keys()
            .filter_map(|&id| {
                let advert = self.nodes[&id].table.get(id)?.advert;
                Some(PeerEntry {
                    id,
                    state: if self.up.contains(&id) {
                        PeerState::Alive
                    } else {
                        PeerState::Dead
                    },
                    advert,
                    uptime_fraction: self.uptime_fraction(id),
                    reputation: self.ledger.score(id),
                })
            })
            .collect();
        PeerView::new(entries)
    }

    /// Ground-truth fraction of its lifetime this peer has been up.
    pub fn uptime_fraction(&self, id: PeerId) -> f64 {
        self.uptime.get(&id).map_or(0.0, |u| u.fraction(self.now))
    }

    /// Read access to the shared reputation ledger.
    pub fn ledger(&self) -> &ReputationLedger {
        &self.ledger
    }

    /// Records a service-observed violation on the shared ledger.
    pub fn record_violation(&mut self, id: PeerId, kind: Violation) -> f64 {
        self.ledger.record_violation(id, kind)
    }

    /// Detector/gossip statistics so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The ids every *up* node currently believes alive, per node —
    /// the convergence witness the property tests assert on.
    pub fn alive_sets_of_up_nodes(&self) -> Vec<(PeerId, BTreeSet<PeerId>)> {
        self.up
            .iter()
            .map(|&id| {
                let set: BTreeSet<PeerId> = self.nodes[&id].table.alive_ids().into_iter().collect();
                (id, set)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric_of(n: u64) -> Fabric {
        let mut f = Fabric::new(FabricConfig::default());
        for _ in 0..n {
            f.join(Advertisement::default());
        }
        f
    }

    #[test]
    fn membership_spreads_to_all_nodes() {
        let mut f = fabric_of(16);
        f.run_rounds(8); // ~2·log2(16)
        for (_, alive) in f.alive_sets_of_up_nodes() {
            assert_eq!(alive.len(), 16, "every node should know all 16 alive");
        }
    }

    #[test]
    fn dead_peer_is_detected_and_agreed_on() {
        let mut f = fabric_of(12);
        f.run_rounds(8);
        let victim = PeerId(3);
        f.set_up(victim, false);
        f.run_rounds(40);
        for (id, alive) in f.alive_sets_of_up_nodes() {
            assert!(
                !alive.contains(&victim),
                "node {id} still believes {victim} alive"
            );
        }
        assert!(f.stats().true_detections >= 1);
        assert_eq!(f.stats().false_positives, 0);
        let lat = &f.stats().detection_latency_ms;
        assert!(!lat.is_empty());
        // Detection should land within a minute of sim time.
        assert!(lat.iter().all(|&ms| ms < 60_000.0), "{lat:?}");
    }

    #[test]
    fn rejoin_refutes_death_certificate() {
        let mut f = fabric_of(10);
        f.run_rounds(8);
        let victim = PeerId(2);
        f.set_up(victim, false);
        f.run_rounds(40);
        f.set_up(victim, true);
        f.run_rounds(12);
        let mut seen_alive = 0;
        for (_, alive) in f.alive_sets_of_up_nodes() {
            if alive.contains(&victim) {
                seen_alive += 1;
            }
        }
        assert_eq!(seen_alive, 10, "rejoin should spread to every node");
    }

    #[test]
    fn quiet_network_has_no_false_positives() {
        let mut f = fabric_of(20);
        f.run_rounds(200);
        assert_eq!(f.stats().false_positives, 0);
        assert_eq!(f.stats().true_detections, 0);
    }

    #[test]
    fn view_reflects_beliefs_and_ledger() {
        let mut f = fabric_of(6);
        f.run_rounds(6);
        f.record_violation(PeerId(1), Violation::Integrity);
        let v = f.view(PeerId(0));
        assert_eq!(v.len(), 6);
        assert!(v.is_alive(PeerId(1)));
        assert!(v.get(PeerId(1)).unwrap().reputation < 1.0);
        assert_eq!(f.ledger().violations(PeerId(1)), 1);
    }

    #[test]
    fn uptime_fraction_tracks_downtime() {
        let mut f = fabric_of(2);
        f.run_rounds(50);
        assert!((f.uptime_fraction(PeerId(0)) - 1.0).abs() < 1e-9);
        f.set_up(PeerId(1), false);
        f.run_rounds(50);
        let up = f.uptime_fraction(PeerId(1));
        assert!((up - 0.5).abs() < 0.02, "expected ~0.5, got {up}");
    }

    #[test]
    fn gossip_bytes_accumulate() {
        let mut f = fabric_of(8);
        f.run_rounds(5);
        assert!(f.stats().gossip_bytes > 0);
        assert!(f.stats().exchanges > 0);
    }

    #[test]
    fn unknown_observer_views_nothing() {
        let f = fabric_of(3);
        assert!(f.view(PeerId(99)).is_empty());
    }
}
