//! Wire encoding of gossip messages.
//!
//! The fabric is a deterministic simulation, but its byte accounting
//! must be honest: `fabric.gossip.bytes` is the serialized size of
//! every message the protocol would put on the aggregation link, not a
//! `records × constant` estimate. This module defines the three
//! message shapes and their exact layouts; the gossip layer encodes
//! each message into a reusable scratch buffer and charges `buf.len()`.
//!
//! All integers are little-endian. Layouts:
//!
//! - **Ping / ack** (`TAG_PING` / `TAG_ACK`): `tag(1) sender(8)
//!   incarnation(8) delta_count(1)` followed by up to 255 piggybacked
//!   records. The header doubles as a heartbeat: it proves the sender
//!   is alive at its stated incarnation.
//! - **Digest** (`TAG_DIGEST`): `tag(1) sender(8) entry_count(2)`
//!   followed by `(id(8) incarnation(8) state_rank(1))` per known
//!   peer — just enough for the receiver to decide, under SWIM
//!   precedence, which full records it must send back.
//! - **Records** (`TAG_RECORDS`): `tag(1) sender(8) record_count(2)`
//!   followed by full records — the digest reply, and the whole-table
//!   payload of the legacy full-sync mode.
//!
//! A record is `id(8) incarnation(8) state(1) storage_bytes(8)
//! uplink_mbps(f32) cache_slots(4) rtt_ms(f32) updated_at(8)` =
//! [`RECORD_BYTES`] bytes. Advertised floats travel as `f32`: the
//! ranking inputs need ~3 significant digits, not 15.
//!
//! The simulation applies the sender's in-memory records directly
//! (zero-copy within one process); the codec below is validated by
//! round-trip tests so the byte counts correspond to a format that
//! really can carry the protocol.

use crate::member::{Advertisement, PeerId, PeerRecord, PeerState};
use hpop_netsim::time::SimTime;

/// Tag byte of a probe message.
pub const TAG_PING: u8 = 1;
/// Tag byte of a probe acknowledgement.
pub const TAG_ACK: u8 = 2;
/// Tag byte of an anti-entropy digest.
pub const TAG_DIGEST: u8 = 3;
/// Tag byte of a full-record payload (digest reply / full sync).
pub const TAG_RECORDS: u8 = 4;

/// Serialized size of one ping/ack header.
pub const PING_HEADER_BYTES: usize = 1 + 8 + 8 + 1;
/// Serialized size of a digest or records header.
pub const LIST_HEADER_BYTES: usize = 1 + 8 + 2;
/// Serialized size of one digest entry.
pub const DIGEST_ENTRY_BYTES: usize = 8 + 8 + 1;
/// Serialized size of one full membership record.
pub const RECORD_BYTES: usize = 8 + 8 + 1 + 8 + 4 + 4 + 4 + 8;

fn state_code(s: PeerState) -> u8 {
    match s {
        PeerState::Alive => 0,
        PeerState::Suspect => 1,
        PeerState::Dead => 2,
        PeerState::Left => 3,
    }
}

fn state_from_code(c: u8) -> Option<PeerState> {
    Some(match c {
        0 => PeerState::Alive,
        1 => PeerState::Suspect,
        2 => PeerState::Dead,
        3 => PeerState::Left,
        _ => return None,
    })
}

/// Starts a ping/ack message; piggybacked records follow via
/// [`push_record`], which maintains the count byte.
pub fn begin_ping(buf: &mut Vec<u8>, tag: u8, sender: PeerId, incarnation: u64) {
    buf.clear();
    buf.push(tag);
    buf.extend_from_slice(&sender.0.to_le_bytes());
    buf.extend_from_slice(&incarnation.to_le_bytes());
    buf.push(0);
}

/// Starts a digest or records message; entries follow via
/// [`push_record`] / [`push_digest_entry`], which maintain the count.
pub fn begin_list(buf: &mut Vec<u8>, tag: u8, sender: PeerId) {
    buf.clear();
    buf.push(tag);
    buf.extend_from_slice(&sender.0.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
}

fn bump_count(buf: &mut [u8]) {
    match buf[0] {
        TAG_PING | TAG_ACK => buf[PING_HEADER_BYTES - 1] += 1,
        _ => {
            let at = LIST_HEADER_BYTES - 2;
            let n = u16::from_le_bytes([buf[at], buf[at + 1]]) + 1;
            buf[at..at + 2].copy_from_slice(&n.to_le_bytes());
        }
    }
}

/// Appends one full record to a started message.
pub fn push_record(buf: &mut Vec<u8>, rec: &PeerRecord) {
    bump_count(buf);
    buf.extend_from_slice(&rec.id.0.to_le_bytes());
    buf.extend_from_slice(&rec.incarnation.to_le_bytes());
    buf.push(state_code(rec.state));
    buf.extend_from_slice(&rec.advert.storage_bytes.to_le_bytes());
    buf.extend_from_slice(&(rec.advert.uplink_mbps as f32).to_le_bytes());
    buf.extend_from_slice(&rec.advert.cache_slots.to_le_bytes());
    buf.extend_from_slice(&(rec.advert.rtt_ms as f32).to_le_bytes());
    buf.extend_from_slice(&rec.updated_at.as_nanos().to_le_bytes());
}

/// Appends one digest entry to a started digest message.
pub fn push_digest_entry(buf: &mut Vec<u8>, id: PeerId, incarnation: u64, state: PeerState) {
    bump_count(buf);
    buf.extend_from_slice(&id.0.to_le_bytes());
    buf.extend_from_slice(&incarnation.to_le_bytes());
    buf.push(state_code(state));
}

fn take<const N: usize>(data: &mut &[u8]) -> Option<[u8; N]> {
    if data.len() < N {
        return None;
    }
    let (head, rest) = data.split_at(N);
    *data = rest;
    Some(head.try_into().expect("split_at guarantees length"))
}

/// Decodes one record from the front of `data`, advancing it.
pub fn decode_record(data: &mut &[u8]) -> Option<PeerRecord> {
    let id = PeerId(u64::from_le_bytes(take::<8>(data)?));
    let incarnation = u64::from_le_bytes(take::<8>(data)?);
    let state = state_from_code(take::<1>(data)?[0])?;
    let storage_bytes = u64::from_le_bytes(take::<8>(data)?);
    let uplink_mbps = f32::from_le_bytes(take::<4>(data)?) as f64;
    let cache_slots = u32::from_le_bytes(take::<4>(data)?);
    let rtt_ms = f32::from_le_bytes(take::<4>(data)?) as f64;
    let updated_at = SimTime::from_nanos(u64::from_le_bytes(take::<8>(data)?));
    Some(PeerRecord {
        id,
        state,
        incarnation,
        advert: Advertisement {
            storage_bytes,
            uplink_mbps,
            cache_slots,
            rtt_ms,
        },
        updated_at,
    })
}

/// Decoded view of one message, for tests and debugging.
#[derive(Debug, PartialEq)]
pub enum Message {
    /// A probe or its acknowledgement with piggybacked deltas.
    Ping {
        /// `TAG_PING` or `TAG_ACK`.
        tag: u8,
        /// Who sent it.
        sender: PeerId,
        /// The sender's current incarnation (heartbeat payload).
        incarnation: u64,
        /// Piggybacked delta records.
        deltas: Vec<PeerRecord>,
    },
    /// An anti-entropy digest: `(id, incarnation, state)` per peer.
    Digest {
        /// Who sent it.
        sender: PeerId,
        /// One summary entry per known peer.
        entries: Vec<(PeerId, u64, PeerState)>,
    },
    /// Full records (digest reply or full-sync payload).
    Records {
        /// Who sent it.
        sender: PeerId,
        /// The records shipped.
        records: Vec<PeerRecord>,
    },
}

/// Decodes a whole message. Returns `None` on truncation, an unknown
/// tag, or trailing garbage.
pub fn decode_message(mut data: &[u8]) -> Option<Message> {
    let data = &mut data;
    let tag = take::<1>(data)?[0];
    let sender = PeerId(u64::from_le_bytes(take::<8>(data)?));
    let msg = match tag {
        TAG_PING | TAG_ACK => {
            let incarnation = u64::from_le_bytes(take::<8>(data)?);
            let n = take::<1>(data)?[0] as usize;
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                deltas.push(decode_record(data)?);
            }
            Message::Ping {
                tag,
                sender,
                incarnation,
                deltas,
            }
        }
        TAG_DIGEST => {
            let n = u16::from_le_bytes(take::<2>(data)?) as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let id = PeerId(u64::from_le_bytes(take::<8>(data)?));
                let inc = u64::from_le_bytes(take::<8>(data)?);
                let state = state_from_code(take::<1>(data)?[0])?;
                entries.push((id, inc, state));
            }
            Message::Digest { sender, entries }
        }
        TAG_RECORDS => {
            let n = u16::from_le_bytes(take::<2>(data)?) as usize;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(decode_record(data)?);
            }
            Message::Records { sender, records }
        }
        _ => return None,
    };
    if !data.is_empty() {
        return None;
    }
    Some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, state: PeerState, inc: u64) -> PeerRecord {
        PeerRecord {
            id: PeerId(id),
            state,
            incarnation: inc,
            advert: Advertisement {
                storage_bytes: 7 * 1024 * 1024 * 1024,
                uplink_mbps: 250.0,
                cache_slots: 64,
                rtt_ms: 12.5,
            },
            updated_at: SimTime::from_secs(1234),
        }
    }

    #[test]
    fn ping_roundtrip_with_deltas() {
        let mut buf = Vec::new();
        begin_ping(&mut buf, TAG_PING, PeerId(9), 3);
        push_record(&mut buf, &rec(1, PeerState::Alive, 0));
        push_record(&mut buf, &rec(2, PeerState::Suspect, 5));
        assert_eq!(buf.len(), PING_HEADER_BYTES + 2 * RECORD_BYTES);
        let Some(Message::Ping {
            tag,
            sender,
            incarnation,
            deltas,
        }) = decode_message(&buf)
        else {
            panic!("ping should decode");
        };
        assert_eq!((tag, sender, incarnation), (TAG_PING, PeerId(9), 3));
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].id, PeerId(1));
        assert_eq!(deltas[1].state, PeerState::Suspect);
        assert_eq!(deltas[1].incarnation, 5);
        // f32 carriage is exact for these advertised values.
        assert_eq!(deltas[0].advert.rtt_ms, 12.5);
        assert_eq!(deltas[0].advert.uplink_mbps, 250.0);
        assert_eq!(deltas[0].updated_at, SimTime::from_secs(1234));
    }

    #[test]
    fn empty_ping_is_header_only() {
        let mut buf = Vec::new();
        begin_ping(&mut buf, TAG_ACK, PeerId(0), 0);
        assert_eq!(buf.len(), PING_HEADER_BYTES);
        assert!(matches!(
            decode_message(&buf),
            Some(Message::Ping { tag: TAG_ACK, deltas, .. }) if deltas.is_empty()
        ));
    }

    #[test]
    fn digest_roundtrip() {
        let mut buf = Vec::new();
        begin_list(&mut buf, TAG_DIGEST, PeerId(4));
        for i in 0..300u64 {
            push_digest_entry(&mut buf, PeerId(i), i * 2, PeerState::Alive);
        }
        assert_eq!(buf.len(), LIST_HEADER_BYTES + 300 * DIGEST_ENTRY_BYTES);
        let Some(Message::Digest { sender, entries }) = decode_message(&buf) else {
            panic!("digest should decode");
        };
        assert_eq!(sender, PeerId(4));
        assert_eq!(entries.len(), 300);
        assert_eq!(entries[299], (PeerId(299), 598, PeerState::Alive));
    }

    #[test]
    fn records_roundtrip() {
        let mut buf = Vec::new();
        begin_list(&mut buf, TAG_RECORDS, PeerId(7));
        push_record(&mut buf, &rec(3, PeerState::Dead, 2));
        let Some(Message::Records { sender, records }) = decode_message(&buf) else {
            panic!("records should decode");
        };
        assert_eq!(sender, PeerId(7));
        assert_eq!(records[0].state, PeerState::Dead);
    }

    #[test]
    fn truncation_and_bad_tags_rejected() {
        let mut buf = Vec::new();
        begin_ping(&mut buf, TAG_PING, PeerId(1), 0);
        push_record(&mut buf, &rec(1, PeerState::Alive, 0));
        assert!(decode_message(&buf[..buf.len() - 1]).is_none());
        assert!(decode_message(&[]).is_none());
        assert!(decode_message(&[99]).is_none());
        // Trailing garbage is rejected too.
        buf.push(0);
        assert!(decode_message(&buf).is_none());
    }
}
