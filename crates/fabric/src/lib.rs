//! # hpop-fabric — gossip membership for the neighborhood of appliances
//!
//! Every HPoP service leans on *other people's home appliances*: the
//! Data Attic spreads erasure-coded shards over friends' attics (§IV-A),
//! NoCDN recruits well-connected users as edge servers (§IV-B), the
//! Detour Collective relays subflows through cooperative waypoints
//! (§IV-C), and the neighborhood cache shares one copy of each object
//! across homes (§IV-D). Home appliances are not data-center machines:
//! they reboot, lose power, move away. Peer-assisted delivery lives or
//! dies on membership quality, so this crate is the shared substrate
//! that tracks *who is out there, who is alive, and who can be trusted*:
//!
//! - [`member`] — per-peer records ([`PeerRecord`]) with SWIM-style
//!   states (alive / suspect / dead / left), incarnation numbers, and
//!   capacity/uptime advertisements ([`Advertisement`]).
//! - [`detector`] — a phi-accrual-flavored failure detector
//!   ([`PhiDetector`]): suspicion is a continuous level derived from
//!   heartbeat inter-arrival history, not a binary timeout.
//! - [`reputation`] — the violation ledger ([`ReputationLedger`]):
//!   integrity/accounting/misrouting violations reported by services
//!   feed both ranking and suspicion.
//! - [`gossip`] — [`Fabric`]: a deterministic simulation of the whole
//!   gossip layer (N appliances exchanging pings and piggybacked
//!   membership updates each protocol period), driven by the netsim
//!   clock and a churn schedule. Runs SWIM-style delta dissemination
//!   with digest anti-entropy by default; the legacy full-table
//!   push-pull survives as [`GossipMode::FullSync`].
//! - [`wire`] — exact serialized layouts of ping/ack, digest and
//!   record messages, so byte accounting reflects a real format.
//! - [`view`] — [`PeerView`]: the query API every service selects peers
//!   through — alive peers filtered and ranked by capacity, locality
//!   and reputation.
//! - [`persist`] — crash-consistent fabric state:
//!   [`IncarnationStore`] write-through persistence of self-incarnation
//!   numbers (so a crashed appliance rejoins *above* every stale death
//!   certificate instead of waiting out a rejoin window) and
//!   [`DurableReputation`] (violation evidence that survives provider
//!   restarts).
//!
//! Instrumented through `hpop-obs`: detection-latency histogram
//! (`fabric.detect.latency_ms`), false-positive counter
//! (`fabric.detect.false_positive`), gossip bytes split by kind
//! (`fabric.gossip.bytes`, `fabric.gossip.delta_bytes`,
//! `fabric.gossip.digest_bytes`), digest-sync count
//! (`fabric.gossip.digest_syncs`) and the piggyback-queue depth
//! histogram (`fabric.gossip.piggyback.depth`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod gossip;
pub mod member;
pub mod persist;
pub mod reputation;
pub mod view;
pub mod wire;

#[cfg(test)]
mod proptests;

pub use detector::PhiDetector;
pub use gossip::{Fabric, FabricConfig, FabricStats, GossipMode};
pub use member::{Advertisement, MembershipTable, PeerId, PeerRecord, PeerState};
pub use persist::{DurableReputation, IncarnationStore};
pub use reputation::{ReputationLedger, Violation};
pub use view::{PeerEntry, PeerView, RankBy};
