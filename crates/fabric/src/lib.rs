//! # hpop-fabric — gossip membership for the neighborhood of appliances
//!
//! Every HPoP service leans on *other people's home appliances*: the
//! Data Attic spreads erasure-coded shards over friends' attics (§IV-A),
//! NoCDN recruits well-connected users as edge servers (§IV-B), the
//! Detour Collective relays subflows through cooperative waypoints
//! (§IV-C), and the neighborhood cache shares one copy of each object
//! across homes (§IV-D). Home appliances are not data-center machines:
//! they reboot, lose power, move away. Peer-assisted delivery lives or
//! dies on membership quality, so this crate is the shared substrate
//! that tracks *who is out there, who is alive, and who can be trusted*:
//!
//! - [`member`] — per-peer records ([`PeerRecord`]) with SWIM-style
//!   states (alive / suspect / dead / left), incarnation numbers, and
//!   capacity/uptime advertisements ([`Advertisement`]).
//! - [`detector`] — a phi-accrual-flavored failure detector
//!   ([`PhiDetector`]): suspicion is a continuous level derived from
//!   heartbeat inter-arrival history, not a binary timeout.
//! - [`reputation`] — the violation ledger ([`ReputationLedger`]):
//!   integrity/accounting/misrouting violations reported by services
//!   feed both ranking and suspicion.
//! - [`gossip`] — [`Fabric`]: a deterministic simulation of the whole
//!   gossip layer (N appliances exchanging pings and piggybacked
//!   membership updates each protocol period), driven by the netsim
//!   clock and a churn schedule.
//! - [`view`] — [`PeerView`]: the query API every service selects peers
//!   through — alive peers filtered and ranked by capacity, locality
//!   and reputation.
//!
//! Instrumented through `hpop-obs`: detection-latency histogram
//! (`fabric.detect.latency_ms`), false-positive counter
//! (`fabric.detect.false_positive`) and gossip fan-out bytes
//! (`fabric.gossip.bytes`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod gossip;
pub mod member;
pub mod reputation;
pub mod view;

#[cfg(test)]
mod proptests;

pub use detector::PhiDetector;
pub use gossip::{Fabric, FabricConfig};
pub use member::{Advertisement, MembershipTable, PeerId, PeerRecord, PeerState};
pub use reputation::{ReputationLedger, Violation};
pub use view::{PeerEntry, PeerView, RankBy};
