//! Property-based tests of the fabric's two load-bearing guarantees.
//!
//! 1. **Convergence**: under a seeded churn schedule
//!    (`hpop_netsim::churn`), once churn quiesces, every live node
//!    agrees on the live set within a detector constant plus
//!    O(log n) gossip rounds.
//! 2. **Accuracy**: in a quiet network (no churn), the failure
//!    detector never declares a never-failed peer dead — zero false
//!    positives at the configured phi threshold.

use crate::gossip::{Fabric, FabricConfig};
use crate::member::{Advertisement, PeerId};
use hpop_netsim::churn::{ChurnConfig, ChurnSchedule};
use hpop_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds a fabric of `n` nodes with slightly varied advertisements.
fn fabric_of(n: usize, seed: u64) -> Fabric {
    let mut f = Fabric::new(FabricConfig {
        seed,
        ..FabricConfig::default()
    });
    for i in 0..n {
        f.join(Advertisement {
            rtt_ms: 2.0 + (i % 7) as f64 * 3.0,
            ..Advertisement::default()
        });
    }
    f
}

/// Drives `fabric` against `churn` for `secs` one-second rounds,
/// applying ground-truth transitions as they occur.
fn drive(fabric: &mut Fabric, churn: &ChurnSchedule, secs: u64) {
    for s in 0..secs {
        let from = SimTime::from_secs(s);
        let to = SimTime::from_secs(s + 1);
        for ev in churn.transitions_in(from, to) {
            fabric.set_up(PeerId(ev.node as u64), ev.up);
        }
        fabric.tick();
    }
}

/// The post-quiescence round budget: a detector constant (phi build-up
/// plus the suspicion grace) plus C·log2(n) rounds of gossip spread.
fn convergence_budget(n: usize) -> u64 {
    let log2n = (usize::BITS - n.next_power_of_two().leading_zeros()) as u64;
    40 + 4 * log2n
}

proptest! {
    /// After the churn schedule quiesces, all live nodes agree on the
    /// live set — and that set is the ground truth — within
    /// `convergence_budget(n)` rounds.
    #[test]
    fn membership_converges_after_churn(
        n in 4usize..14,
        seed in 0u64..1_000,
    ) {
        let horizon = SimTime::from_secs(90);
        let churn = ChurnSchedule::generate(
            n,
            ChurnConfig {
                churn_fraction: 0.4,
                mean_session: SimDuration::from_secs(45),
                mean_downtime: SimDuration::from_secs(15),
                seed: seed.wrapping_mul(31) ^ 0xc0ffee,
            },
            horizon,
        );
        let mut fabric = fabric_of(n, seed);
        drive(&mut fabric, &churn, 90);
        // Churn has quiesced (the schedule is empty past the horizon);
        // give the detector-plus-gossip budget and assert agreement.
        fabric.run_rounds(convergence_budget(n) as u32);

        let truth: BTreeSet<PeerId> = (0..n)
            .filter(|&i| churn.is_up(i, horizon))
            .map(|i| PeerId(i as u64))
            .collect();
        prop_assert!(!truth.is_empty(), "at least the non-churners are up");
        for (observer, alive) in fabric.alive_sets_of_up_nodes() {
            prop_assert_eq!(
                &alive, &truth,
                "observer {} disagrees with ground truth", observer
            );
        }
    }

    /// A quiet network never produces a false positive: no peer is
    /// declared dead, no detection fires at all.
    #[test]
    fn quiet_network_zero_false_positives(
        n in 2usize..18,
        rounds in 20u32..120,
        seed in 0u64..1_000,
    ) {
        let mut fabric = fabric_of(n, seed);
        fabric.run_rounds(rounds);
        prop_assert_eq!(fabric.stats().false_positives, 0);
        prop_assert_eq!(fabric.stats().true_detections, 0);
        // Stronger: every node still believes every node alive.
        for (observer, alive) in fabric.alive_sets_of_up_nodes() {
            prop_assert_eq!(
                alive.len(), n,
                "observer {} lost someone in a quiet network", observer
            );
        }
    }
}
