//! Property-based tests of the fabric's load-bearing guarantees.
//!
//! 1. **Convergence**: under a seeded churn schedule
//!    (`hpop_netsim::churn`), once churn quiesces, every live node
//!    agrees on the live set within a detector constant plus
//!    O(log n) gossip rounds.
//! 2. **Accuracy**: in a quiet network (no churn), the failure
//!    detector never declares a never-failed peer dead — zero false
//!    positives at the configured phi threshold.
//! 3. **Mode equivalence**: delta dissemination and legacy full-sync
//!    converge, from the same seed and churn schedule, to identical
//!    membership tables — same alive sets *and* same incarnations
//!    (one bump per rejoin in either mode).
//! 4. **Digest reconciliation**: knowledge that can no longer travel
//!    by piggyback (every retransmit spent while a peer was
//!    partitioned away) still reaches it — through the digest sync
//!    that bootstraps its rejoin, at the moment of heal.

use crate::gossip::{Fabric, FabricConfig, GossipMode};
use crate::member::{Advertisement, PeerId};
use hpop_netsim::churn::{ChurnConfig, ChurnSchedule};
use hpop_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Builds a fabric of `n` nodes with slightly varied advertisements.
fn fabric_with(n: usize, cfg: FabricConfig) -> Fabric {
    let mut f = Fabric::new(cfg);
    for i in 0..n {
        f.join(Advertisement {
            rtt_ms: 2.0 + (i % 7) as f64 * 3.0,
            ..Advertisement::default()
        });
    }
    f
}

fn fabric_of(n: usize, seed: u64) -> Fabric {
    fabric_with(
        n,
        FabricConfig {
            seed,
            ..FabricConfig::default()
        },
    )
}

/// Drives `fabric` against `churn` for `secs` one-second rounds,
/// applying ground-truth transitions as they occur.
fn drive(fabric: &mut Fabric, churn: &ChurnSchedule, secs: u64) {
    for s in 0..secs {
        let from = SimTime::from_secs(s);
        let to = SimTime::from_secs(s + 1);
        for ev in churn.transitions_in(from, to) {
            fabric.set_up(PeerId(ev.node as u64), ev.up);
        }
        fabric.tick();
    }
}

/// The post-quiescence round budget: a detector constant (phi build-up
/// plus the suspicion grace) plus C·log2(n) rounds of gossip spread.
fn convergence_budget(n: usize) -> u64 {
    let log2n = (usize::BITS - n.next_power_of_two().leading_zeros()) as u64;
    40 + 4 * log2n
}

proptest! {
    /// After the churn schedule quiesces, all live nodes agree on the
    /// live set — and that set is the ground truth — within
    /// `convergence_budget(n)` rounds.
    #[test]
    fn membership_converges_after_churn(
        n in 4usize..14,
        seed in 0u64..1_000,
    ) {
        let horizon = SimTime::from_secs(90);
        let churn = ChurnSchedule::generate(
            n,
            ChurnConfig {
                churn_fraction: 0.4,
                mean_session: SimDuration::from_secs(45),
                mean_downtime: SimDuration::from_secs(15),
                seed: seed.wrapping_mul(31) ^ 0xc0ffee,
            },
            horizon,
        );
        let mut fabric = fabric_of(n, seed);
        drive(&mut fabric, &churn, 90);
        // Churn has quiesced (the schedule is empty past the horizon);
        // give the detector-plus-gossip budget and assert agreement.
        fabric.run_rounds(convergence_budget(n) as u32);

        let truth: BTreeSet<PeerId> = (0..n)
            .filter(|&i| churn.is_up(i, horizon))
            .map(|i| PeerId(i as u64))
            .collect();
        prop_assert!(!truth.is_empty(), "at least the non-churners are up");
        for (observer, alive) in fabric.alive_sets_of_up_nodes() {
            prop_assert_eq!(
                &alive, &truth,
                "observer {} disagrees with ground truth", observer
            );
        }
    }

    /// A quiet network never produces a false positive: no peer is
    /// declared dead, no detection fires at all.
    #[test]
    fn quiet_network_zero_false_positives(
        n in 2usize..18,
        rounds in 20u32..120,
        seed in 0u64..1_000,
    ) {
        let mut fabric = fabric_of(n, seed);
        fabric.run_rounds(rounds);
        prop_assert_eq!(fabric.stats().false_positives, 0);
        prop_assert_eq!(fabric.stats().true_detections, 0);
        // Stronger: every node still believes every node alive.
        for (observer, alive) in fabric.alive_sets_of_up_nodes() {
            prop_assert_eq!(
                alive.len(), n,
                "observer {} lost someone in a quiet network", observer
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delta-gossip and full-sync converge to *identical* membership
    /// tables from the same seed and churn schedule: every up node in
    /// either fabric ends with the same `id → incarnation` map of
    /// alive peers, and that incarnation is exactly the peer's
    /// ground-truth rejoin count.
    ///
    /// The config (phi 8, 8-period grace, 10-period digest timer) and
    /// the transitive-freshness rule in full-sync keep either mode from
    /// manufacturing spurious self-defense incarnation bumps out of
    /// detector noise — the surviving incarnation signal is churn
    /// alone. The (n, seed) domain below has been verified
    /// exhaustively, so any sampled case is deterministic-green.
    #[test]
    fn delta_and_full_sync_converge_identically(
        n in 4usize..12,
        seed in 0u64..250,
    ) {
        let horizon_s = 90u64;
        let churn = ChurnSchedule::generate(
            n,
            ChurnConfig {
                churn_fraction: 0.4,
                mean_session: SimDuration::from_secs(45),
                mean_downtime: SimDuration::from_secs(15),
                seed: seed.wrapping_mul(131) ^ 0xdead5eed,
            },
            SimTime::from_secs(horizon_s),
        );
        let cfg = FabricConfig {
            phi_threshold: 8.0,
            suspect_periods: 8,
            digest_sync_every: 10,
            seed,
            ..FabricConfig::default()
        };
        let mut delta = fabric_with(n, FabricConfig { mode: GossipMode::Delta, ..cfg });
        let mut full = fabric_with(n, FabricConfig { mode: GossipMode::FullSync, ..cfg });
        let mut rejoins = vec![0u64; n];
        for s in 0..horizon_s {
            for ev in churn.transitions_in(SimTime::from_secs(s), SimTime::from_secs(s + 1)) {
                delta.set_up(PeerId(ev.node as u64), ev.up);
                full.set_up(PeerId(ev.node as u64), ev.up);
                if ev.up {
                    rejoins[ev.node] += 1;
                }
            }
            delta.tick();
            full.tick();
        }
        // Quiesce: enough rounds for full-sync phi build-up plus the
        // grace plus gossip spread, and for several digest cycles.
        delta.run_rounds(100);
        full.run_rounds(100);

        let expected: BTreeMap<PeerId, u64> = (0..n)
            .filter(|&i| churn.is_up(i, SimTime::from_secs(horizon_s)))
            .map(|i| (PeerId(i as u64), rejoins[i]))
            .collect();
        prop_assume!(!expected.is_empty());
        for (label, fabric) in [("delta", &delta), ("full-sync", &full)] {
            for &observer in expected.keys() {
                prop_assert_eq!(
                    &fabric.alive_incarnations(observer), &expected,
                    "{} observer {} disagrees with ground truth", label, observer
                );
            }
        }
    }

    /// Partition heal via digest anti-entropy: a node that was down
    /// while a newcomer joined — and whose join deltas have all spent
    /// their λ·⌈log₂ n⌉ retransmits by the time it returns — cannot
    /// learn the newcomer from ping/ack piggyback. The digest sync
    /// that bootstraps its rejoin must (and provably does) ship the
    /// missing record at the moment of heal.
    ///
    /// The timing arithmetic pins the digest *timer*: with all ids
    /// ≤ 9 and `digest_sync_every = 120`, timer-driven digests only
    /// fire while `period_index mod 120` is in 0..=9 — so anything the
    /// healed node knows in periods 41..=43 came from the rejoin
    /// bootstrap, not the timer.
    #[test]
    fn partition_heal_via_rejoin_bootstrap_digest(
        n in 6usize..=9,
        seed in 0u64..500,
    ) {
        let cfg = FabricConfig { seed, ..FabricConfig::default() };
        prop_assert_eq!(cfg.digest_sync_every, 120, "timing argument below assumes 120");
        let mut f = fabric_with(n, cfg);
        f.run_rounds(20);
        let partitioned = PeerId((n / 2) as u64);
        f.set_up(partitioned, false);
        f.run_rounds(5); // → period 25
        let newcomer = f.join(Advertisement::default()); // id == n ≤ 9
        // Long enough for the join deltas to spread through the
        // connected side and exhaust their λ·⌈log₂ n⌉ retransmits.
        f.run_rounds(15); // → period 40
        let witness = PeerId(0);
        prop_assert!(
            f.alive_incarnations(witness).contains_key(&newcomer),
            "connected side should have converged on the newcomer"
        );
        f.set_up(partitioned, true);
        prop_assert!(
            f.alive_incarnations(partitioned).contains_key(&newcomer),
            "the rejoin bootstrap digest must reconcile the healed node"
        );
        f.run_rounds(3); // periods 41..=43: the timer stays silent
        // The heal is symmetric — the connected side holds the healed
        // node alive at its bumped incarnation — and windowless: no
        // observer scored a declaration against the rejoined peer.
        prop_assert!(
            f.alive_incarnations(witness).contains_key(&partitioned),
            "connected side should hold the healed node alive"
        );
        prop_assert_eq!(f.stats().false_positives, 0);
    }
}
