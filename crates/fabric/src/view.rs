//! [`PeerView`]: the query API services select peers through.
//!
//! A view is an immutable snapshot, taken from one observer's
//! membership table plus the shared reputation ledger and uptime
//! accounting. Services never walk membership tables directly; they
//! ask a view for *alive peers, filtered and ranked* by whichever axis
//! their workload cares about — storage capacity for attic shard
//! placement, locality for NoCDN edge selection, reputation everywhere.

use crate::member::{Advertisement, PeerId, PeerState};
use std::collections::BTreeSet;

/// One peer as seen through a view.
#[derive(Clone, Debug)]
pub struct PeerEntry {
    /// The peer's fabric id.
    pub id: PeerId,
    /// Believed liveness state.
    pub state: PeerState,
    /// Capacity/locality advertisement.
    pub advert: Advertisement,
    /// Observed fraction of time this peer has been up, in `[0, 1]`.
    pub uptime_fraction: f64,
    /// Reputation score from the shared ledger, in `[0, 1]`.
    pub reputation: f64,
}

impl PeerEntry {
    /// The composite desirability score used by [`RankBy::Composite`]:
    /// reputation-weighted uptime and capacity, discounted by distance.
    pub fn composite_score(&self) -> f64 {
        self.reputation * self.uptime_fraction * self.advert.capacity_score()
            / (1.0 + self.advert.rtt_ms)
    }
}

/// Ranking axes for [`PeerView::ranked`] and [`PeerView::select`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RankBy {
    /// Highest advertised capacity first (attic shard placement).
    Capacity,
    /// Lowest RTT first (NoCDN proximity, coop laterals).
    Locality,
    /// Highest reputation first, uptime as tie-break.
    Reputation,
    /// Highest observed uptime first (durability-sensitive placement).
    Uptime,
    /// The blended score of [`PeerEntry::composite_score`].
    Composite,
}

/// An immutable, queryable snapshot of the membership.
#[derive(Clone, Debug, Default)]
pub struct PeerView {
    entries: Vec<PeerEntry>,
}

impl PeerView {
    /// A view over the given entries (sorted by id for determinism).
    pub fn new(mut entries: Vec<PeerEntry>) -> PeerView {
        entries.sort_by_key(|e| e.id);
        PeerView { entries }
    }

    /// Every entry, alive or not, in id order.
    pub fn entries(&self) -> &[PeerEntry] {
        &self.entries
    }

    /// Total peers known (any state).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the view knows no peers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `id`, if known.
    pub fn get(&self, id: PeerId) -> Option<&PeerEntry> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Whether `id` is believed alive.
    pub fn is_alive(&self, id: PeerId) -> bool {
        self.get(id).is_some_and(|e| e.state.is_alive())
    }

    /// The alive entries, in id order.
    pub fn alive(&self) -> impl Iterator<Item = &PeerEntry> {
        self.entries.iter().filter(|e| e.state.is_alive())
    }

    /// Ids of alive peers, in id order.
    pub fn alive_ids(&self) -> Vec<PeerId> {
        self.alive().map(|e| e.id).collect()
    }

    /// Number of alive peers.
    pub fn alive_count(&self) -> usize {
        self.alive().count()
    }

    /// Observed uptime fraction of `id`, if known.
    pub fn uptime(&self, id: PeerId) -> Option<f64> {
        self.get(id).map(|e| e.uptime_fraction)
    }

    /// Alive peers ranked by the given axis (deterministic: ties break
    /// by id), optionally dropping peers below `min_reputation`.
    pub fn ranked_filtered(&self, by: RankBy, min_reputation: f64) -> Vec<PeerId> {
        let mut alive: Vec<&PeerEntry> = self
            .alive()
            .filter(|e| e.reputation >= min_reputation)
            .collect();
        let key = |e: &PeerEntry| -> f64 {
            match by {
                RankBy::Capacity => e.advert.capacity_score(),
                // Negated so "higher is better" holds for every axis.
                RankBy::Locality => -e.advert.rtt_ms,
                RankBy::Reputation => e.reputation + e.uptime_fraction * 1e-6,
                RankBy::Uptime => e.uptime_fraction,
                RankBy::Composite => e.composite_score(),
            }
        };
        alive.sort_by(|a, b| {
            key(b)
                .partial_cmp(&key(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        alive.into_iter().map(|e| e.id).collect()
    }

    /// Alive peers ranked by the given axis.
    pub fn ranked(&self, by: RankBy) -> Vec<PeerId> {
        self.ranked_filtered(by, 0.0)
    }

    /// The best `n` alive peers by `by`, excluding `exclude` — the
    /// retry primitive: pass the peers that already failed and get the
    /// next-best survivors.
    pub fn select(&self, n: usize, by: RankBy, exclude: &BTreeSet<PeerId>) -> Vec<PeerId> {
        self.ranked(by)
            .into_iter()
            .filter(|id| !exclude.contains(id))
            .take(n)
            .collect()
    }

    /// Per-peer uptime fractions of the given peers (for churn-aware
    /// availability math); unknown peers count as never-up.
    pub fn uptimes_of(&self, ids: &[PeerId]) -> Vec<f64> {
        ids.iter()
            .map(|&id| self.uptime(id).unwrap_or(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, rtt: f64, uplink: f64, up: f64, rep: f64, state: PeerState) -> PeerEntry {
        PeerEntry {
            id: PeerId(id),
            state,
            advert: Advertisement {
                rtt_ms: rtt,
                uplink_mbps: uplink,
                ..Advertisement::default()
            },
            uptime_fraction: up,
            reputation: rep,
        }
    }

    fn sample_view() -> PeerView {
        PeerView::new(vec![
            entry(0, 5.0, 1000.0, 0.99, 1.0, PeerState::Alive),
            entry(1, 50.0, 1000.0, 0.90, 1.0, PeerState::Alive),
            entry(2, 10.0, 100.0, 0.50, 0.25, PeerState::Alive),
            entry(3, 1.0, 2000.0, 0.99, 1.0, PeerState::Dead),
        ])
    }

    #[test]
    fn alive_filtering_excludes_dead() {
        let v = sample_view();
        assert_eq!(v.len(), 4);
        assert_eq!(v.alive_count(), 3);
        assert!(!v.is_alive(PeerId(3)));
        assert!(v.is_alive(PeerId(0)));
        assert_eq!(v.alive_ids(), vec![PeerId(0), PeerId(1), PeerId(2)]);
    }

    #[test]
    fn locality_ranking_orders_by_rtt() {
        let v = sample_view();
        assert_eq!(
            v.ranked(RankBy::Locality),
            vec![PeerId(0), PeerId(2), PeerId(1)]
        );
    }

    #[test]
    fn reputation_filter_drops_offenders() {
        let v = sample_view();
        let ranked = v.ranked_filtered(RankBy::Composite, 0.5);
        assert!(!ranked.contains(&PeerId(2)));
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn select_skips_exclusions() {
        let v = sample_view();
        let mut failed = BTreeSet::new();
        failed.insert(PeerId(0));
        let picks = v.select(2, RankBy::Locality, &failed);
        assert_eq!(picks, vec![PeerId(2), PeerId(1)]);
    }

    #[test]
    fn uptimes_of_defaults_unknown_to_zero() {
        let v = sample_view();
        let ups = v.uptimes_of(&[PeerId(0), PeerId(42)]);
        assert!((ups[0] - 0.99).abs() < 1e-12);
        assert_eq!(ups[1], 0.0);
    }
}
