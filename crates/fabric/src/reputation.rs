//! The reputation ledger.
//!
//! §IV-B: "there is also a trustworthiness element" to peer selection;
//! §IV-C: "a misbehaving peer can be expelled from the collective".
//! Each service observes its own violation kinds (NoCDN content
//! corruption and usage-record inflation, DCol packet
//! dropping/misrouting, attic shard loss) but they all feed one shared
//! ledger, so a peer that corrupts CDN objects is *also* demoted as a
//! backup target and a waypoint. Violations additionally feed
//! suspicion: the gossip layer adds a phi bonus per violation, so
//! misbehaving peers are declared dead sooner on real silence.

use crate::member::PeerId;
use std::collections::BTreeMap;

/// What a peer was observed doing wrong.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Violation {
    /// Served content failing hash verification (NoCDN).
    Integrity,
    /// Uploaded inflated or forged usage records (NoCDN accounting).
    Accounting,
    /// Dropped or corrupted relayed traffic (DCol waypoint duty).
    Misrouting,
    /// Lost or refused to return a stored backup shard (attic).
    ShardLoss,
    /// Repeatedly unreachable while advertised alive.
    Unresponsive,
}

impl Violation {
    /// Severity weight: how hard one violation of this kind hits the
    /// peer's reputation score.
    fn weight(self) -> f64 {
        match self {
            // Active attacks cost more than flakiness.
            Violation::Integrity | Violation::Accounting => 0.5,
            Violation::Misrouting | Violation::ShardLoss => 0.35,
            Violation::Unresponsive => 0.2,
        }
    }
}

/// Per-peer violation history.
#[derive(Clone, Debug, Default)]
pub(crate) struct PeerLedgerEntry {
    pub(crate) counts: BTreeMap<Violation, u32>,
    pub(crate) total: u32,
    pub(crate) score: f64,
}

/// The shared violation ledger: peer → history and derived score.
#[derive(Clone, Debug, Default)]
pub struct ReputationLedger {
    entries: BTreeMap<PeerId, PeerLedgerEntry>,
}

impl ReputationLedger {
    /// An empty ledger (every peer starts at score 1.0).
    pub fn new() -> ReputationLedger {
        ReputationLedger::default()
    }

    /// Records one violation against `id`; returns the peer's new
    /// score in `[0, 1]`.
    pub fn record_violation(&mut self, id: PeerId, kind: Violation) -> f64 {
        let entry = self.entries.entry(id).or_insert_with(|| PeerLedgerEntry {
            counts: BTreeMap::new(),
            total: 0,
            score: 1.0,
        });
        *entry.counts.entry(kind).or_insert(0) += 1;
        entry.total += 1;
        entry.score *= 1.0 - kind.weight();
        hpop_obs::metrics()
            .counter("fabric.reputation.violation")
            .incr();
        entry.score
    }

    /// The peer's reputation score in `[0, 1]`; 1.0 when spotless.
    pub fn score(&self, id: PeerId) -> f64 {
        self.entries.get(&id).map_or(1.0, |e| e.score)
    }

    /// Total violations recorded against `id`.
    pub fn violations(&self, id: PeerId) -> u32 {
        self.entries.get(&id).map_or(0, |e| e.total)
    }

    /// Violations of one specific kind.
    pub fn violations_of(&self, id: PeerId, kind: Violation) -> u32 {
        self.entries
            .get(&id)
            .and_then(|e| e.counts.get(&kind))
            .copied()
            .unwrap_or(0)
    }

    /// True when the peer has a clean record.
    pub fn is_clean(&self, id: PeerId) -> bool {
        self.violations(id) == 0
    }

    /// Extra suspicion added to the failure detector's phi for this
    /// peer: each violation makes silence a little less forgivable.
    pub fn phi_bonus(&self, id: PeerId) -> f64 {
        self.violations(id) as f64 * 0.5
    }

    /// The full entry table, for the durability adapter's snapshot
    /// encoding.
    pub(crate) fn entries(&self) -> &BTreeMap<PeerId, PeerLedgerEntry> {
        &self.entries
    }

    /// Rebuilds a ledger from snapshot-decoded entries (durability
    /// adapter only).
    pub(crate) fn restore(entries: BTreeMap<PeerId, PeerLedgerEntry>) -> ReputationLedger {
        ReputationLedger { entries }
    }

    /// Peers with at least one violation, worst first.
    pub fn offenders(&self) -> Vec<(PeerId, u32)> {
        let mut out: Vec<(PeerId, u32)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.total > 0)
            .map(|(&id, e)| (id, e.total))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_peers_score_one() {
        let l = ReputationLedger::new();
        assert_eq!(l.score(PeerId(7)), 1.0);
        assert!(l.is_clean(PeerId(7)));
        assert_eq!(l.phi_bonus(PeerId(7)), 0.0);
    }

    #[test]
    fn violations_compound_and_count() {
        let mut l = ReputationLedger::new();
        let s1 = l.record_violation(PeerId(1), Violation::Integrity);
        let s2 = l.record_violation(PeerId(1), Violation::Integrity);
        assert!((s1 - 0.5).abs() < 1e-12);
        assert!((s2 - 0.25).abs() < 1e-12);
        assert_eq!(l.violations(PeerId(1)), 2);
        assert_eq!(l.violations_of(PeerId(1), Violation::Integrity), 2);
        assert_eq!(l.violations_of(PeerId(1), Violation::Accounting), 0);
        assert!(!l.is_clean(PeerId(1)));
        assert_eq!(l.phi_bonus(PeerId(1)), 1.0);
    }

    #[test]
    fn severity_orders_kinds() {
        let mut l = ReputationLedger::new();
        l.record_violation(PeerId(1), Violation::Integrity);
        l.record_violation(PeerId(2), Violation::Unresponsive);
        assert!(l.score(PeerId(1)) < l.score(PeerId(2)));
    }

    #[test]
    fn offenders_sorted_worst_first() {
        let mut l = ReputationLedger::new();
        l.record_violation(PeerId(3), Violation::Misrouting);
        l.record_violation(PeerId(5), Violation::Integrity);
        l.record_violation(PeerId(5), Violation::Accounting);
        assert_eq!(l.offenders(), vec![(PeerId(5), 2), (PeerId(3), 1)]);
    }
}
